//! Allocation regression guard for the borrow-based preamble parse.
//!
//! PR 4's parser allocated two `String`s per header line (name + value),
//! so a request's parse cost grew with its header count — the exact
//! per-header allocation the reactor rewrite removes. This test pins the
//! new contract with a counting global allocator: carving a request and
//! touching every routed-on field costs a **constant** number of
//! allocations, independent of how many headers the request carries.
//!
//! The file holds exactly one `#[test]` on purpose: the counting allocator
//! is process-global, and a concurrently running sibling test would bleed
//! its allocations into the measurement window.

use exa_wire::http::{Limits, ParseProgress, RequestParser};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation event (fresh allocations and reallocations)
/// flowing through the system allocator.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn request_with_headers(count: usize) -> Vec<u8> {
    let mut raw = b"POST /v1/models/m/predict HTTP/1.1\r\n".to_vec();
    for i in 0..count {
        raw.extend_from_slice(format!("X-Filler-{i}: value-{i}\r\n").as_bytes());
    }
    raw.extend_from_slice(b"Content-Length: 4\r\n\r\nbody");
    raw
}

/// Allocations charged for carving one already-buffered request and
/// touching every field the server's router reads. The `feed` (buffer
/// growth) happens outside the measurement window — buffering bytes is the
/// transport's cost, the parse itself is what must stay constant.
fn allocs_to_parse_and_inspect(raw: &[u8]) -> u64 {
    let mut parser = RequestParser::new(Limits::default());
    parser.feed(raw);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let request = match parser.next_request().expect("request parses") {
        ParseProgress::Request(request) => request,
        other => panic!("incomplete parse: {other:?}"),
    };
    // Everything the route path reads on the happy path: method, path,
    // body, keep-alive, a case-insensitive header lookup, and a full
    // header walk.
    assert_eq!(request.method(), "POST");
    assert_eq!(request.path(), "/v1/models/m/predict");
    assert_eq!(request.body(), b"body");
    assert!(request.keep_alive());
    assert_eq!(request.header("CONTENT-length"), Some("4"));
    let walked = request.headers().count();
    assert!(walked >= 1, "header walk saw {walked} headers");
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn header_parsing_allocates_independently_of_header_count() {
    let small = request_with_headers(4);
    let large = request_with_headers(40);
    // Warm-up parse: lazy one-time runtime allocations (panic machinery,
    // TLS buffers) land here instead of in the measured windows.
    let _ = allocs_to_parse_and_inspect(&small);

    let allocs_small = allocs_to_parse_and_inspect(&small);
    let allocs_large = allocs_to_parse_and_inspect(&large);
    assert_eq!(
        allocs_small, allocs_large,
        "parse allocations must not scale with header count: \
         4 headers cost {allocs_small}, 40 headers cost {allocs_large}"
    );
    // The constant itself: one buffer carve per request (the Vec the
    // Request owns). Give it one of slack for allocator-internal noise,
    // but a per-header regression (36 extra headers → ≥ 36 extra
    // allocations) fails loudly either way.
    assert!(
        allocs_small <= 2,
        "carving a request should cost ~1 allocation, measured {allocs_small}"
    );
}
