//! The shared number-fidelity contract both predict codecs must satisfy:
//! any finite `f64` a kriging response can carry survives an
//! encode/decode round trip **bit for bit** — through the JSON text codec
//! and through the binary frame codec alike. The wire integration tests
//! build their bit-identity assertions on top of this property.

use exa_wire::codec::{encode_predict_response, PredictResponseFrame};
use exa_wire::json::{Json, JsonWriter};
use proptest::prelude::*;

/// One value through the JSON codec, exactly as a predict response carries
/// it (a number inside a `mean` array).
fn through_json(v: f64) -> f64 {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("mean");
    w.begin_array();
    w.number(v);
    w.end_array();
    w.end_object();
    let encoded = w.finish();
    Json::parse(&encoded)
        .expect("codec output reparses")
        .get("mean")
        .expect("mean key")
        .as_array()
        .expect("mean array")[0]
        .as_f64()
        .expect("numeric mean")
}

/// One value through the binary frame codec, exactly as a predict response
/// carries it (a mean in a single-point response frame).
fn through_frame(v: f64) -> f64 {
    let bytes = encode_predict_response(&[v], None, 1, 1, 0.0);
    PredictResponseFrame::decode(&bytes)
        .expect("frame redecodes")
        .mean_vec()[0]
}

/// The shared property: both codecs preserve the exact bit pattern of any
/// finite double.
fn assert_codecs_bit_exact(v: f64) {
    let json = through_json(v);
    assert_eq!(
        v.to_bits(),
        json.to_bits(),
        "JSON lost bits: {v:e} ({:#018x}) came back {json:e} ({:#018x})",
        v.to_bits(),
        json.to_bits()
    );
    let frame = through_frame(v);
    assert_eq!(
        v.to_bits(),
        frame.to_bits(),
        "frame lost bits: {v:e} came back {frame:e}"
    );
}

#[test]
fn signed_zero_subnormals_and_extremes_round_trip_both_codecs() {
    let edge_cases = [
        0.0,
        -0.0,              // sign must survive "−0"
        f64::MIN_POSITIVE, // smallest normal
        -f64::MIN_POSITIVE,
        5e-324, // smallest subnormal
        -5e-324,
        f64::from_bits(0x000F_FFFF_FFFF_FFFF), // largest subnormal
        f64::from_bits(0x0000_0000_0000_0001), // == 5e-324, via bits
        f64::MAX,
        -f64::MAX,
        f64::from_bits(f64::MAX.to_bits() - 1), // MAX's next-door neighbor
        1.0 + f64::EPSILON,
        0.1 + 0.2,
        -1.0 / 3.0,
    ];
    for v in edge_cases {
        assert_codecs_bit_exact(v);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4096))]

    /// Uniform random *bit patterns*, so every exponent and mantissa shape
    /// appears — subnormals, near-overflow values and both zero signs
    /// included, which uniform-in-value generation would never hit.
    #[test]
    fn random_bit_patterns_round_trip_both_codecs(bits in any::<u64>()) {
        let v = f64::from_bits(bits);
        if v.is_finite() {
            assert_codecs_bit_exact(v);
        } else {
            // JSON has no NaN/∞: the writer must emit null, never an
            // unparseable bare token...
            let mut w = JsonWriter::new();
            w.number(v);
            prop_assert_eq!(w.finish(), "null");
            // ...while the frame codec is bit-transparent even here (NaN
            // payload bits included).
            prop_assert_eq!(through_frame(v).to_bits(), bits);
        }
    }
}
