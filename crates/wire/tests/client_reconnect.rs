//! Regression tests for [`WireClient`]'s stale keep-alive handling: a
//! server that drops idle connections between requests must not poison a
//! pooled client — the client redials once, transparently. Failures that
//! are *not* safe to retry (mid-response close, fresh-dial failure) must
//! still surface.
//!
//! The peer here is a hand-rolled single-thread TCP server (not a
//! `WireServer`) so the test can close sockets at exact protocol points.

use exa_wire::client::WireClient;
use exa_wire::WireError;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::thread;

/// Reads one full request (head + `Content-Length` body) off `stream`.
/// Returns `false` on EOF before a complete request.
fn read_request(stream: &mut TcpStream) -> bool {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        if let Some(head_end) = find_blank_line(&buf) {
            let head = String::from_utf8_lossy(&buf[..head_end]);
            let length = head
                .lines()
                .find_map(|l| {
                    l.to_ascii_lowercase()
                        .strip_prefix("content-length:")
                        .map(str::to_string)
                })
                .and_then(|v| v.trim().parse::<usize>().ok())
                .unwrap_or(0);
            while buf.len() < head_end + length {
                match stream.read(&mut chunk) {
                    Ok(0) => return false,
                    Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    Err(_) => return false,
                }
            }
            return true;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return false,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return false,
        }
    }
}

fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

fn write_ok(stream: &mut TcpStream, body: &str) {
    let response = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes()).unwrap();
}

/// The stale-connection scenario: the server answers one request per
/// connection, then closes it while the client is idle. A keep-alive
/// client's second request hits the dead socket; the redial must make the
/// call succeed and the counter must record exactly the redials taken.
#[test]
fn stale_keep_alive_connection_is_redialed_once() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = thread::spawn(move || {
        // Three connections: the original dial plus two redials.
        for i in 0..3 {
            let (mut stream, _) = listener.accept().unwrap();
            if read_request(&mut stream) {
                write_ok(
                    &mut stream,
                    &format!("{{\"status\":\"ok\",\"models\":{i}}}"),
                );
            }
            // Dropping the stream closes the connection; the client only
            // notices on its next request.
        }
    });

    let mut client = WireClient::connect(addr).unwrap();
    for expected_reconnects in 0..3u64 {
        let doc = client.get_json("/healthz").unwrap();
        assert_eq!(doc.get("status").and_then(|v| v.as_str()), Some("ok"));
        assert_eq!(client.reconnects(), expected_reconnects);
    }
    server.join().unwrap();
}

/// A fresh connection that dies before its *first* response is a hard
/// error, not staleness: no blind retry against a server that never
/// answered (the listener is gone, so a redial could not succeed anyway —
/// the point is that the error surfaces instead of a retry loop).
#[test]
fn first_request_failure_is_not_retried() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        drop(stream); // close without answering
    });

    let mut client = WireClient::connect(addr).unwrap();
    let err = client.get_json("/healthz").unwrap_err();
    assert!(matches!(err, WireError::Io(_)), "{err}");
    assert_eq!(client.reconnects(), 0);
    server.join().unwrap();
}

/// A connection that dies *mid-response* (headers sent, body truncated)
/// must not be retried either — the server demonstrably started executing
/// the request, so replaying it is not safe for the client to decide.
#[test]
fn mid_response_close_is_not_retried() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = thread::spawn(move || {
        // First request completes so the connection counts as proven.
        let (mut stream, _) = listener.accept().unwrap();
        assert!(read_request(&mut stream));
        write_ok(&mut stream, "{\"status\":\"ok\",\"models\":0}");
        // Second request: send half a response, then slam the connection.
        assert!(read_request(&mut stream));
        stream
            .write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\npartial")
            .unwrap();
        drop(stream);
    });

    let mut client = WireClient::connect(addr).unwrap();
    client.get_json("/healthz").unwrap();
    let err = client.get_json("/healthz").unwrap_err();
    assert!(matches!(err, WireError::Io(_)), "{err}");
    assert_eq!(client.reconnects(), 0);
    server.join().unwrap();
}

/// `request_raw` relays bodies verbatim and surfaces `Retry-After`; the
/// typed error path decodes the same header into `WireError::Api`.
#[test]
fn retry_after_reaches_both_raw_and_typed_callers() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let body = "{\"error\":{\"code\":\"overloaded\",\"message\":\"queue full\"}}";
    let response = format!(
        "HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\nContent-Length: {}\r\nRetry-After: 1\r\nConnection: keep-alive\r\n\r\n{body}",
        body.len(),
    );
    let (done_tx, done_rx) = mpsc::channel();
    let server = thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        for _ in 0..2 {
            assert!(read_request(&mut stream));
            stream.write_all(response.as_bytes()).unwrap();
        }
        done_rx.recv().unwrap();
    });

    let mut client = WireClient::connect(addr).unwrap();
    let raw = client
        .request_raw(
            "POST",
            "/v1/models/soil/predict",
            "application/json",
            "application/json",
            b"{\"targets\":[[0.5,0.5]]}",
        )
        .unwrap();
    assert_eq!(raw.status, 503);
    assert_eq!(raw.retry_after, Some(1));
    assert_eq!(raw.body, body.as_bytes());

    let err = client.get_json("/v1/stats").unwrap_err();
    match err {
        WireError::Api {
            status,
            code,
            retry_after,
            ..
        } => {
            assert_eq!(status, 503);
            assert_eq!(code, "overloaded");
            assert_eq!(retry_after, Some(1));
        }
        other => panic!("expected Api error, got {other}"),
    }
    done_tx.send(()).unwrap();
    server.join().unwrap();
}
