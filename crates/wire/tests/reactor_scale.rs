//! Connection-scaling smoke and abuse soak for the readiness reactor —
//! the tests the `wire-soak` CI job runs with elevated knobs.
//!
//! The thread-per-connection front-end spent one OS thread per open
//! socket, so "hold 1024 idle keep-alive connections" meant 1024 threads.
//! The reactor's contract is the opposite: connection count and thread
//! count are decoupled. These tests hold a large fleet of idle keep-alive
//! sockets against a live server, assert the process thread count does
//! not move, and then prove the fleet is still being served.
//!
//! Environment knobs (all optional; defaults suit a laptop `cargo test`):
//!
//! * `EXA_WIRE_SOAK_CONNS` — idle keep-alive fleet size (default 256; CI
//!   sets ≥ 1200 to cover the ≥ 1024 acceptance criterion).
//! * `EXA_WIRE_SOAK_ITERS` — abuse-pattern repetitions (default 2).
//! * `EXA_WIRE_SOAK_STATS_DIR` — when set, each test dumps its final
//!   server stats as JSON into this directory (uploaded by CI on failure).

use exa_covariance::{Location, MaternKernel};
use exa_geostat::{synthetic_locations_n, Backend, FittedModel, GeoModel};
use exa_runtime::Runtime;
use exa_serve::ModelRegistry;
use exa_util::Rng;
use exa_wire::{WireClient, WireConfig, WireServer, WireStats};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn fitted(n: usize, seed: u64) -> Arc<FittedModel<MaternKernel>> {
    let rt = Runtime::new(2);
    let mut rng = Rng::seed_from_u64(seed);
    let locations = Arc::new(synthetic_locations_n(n, &mut rng));
    let generator = GeoModel::<MaternKernel>::builder()
        .locations(locations.clone())
        .nugget(0.0)
        .tile_size(64)
        .build()
        .unwrap()
        .at_params(&[1.0, 0.1, 0.5], &rt)
        .unwrap();
    let z = generator.simulate(&mut rng, &rt);
    Arc::new(
        GeoModel::<MaternKernel>::builder()
            .locations(locations)
            .data(z)
            .backend(Backend::FullTile)
            .tile_size(64)
            .build()
            .unwrap()
            .at_params(&[1.0, 0.1, 0.5], &rt)
            .unwrap(),
    )
}

fn boot(config: WireConfig) -> WireServer<MaternKernel> {
    let registry = Arc::new(ModelRegistry::new());
    registry.insert("m", fitted(64, 9));
    WireServer::start(registry, config).expect("bind ephemeral port")
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Kernel-reported thread count for this process (`Threads:` in
/// `/proc/self/status`). Returns `None` off Linux, where the bounded-
/// thread assertion is skipped (the poll backend itself still runs).
fn process_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|rest| rest.trim().parse().ok())
}

/// Dump final server stats as JSON for CI artifact upload. Best-effort:
/// soak diagnostics must never fail the test themselves.
fn dump_stats(label: &str, wire: &WireStats) {
    let Ok(dir) = std::env::var("EXA_WIRE_SOAK_STATS_DIR") else {
        return;
    };
    let json = format!(
        concat!(
            "{{\"connections_accepted\":{},\"connections_refused\":{},",
            "\"requests_ok\":{},\"requests_client_error\":{},",
            "\"requests_server_error\":{},\"malformed_requests\":{},",
            "\"disconnects_mid_request\":{},\"panics_contained\":{},",
            "\"requests_inline\":{},\"requests_dispatched\":{}}}\n"
        ),
        wire.connections_accepted,
        wire.connections_refused,
        wire.requests_ok,
        wire.requests_client_error,
        wire.requests_server_error,
        wire.malformed_requests,
        wire.disconnects_mid_request,
        wire.panics_contained,
        wire.requests_inline,
        wire.requests_dispatched,
    );
    let _ = std::fs::create_dir_all(&dir);
    let _ = std::fs::write(format!("{dir}/{label}.json"), json);
}

/// Read exactly one `Content-Length`-framed HTTP response off a keep-alive
/// socket (no EOF to lean on) and return it whole.
fn read_one_response(stream: &mut TcpStream) -> Vec<u8> {
    let mut response = Vec::new();
    let mut byte = [0u8; 1];
    // Head: single-byte reads until the terminator; responses are tiny and
    // this keeps the helper trivially correct.
    while !response.ends_with(b"\r\n\r\n") {
        let n = stream.read(&mut byte).expect("read response head");
        assert!(n > 0, "EOF inside response head");
        response.push(byte[0]);
    }
    let head = String::from_utf8_lossy(&response).to_string();
    let body_len: usize = head
        .lines()
        .find_map(|line| {
            let (name, value) = line.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().ok())?
        })
        .expect("response carries Content-Length");
    let mut body = vec![0u8; body_len];
    stream.read_exact(&mut body).expect("read response body");
    response.extend_from_slice(&body);
    response
}

fn healthz_roundtrip(stream: &mut TcpStream) {
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\n\r\n")
        .expect("write healthz");
    let response = read_one_response(stream);
    let text = String::from_utf8_lossy(&response);
    assert!(
        text.starts_with("HTTP/1.1 200 OK"),
        "healthz answered: {text}"
    );
}

/// The ≥ 1024-connection acceptance criterion (CI runs this with
/// `EXA_WIRE_SOAK_CONNS=1200`): every socket in the fleet completes a
/// health round trip, then idles on keep-alive while the thread count is
/// asserted flat, predict traffic still flows, and sampled fleet members
/// prove they are still live.
#[test]
fn reactor_holds_large_idle_keep_alive_fleet_with_bounded_threads() {
    let fleet_size = env_usize("EXA_WIRE_SOAK_CONNS", 256);
    let server = boot(WireConfig {
        max_connections: fleet_size + 64,
        ..WireConfig::default()
    });
    let addr = server.local_addr();

    // Measured after the server (reactor + serve workers) is up, so the
    // later assertion isolates per-connection growth specifically.
    let threads_at_boot = process_threads();

    let mut fleet: Vec<TcpStream> = Vec::with_capacity(fleet_size);
    for i in 0..fleet_size {
        let mut stream = TcpStream::connect(addr)
            .unwrap_or_else(|err| panic!("connect #{i} of {fleet_size}: {err}"));
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        // One round trip per connection self-paces the fleet against the
        // accept backlog and proves each socket was admitted, not queued.
        healthz_roundtrip(&mut stream);
        fleet.push(stream);
    }

    // The decoupling claim: a fleet of open sockets must cost zero
    // additional threads. Slack of 2 absorbs runtime helper threads; a
    // thread-per-connection regression overshoots it by orders of
    // magnitude.
    if let (Some(before), Some(now)) = (threads_at_boot, process_threads()) {
        assert!(
            now <= before + 2,
            "thread count grew from {before} to {now} while holding \
             {fleet_size} idle connections"
        );
    }

    // Fresh predict traffic flows while the fleet idles.
    let mut client = WireClient::connect(addr).expect("connect predict client");
    let served = client
        .predict("m", &[Location::new(0.4, 0.6), Location::new(0.2, 0.8)])
        .expect("predict while fleet idles");
    assert_eq!(served.mean.len(), 2);
    assert!(served.mean.iter().all(|m| m.is_finite()));
    drop(client);

    // Sampled fleet members are still live keep-alive connections.
    let samples = [0, fleet_size / 2, fleet_size - 1];
    for &i in &samples {
        healthz_roundtrip(&mut fleet[i]);
    }

    let stats = server.stats();
    dump_stats("idle_fleet", &stats);
    assert!(
        stats.connections_accepted > fleet_size as u64,
        "accepted {} connections, expected the full fleet of {fleet_size}",
        stats.connections_accepted
    );
    assert_eq!(stats.panics_contained, 0);
    assert_eq!(stats.requests_ok as usize, fleet_size + samples.len() + 1);

    drop(fleet);
    let (wire, _serve) = server.shutdown();
    assert_eq!(wire.panics_contained, 0);
}

/// Abuse soak: every PR 4 abuse pattern, repeated `EXA_WIRE_SOAK_ITERS`
/// times (CI: 20), against one server — after which the server still
/// serves predictions and has contained zero panics.
#[test]
fn abuse_soak_leaves_the_server_healthy() {
    let iters = env_usize("EXA_WIRE_SOAK_ITERS", 2);
    let server = boot(WireConfig::default());
    let addr = server.local_addr();

    // (raw request bytes, expected status fragment). Every pattern draws
    // an error response and a server-side close, so replies read to EOF.
    let patterns: &[(&[u8], &str)] = &[
        (b"NOT HTTP AT ALL\r\n\r\n", " 400 "),
        (
            b"GET /healthz HTTP/1.1\r\nContent-Length: +5\r\n\r\n",
            " 400 ",
        ),
        (b"GET / HTTP/2.0\r\n\r\n", " 505 "),
        (
            b"POST /v1/models/m/predict HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n",
            " 413 ",
        ),
        (
            b"POST /v1/models/m/predict HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            " 501 ",
        ),
        (
            b"DELETE /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
            " 405 ",
        ),
        (
            b"GET /no/such/path HTTP/1.1\r\nConnection: close\r\n\r\n",
            " 404 ",
        ),
    ];

    for iter in 0..iters {
        for (raw, want) in patterns {
            let mut stream = TcpStream::connect(addr).expect("connect abuser");
            stream
                .set_read_timeout(Some(Duration::from_secs(20)))
                .unwrap();
            stream.write_all(raw).expect("write abuse pattern");
            let mut response = Vec::new();
            stream
                .read_to_end(&mut response)
                .expect("read abuse response");
            let text = String::from_utf8_lossy(&response);
            let status = text.lines().next().unwrap_or_default();
            assert!(
                status.contains(want),
                "iter {iter}: pattern {:?} answered {status:?}, wanted {want}",
                String::from_utf8_lossy(raw)
            );
        }
        // A header cap violation (oversized preamble) and a mid-request
        // disconnect, once per iteration.
        let mut stream = TcpStream::connect(addr).expect("connect oversized");
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        stream.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
        let filler = format!("X-Pad: {}\r\n", "y".repeat(8192));
        stream.write_all(filler.as_bytes()).unwrap();
        stream.write_all(filler.as_bytes()).unwrap();
        stream.write_all(filler.as_bytes()).unwrap();
        let mut response = Vec::new();
        stream.read_to_end(&mut response).expect("read 431");
        assert!(
            String::from_utf8_lossy(&response).contains(" 431 "),
            "oversized preamble must draw 431"
        );
        let half = TcpStream::connect(addr).expect("connect half-request");
        (&half)
            .write_all(b"POST /v1/models/m/predict HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
            .expect("write half request");
        drop(half);
    }

    // Mid-request disconnects are detected asynchronously; give the
    // reactor a few ticks to observe the last EOF before reading stats.
    std::thread::sleep(Duration::from_millis(200));

    let mut client = WireClient::connect(addr).expect("connect after abuse");
    let served = client
        .predict("m", &[Location::new(0.3, 0.7)])
        .expect("predict after abuse soak");
    assert!(served.mean[0].is_finite());
    drop(client);

    let stats = server.stats();
    dump_stats("abuse_soak", &stats);
    assert_eq!(stats.panics_contained, 0);
    assert!(
        stats.malformed_requests >= 2 * iters as u64,
        "expected ≥ {} malformed requests, counted {}",
        2 * iters,
        stats.malformed_requests
    );
    assert!(
        stats.disconnects_mid_request >= iters as u64,
        "expected ≥ {iters} mid-request disconnects, counted {}",
        stats.disconnects_mid_request
    );
    let (wire, serve) = server.shutdown();
    assert_eq!(wire.panics_contained, 0);
    assert_eq!(serve.factorizations_during_serving, 0);
}
