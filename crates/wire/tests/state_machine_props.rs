//! Arrival-pattern invariance for the reactor's connection state machine.
//!
//! The readiness reactor parses requests incrementally: a request may
//! arrive in one readable event or be dribbled in byte by byte across
//! many, with the `ReadingHead → ReadingBody → Dispatch → Writing` walk
//! suspended at every `WouldBlock`. The contract pinned here is that the
//! byte arrival pattern is **unobservable**: for any request — valid or
//! malformed — the response is identical whether the bytes land in one
//! write or split at arbitrary chunk boundaries.
//!
//! A corpus of deterministic requests (every error path the router and
//! parser can take, plus a happy-path predict whose nondeterministic
//! latency field is compared structurally) is replayed whole to record
//! reference responses, then replayed split at every 2-chunk boundary
//! (exhaustive) and at random multi-chunk boundaries (property test).

use exa_covariance::MaternKernel;
use exa_geostat::{synthetic_locations_n, Backend, FittedModel, GeoModel};
use exa_runtime::Runtime;
use exa_serve::ModelRegistry;
use exa_util::Rng;
use exa_wire::{WireConfig, WireServer};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// One server shared by every test and every proptest case. The proptest
/// shim runs each case in a fresh `move` closure, so per-case state must
/// be reachable from a `'static` anchor; the process tears the server
/// down at exit.
struct Ctx {
    addr: SocketAddr,
    _server: WireServer<MaternKernel>,
}

static CTX: OnceLock<Ctx> = OnceLock::new();

fn ctx() -> &'static Ctx {
    CTX.get_or_init(|| {
        let rt = Runtime::new(2);
        let mut rng = Rng::seed_from_u64(11);
        let locations = Arc::new(synthetic_locations_n(64, &mut rng));
        let generator = GeoModel::<MaternKernel>::builder()
            .locations(locations.clone())
            .nugget(0.0)
            .tile_size(64)
            .build()
            .unwrap()
            .at_params(&[1.0, 0.1, 0.5], &rt)
            .unwrap();
        let z = generator.simulate(&mut rng, &rt);
        let model: Arc<FittedModel<MaternKernel>> = Arc::new(
            GeoModel::<MaternKernel>::builder()
                .locations(locations)
                .data(z)
                .backend(Backend::FullTile)
                .tile_size(64)
                .build()
                .unwrap()
                .at_params(&[1.0, 0.1, 0.5], &rt)
                .unwrap(),
        );
        let registry = Arc::new(ModelRegistry::new());
        registry.insert("m", model);
        let server =
            WireServer::start(registry, WireConfig::default()).expect("bind ephemeral port");
        Ctx {
            addr: server.local_addr(),
            _server: server,
        }
    })
}

/// Every request in the corpus closes the connection — via an explicit
/// `Connection: close`, an HTTP-level error (which the server always
/// answers with `close`), or both — so a reply can be read to EOF.
fn corpus() -> Vec<Vec<u8>> {
    let predict_body = br#"{"targets":[[0.4,0.6],[0.25,0.75]]}"#;
    let ghost_body = br#"{"targets":[[0.25,0.75]]}"#;
    let empty_body = br#"{"targets":[]}"#;
    let nan_body = br#"{"targets":[[NaN,0.5]]}"#;
    vec![
        // Happy paths (index 0 is the predict request, compared structurally).
        framed("POST", "/v1/models/m/predict", predict_body),
        b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n".to_vec(),
        b"GET /v1/models HTTP/1.1\r\nConnection: close\r\n\r\n".to_vec(),
        // Router errors.
        b"GET /nope HTTP/1.1\r\nConnection: close\r\n\r\n".to_vec(),
        b"DELETE /healthz HTTP/1.1\r\nConnection: close\r\n\r\n".to_vec(),
        framed("POST", "/v1/models/ghost/predict", ghost_body),
        // Body decode / validation errors.
        framed("POST", "/v1/models/m/predict", empty_body),
        framed("POST", "/v1/models/m/predict", nan_body),
        // Parser errors (each closes the connection on its own).
        b"NOT AN HTTP PREAMBLE\r\n\r\n".to_vec(),
        b"GET /healthz HTTP/1.1\r\nContent-Length: +5\r\n\r\n".to_vec(),
        b"GET / HTTP/2.0\r\nConnection: close\r\n\r\n".to_vec(),
        b"POST /v1/models/m/predict HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n".to_vec(),
        b"POST /v1/models/m/predict HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nx".to_vec(),
    ]
}

fn framed(method: &str, path: &str, body: &[u8]) -> Vec<u8> {
    let mut raw = format!(
        "{method} {path} HTTP/1.1\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    raw.extend_from_slice(body);
    raw
}

/// Send `request` in the given chunks (flushing between them) and read the
/// full response to EOF.
fn exchange(addr: SocketAddr, chunks: &[&[u8]]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    stream.set_nodelay(true).unwrap();
    for chunk in chunks {
        stream.write_all(chunk).expect("write chunk");
        stream.flush().unwrap();
    }
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    response
}

/// Compare a replayed response against the whole-write reference.
///
/// Corpus index 0 is the valid predict: its `latency_seconds` field is
/// wall-clock and legitimately differs between runs, so it is compared
/// structurally — same status line, bit-identical `"mean"` array, and a
/// solo (`coalesced_requests:1`) batch — instead of byte for byte.
///
/// Predict responses (success or error) also carry an `x-exa-trace-id`
/// header minted per request — a deliberate nonce, normalized away before
/// the byte comparison.
fn assert_equivalent(index: usize, reference: &[u8], replayed: &[u8]) {
    if index == 0 {
        assert_eq!(status_line(reference), status_line(replayed));
        assert_eq!(status_line(replayed), "HTTP/1.1 200 OK");
        assert_eq!(
            json_field(reference, "\"mean\":["),
            json_field(replayed, "\"mean\":["),
            "predict means must be bit-identical regardless of arrival pattern"
        );
        assert_eq!(json_field(replayed, "\"coalesced_requests\":"), "1");
        return;
    }
    assert_eq!(
        strip_trace_header(reference),
        strip_trace_header(replayed),
        "corpus[{index}] response changed with arrival pattern:\n  whole: {}\n  split: {}",
        String::from_utf8_lossy(reference),
        String::from_utf8_lossy(replayed)
    );
}

/// Drops the per-request `x-exa-trace-id` header line from a raw response.
fn strip_trace_header(response: &[u8]) -> Vec<u8> {
    let text = String::from_utf8_lossy(response);
    let Some(head_end) = text.find("\r\n\r\n") else {
        return response.to_vec();
    };
    let mut out = String::new();
    for line in text[..head_end].split("\r\n") {
        if line.to_ascii_lowercase().starts_with("x-exa-trace-id:") {
            continue;
        }
        out.push_str(line);
        out.push_str("\r\n");
    }
    out.push_str("\r\n");
    out.push_str(&text[head_end + 4..]);
    out.into_bytes()
}

fn status_line(response: &[u8]) -> String {
    let text = String::from_utf8_lossy(response);
    text.lines().next().unwrap_or_default().to_string()
}

/// Extract the value following `key` up to (not including) the matching
/// close: for `"mean":[` the bracketed array, for scalar keys the run of
/// chars before the next `,` or `}`.
fn json_field(response: &[u8], key: &str) -> String {
    let text = String::from_utf8_lossy(response);
    let start = text.find(key).unwrap_or_else(|| panic!("{key} missing")) + key.len();
    let rest = &text[start..];
    if key.ends_with('[') {
        let end = rest.find(']').expect("array close");
        rest[..end].to_string()
    } else {
        let end = rest.find([',', '}']).expect("value end");
        rest[..end].to_string()
    }
}

/// Exhaustive two-chunk sweep: a short request split at **every** byte
/// boundary, including mid-request-line, mid-header-name, and between the
/// `\r` and `\n` of the head terminator.
#[test]
fn every_two_chunk_split_of_a_short_request_is_invisible() {
    let ctx = ctx();
    let request = b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
    let reference = exchange(ctx.addr, &[request]);
    assert_eq!(status_line(&reference), "HTTP/1.1 200 OK");
    for cut in 1..request.len() {
        let replayed = exchange(ctx.addr, &[&request[..cut], &request[cut..]]);
        assert_eq!(
            reference, replayed,
            "split at byte {cut} changed the response"
        );
    }
}

/// Exhaustive two-chunk sweep over a malformed preamble: the 400 must be
/// byte-identical no matter where the garbage is cut.
#[test]
fn every_two_chunk_split_of_a_malformed_request_is_invisible() {
    let ctx = ctx();
    let request = b"BAD PREAMBLE NO VERSION\r\n\r\n";
    let reference = exchange(ctx.addr, &[request]);
    assert_eq!(status_line(&reference), "HTTP/1.1 400 Bad Request");
    for cut in 1..request.len() {
        let replayed = exchange(ctx.addr, &[&request[..cut], &request[cut..]]);
        assert_eq!(
            reference, replayed,
            "split at byte {cut} changed the 400 response"
        );
    }
}

fn prop_cases() -> u32 {
    std::env::var("EXA_WIRE_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(prop_cases()))]

    /// Property: for every corpus request and every random multi-chunk
    /// split (up to 5 cuts, duplicates and out-of-order positions
    /// allowed), the response equals the whole-write reference.
    #[test]
    fn responses_are_invariant_under_random_chunking(
        index in 0usize..13,
        raw_cuts in proptest::collection::vec(0usize..4096, 0..5),
    ) {
        let ctx = ctx();
        let corpus = corpus();
        let request = &corpus[index % corpus.len()];
        let reference = exchange(ctx.addr, &[request]);

        let mut cuts: Vec<usize> = raw_cuts
            .iter()
            .map(|c| c % request.len())
            .filter(|&c| c > 0)
            .collect();
        cuts.sort_unstable();
        cuts.dedup();
        let mut chunks: Vec<&[u8]> = Vec::with_capacity(cuts.len() + 1);
        let mut start = 0;
        for &cut in &cuts {
            chunks.push(&request[start..cut]);
            start = cut;
        }
        chunks.push(&request[start..]);

        let replayed = exchange(ctx.addr, &chunks);
        assert_equivalent(index % corpus.len(), &reference, &replayed);
    }
}
