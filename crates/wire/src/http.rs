//! A minimal HTTP/1.1 server-side implementation on plain `std::io`.
//!
//! The build environment has no crates.io access, so there is no hyper —
//! this module hand-rolls exactly the subset the prediction front-end
//! needs: request-line + header parsing, `Content-Length` body framing,
//! keep-alive connection reuse, and hard limits on header/body sizes so a
//! misbehaving client cannot balloon the server's memory.
//!
//! What is deliberately **not** implemented: chunked transfer encoding
//! (rejected with `501`), HTTP/2, TLS, multipart. The wire protocol is
//! small `Content-Length`-framed documents; anything else is an error
//! response, never a panic.
//!
//! # Incremental model
//!
//! [`RequestParser`] is a *push* parser built for the readiness reactor in
//! [`crate::reactor`]: the caller feeds it whatever bytes the socket had
//! ([`RequestParser::read_from`]) and asks for progress
//! ([`RequestParser::next_request`]), which is either a complete
//! [`Request`], a [`ParseProgress::NeedHead`]/[`ParseProgress::NeedBody`]
//! "come back with more bytes", or a hard [`HttpError`]. Bytes trailing a
//! complete request stay buffered and seed the next one — that is what
//! makes keep-alive and pipelining work without the parser ever touching
//! the socket itself.
//!
//! # Allocation discipline
//!
//! The preamble parse is **borrow-based**: header names and values are
//! never copied into per-header `String`s (the PR 4/5 implementation
//! allocated two per header line). A carved [`Request`] owns exactly one
//! `Vec<u8>` — the raw bytes of that request — and every accessor
//! ([`Request::method`], [`Request::header`], [`Request::headers`]) hands
//! out `&str` slices into it, so the per-request allocation count is a
//! small constant independent of the header count
//! (`tests/parser_alloc.rs` pins this with a counting allocator).

use std::io::{ErrorKind, Read, Write};
use std::time::Duration;

/// Size/time limits enforced while reading one request.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Cap on the request line + headers, bytes.
    pub max_header_bytes: usize,
    /// Cap on the declared `Content-Length`, bytes.
    pub max_body_bytes: usize,
    /// Wall-clock budget for receiving one full request once its first byte
    /// has arrived (slow-loris guard, enforced by the reactor's deadline
    /// sweep).
    pub request_deadline: Duration,
    /// How long to wait for the *first* byte of the next request on an
    /// otherwise idle keep-alive connection. Without this bound, silent
    /// sockets would hold their connection slot forever.
    pub idle_timeout: Duration,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_header_bytes: 16 * 1024,
            max_body_bytes: 4 * 1024 * 1024,
            request_deadline: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(60),
        }
    }
}

/// Why parsing a request off the wire failed. Every variant is answerable:
/// the framing up to the failure point was intelligible enough to write a
/// structured error response before closing (transport-level failures —
/// disconnects, timeouts — are the reactor's business, not the parser's).
#[derive(Debug)]
pub enum HttpError {
    /// Unparseable request line, header, or body framing → `400`.
    Malformed(String),
    /// The preamble outgrew [`Limits::max_header_bytes`] → `431`.
    HeadersTooLarge { limit: usize },
    /// Declared `Content-Length` exceeds [`Limits::max_body_bytes`] → `413`.
    BodyTooLarge { declared: usize, limit: usize },
    /// `Transfer-Encoding` framing this server does not implement → `501`.
    UnsupportedTransferEncoding,
    /// An HTTP version other than 1.0/1.1 → `505`.
    UnsupportedVersion(String),
}

impl HttpError {
    /// The status code to answer with.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Malformed(_) => 400,
            HttpError::HeadersTooLarge { .. } => 431,
            HttpError::BodyTooLarge { .. } => 413,
            HttpError::UnsupportedTransferEncoding => 501,
            HttpError::UnsupportedVersion(_) => 505,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            HttpError::HeadersTooLarge { limit } => {
                write!(f, "request headers exceed {limit} bytes")
            }
            HttpError::BodyTooLarge { declared, limit } => {
                write!(
                    f,
                    "request body of {declared} bytes exceeds {limit} byte limit"
                )
            }
            HttpError::UnsupportedTransferEncoding => {
                write!(
                    f,
                    "transfer encodings are not supported; use Content-Length"
                )
            }
            HttpError::UnsupportedVersion(v) => write!(f, "unsupported HTTP version {v:?}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// One parsed request, owning its raw bytes. The method/target/header
/// accessors borrow from that buffer — no per-header copies (see the
/// module docs on allocation discipline).
#[derive(Debug)]
pub struct Request {
    /// The raw bytes of exactly this request: preamble, blank line, body.
    data: Vec<u8>,
    /// `data[..head_len]` is the preamble (request line + header lines),
    /// exclusive of the terminating blank line.
    head_len: usize,
    /// Byte span of the method within `data`.
    method: (usize, usize),
    /// Byte span of the raw request target within `data`.
    target: (usize, usize),
    /// Byte offset where the body starts (after the blank line).
    body_start: usize,
    /// `true` for HTTP/1.1, `false` for HTTP/1.0.
    pub http11: bool,
}

impl Request {
    /// The request method (`GET`, `POST`, ...).
    pub fn method(&self) -> &str {
        self.span(self.method)
    }

    /// The raw request target (path plus any query string).
    pub fn target(&self) -> &str {
        self.span(self.target)
    }

    /// The request path without any query string.
    pub fn path(&self) -> &str {
        self.target()
            .split('?')
            .next()
            .unwrap_or_else(|| self.target())
    }

    /// The `Content-Length`-framed body.
    pub fn body(&self) -> &[u8] {
        &self.data[self.body_start..]
    }

    /// First value of a header by name (ASCII case-insensitive), trimmed.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v)
    }

    /// Iterates `(name, value)` header pairs in wire order, borrowed from
    /// the request buffer; names keep their wire casing, values are
    /// OWS-trimmed.
    pub fn headers(&self) -> impl Iterator<Item = (&str, &str)> {
        // The preamble was validated as UTF-8 with well-formed header
        // lines when the request was carved, so the unwraps cannot fire.
        let head = std::str::from_utf8(&self.data[..self.head_len]).expect("validated preamble");
        head.split('\n')
            .skip(1)
            .map(|line| line.strip_suffix('\r').unwrap_or(line))
            .filter(|line| !line.is_empty())
            .map(|line| {
                let (name, value) = line.split_once(':').expect("validated header line");
                (name, value.trim())
            })
    }

    /// Whether the connection should stay open after the response:
    /// HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close, and an explicit
    /// `Connection` header overrides either. Allocation-free.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if contains_ci(v, "close") => false,
            Some(v) if contains_ci(v, "keep-alive") => true,
            _ => self.http11,
        }
    }

    fn span(&self, (start, end): (usize, usize)) -> &str {
        std::str::from_utf8(&self.data[start..end]).expect("validated preamble span")
    }
}

/// ASCII case-insensitive substring search (both sides expected ASCII;
/// `needle` must be non-empty).
fn contains_ci(haystack: &str, needle: &str) -> bool {
    haystack
        .as_bytes()
        .windows(needle.len())
        .any(|w| w.eq_ignore_ascii_case(needle.as_bytes()))
}

/// What [`RequestParser::next_request`] found in the buffered bytes.
#[derive(Debug)]
pub enum ParseProgress {
    /// The preamble terminator has not arrived yet.
    NeedHead,
    /// The preamble parsed cleanly; the declared body is still incomplete.
    NeedBody,
    /// One complete request, carved off the front of the buffer.
    Request(Request),
}

/// Incremental server-side request parser: the caller appends raw socket
/// bytes and asks for progress. See the module docs for the push model and
/// allocation discipline.
pub struct RequestParser {
    limits: Limits,
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted between requests.
    pos: usize,
    /// Memo of how far past `pos` the preamble-terminator scan has already
    /// looked, so drip-fed headers cost O(n) total instead of O(n²).
    scanned: usize,
}

impl RequestParser {
    pub fn new(limits: Limits) -> Self {
        RequestParser {
            limits,
            buf: Vec::with_capacity(4096),
            pos: 0,
            scanned: 0,
        }
    }

    /// Bytes buffered but not yet carved into a request — non-zero means a
    /// request is (at least partially) in flight, which is how the reactor
    /// distinguishes an idle keep-alive close from a mid-request disconnect.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Appends raw bytes (test/baseline harness entry point; the reactor
    /// uses [`RequestParser::read_from`]).
    pub fn feed(&mut self, bytes: &[u8]) {
        self.compact_if_large();
        self.buf.extend_from_slice(bytes);
    }

    /// One `read` from `r` into the buffer. `Ok(0)` is end-of-stream;
    /// `WouldBlock`/`TimedOut`/`Interrupted` are surfaced unchanged for the
    /// caller to interpret.
    pub fn read_from(&mut self, r: &mut impl Read) -> std::io::Result<usize> {
        self.compact_if_large();
        let len = self.buf.len();
        self.buf.resize(len + 4096, 0);
        match r.read(&mut self.buf[len..]) {
            Ok(n) => {
                self.buf.truncate(len + n);
                Ok(n)
            }
            Err(e) => {
                self.buf.truncate(len);
                Err(e)
            }
        }
    }

    /// Attempts to carve the next request out of the buffered bytes.
    pub fn next_request(&mut self) -> Result<ParseProgress, HttpError> {
        let avail = &self.buf[self.pos..];
        if avail.is_empty() {
            return Ok(ParseProgress::NeedHead);
        }
        // Resume the terminator scan where the last attempt stopped (minus
        // a few bytes in case the terminator straddles the old boundary).
        let from = self.scanned.saturating_sub(3);
        let (head_len, blank_len) = match find_header_end(avail, from) {
            Some(found) => found,
            None => {
                if avail.len() > self.limits.max_header_bytes {
                    return Err(HttpError::HeadersTooLarge {
                        limit: self.limits.max_header_bytes,
                    });
                }
                self.scanned = avail.len();
                return Ok(ParseProgress::NeedHead);
            }
        };
        if head_len > self.limits.max_header_bytes {
            return Err(HttpError::HeadersTooLarge {
                limit: self.limits.max_header_bytes,
            });
        }
        let head = std::str::from_utf8(&avail[..head_len])
            .map_err(|_| HttpError::Malformed("preamble is not valid UTF-8".into()))?;
        let preamble = validate_preamble(head)?;
        if preamble.content_length > self.limits.max_body_bytes {
            return Err(HttpError::BodyTooLarge {
                declared: preamble.content_length,
                limit: self.limits.max_body_bytes,
            });
        }
        let body_start = head_len + blank_len;
        let total = body_start + preamble.content_length;
        if avail.len() < total {
            return Ok(ParseProgress::NeedBody);
        }
        // Carve: one Vec holding exactly this request's bytes; all header
        // access borrows from it.
        let data = avail[..total].to_vec();
        self.pos += total;
        self.scanned = 0;
        Ok(ParseProgress::Request(Request {
            data,
            head_len,
            method: preamble.method,
            target: preamble.target,
            body_start,
            http11: preamble.http11,
        }))
    }

    /// Reclaims consumed bytes once they dominate the buffer (amortized so
    /// pipelined parsing is not O(n²) in memmoves).
    fn compact_if_large(&mut self) {
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos >= 4096) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

/// Offset of the preamble terminator and its length, searching from `from`:
/// `(head_len, blank_len)` where `blank_len` is 4 for `\r\n\r\n`, 2 for a
/// bare `\n\n`. Earliest terminator of either style wins, so a body
/// containing one style can never swallow the other style's preamble.
fn find_header_end(buf: &[u8], from: usize) -> Option<(usize, usize)> {
    let start = from.min(buf.len());
    let crlf = buf[start..]
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + start);
    let lf = buf[start..]
        .windows(2)
        .position(|w| w == b"\n\n")
        .map(|p| p + start);
    match (crlf, lf) {
        (Some(a), Some(b)) if b < a => Some((b, 2)),
        (Some(a), _) => Some((a, 4)),
        (None, Some(b)) => Some((b, 2)),
        (None, None) => None,
    }
}

/// The borrow-based preamble parse result: spans index into the head the
/// caller handed in (and equally into the carved request buffer, which
/// starts with that head).
struct Preamble {
    method: (usize, usize),
    target: (usize, usize),
    http11: bool,
    content_length: usize,
}

/// Validates the request line and every header line in one pass, extracting
/// the framing facts (`Content-Length`, `Transfer-Encoding`) without
/// allocating per header. The spans it returns are byte offsets into
/// `head`.
fn validate_preamble(head: &str) -> Result<Preamble, HttpError> {
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    if !method.chars().all(|c| c.is_ascii_alphabetic()) || method.is_empty() {
        return Err(HttpError::Malformed(format!("bad method {method:?}")));
    }
    if !target.starts_with('/') {
        return Err(HttpError::Malformed(format!(
            "request target {target:?} must be origin-form"
        )));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => return Err(HttpError::UnsupportedVersion(other.to_string())),
    };
    let span_of = |s: &str| {
        let start = s.as_ptr() as usize - head.as_ptr() as usize;
        (start, start + s.len())
    };
    let mut content_length: Option<usize> = None;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if line.starts_with(' ') || line.starts_with('\t') {
            return Err(HttpError::Malformed(
                "obsolete header line folding is not supported".into(),
            ));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header line {line:?}")));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed(format!("bad header name {name:?}")));
        }
        if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(HttpError::UnsupportedTransferEncoding);
        }
        if name.eq_ignore_ascii_case("content-length") {
            let value = value.trim();
            let parsed = parse_content_length(value)
                .ok_or_else(|| HttpError::Malformed(format!("bad Content-Length {value:?}")))?;
            match content_length {
                Some(prev) if prev != parsed => {
                    return Err(HttpError::Malformed(
                        "conflicting Content-Length headers".into(),
                    ));
                }
                _ => content_length = Some(parsed),
            }
        }
    }
    Ok(Preamble {
        method: span_of(method),
        target: span_of(target),
        http11,
        content_length: content_length.unwrap_or(0),
    })
}

/// Strict `Content-Length` grammar: `1*DIGIT`, nothing else. `str::parse`
/// would be lenient here — it accepts a leading `+` — and request smuggling
/// defenses are built on front-ends and back-ends agreeing byte-for-byte on
/// framing, so anything but plain ASCII digits is refused: signs, embedded
/// or surrounding whitespace, and values overflowing `u64` all fail.
fn parse_content_length(value: &str) -> Option<usize> {
    let bytes = value.as_bytes();
    if bytes.is_empty() || !bytes.iter().all(u8::is_ascii_digit) {
        return None;
    }
    let mut length: u64 = 0;
    for &digit in bytes {
        length = length
            .checked_mul(10)?
            .checked_add(u64::from(digit - b'0'))?;
    }
    usize::try_from(length).ok()
}

/// The reason phrase for the status codes this server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        415 => "Unsupported Media Type",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Serializes one response — head and body — into a single buffer, ready
/// for the reactor's non-blocking write path.
pub fn encode_response(status: u16, content_type: &str, body: &[u8], keep_alive: bool) -> Vec<u8> {
    encode_response_with_retry(status, content_type, body, keep_alive, None)
}

/// [`encode_response`] plus an optional `Retry-After: <seconds>` header.
/// The 503 refusal paths set it so a router (or any client) gets a real
/// backoff signal instead of guessing; `None` emits no extra header.
pub fn encode_response_with_retry(
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    retry_after: Option<u64>,
) -> Vec<u8> {
    encode_response_ext(status, content_type, body, keep_alive, retry_after, &[])
}

/// [`encode_response_with_retry`] plus arbitrary extra response headers
/// (name, value) — the telemetry layer echoes `x-exa-trace-id` through
/// here. Callers must pass header-safe values (no CR/LF); the only
/// in-tree caller emits hex-formatted trace ids.
pub fn encode_response_ext(
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    retry_after: Option<u64>,
    extra_headers: &[(&str, String)],
) -> Vec<u8> {
    let mut extra = match retry_after {
        Some(seconds) => format!("Retry-After: {seconds}\r\n"),
        None => String::new(),
    };
    for (name, value) in extra_headers {
        extra.push_str(name);
        extra.push_str(": ");
        extra.push_str(value);
        extra.push_str("\r\n");
    }
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n{extra}Connection: {}\r\n\r\n",
        status_reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    let mut message = Vec::with_capacity(head.len() + body.len());
    message.extend_from_slice(head.as_bytes());
    message.extend_from_slice(body);
    message
}

/// Serializes one JSON response with explicit framing and writes it in a
/// single `write_all`.
pub fn write_response(
    w: impl Write,
    status: u16,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    write_response_typed(w, status, "application/json", body, keep_alive)
}

/// [`write_response`] with an explicit `Content-Type` — the binary predict
/// codec answers `application/x-exa-frame` bodies through this.
pub fn write_response_typed(
    mut w: impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    w.write_all(&encode_response(status, content_type, body, keep_alive))?;
    w.flush()
}

/// `true` when the I/O error means "no bytes right now" on a non-blocking
/// or timed-out read/write rather than a broken stream.
pub fn would_block(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives the incremental parser the way the old blocking reader did:
    /// everything is already buffered, carve one request or fail.
    fn parse_one(bytes: &[u8]) -> Result<Request, HttpError> {
        let mut parser = RequestParser::new(Limits::default());
        parser.feed(bytes);
        match parser.next_request()? {
            ParseProgress::Request(req) => Ok(req),
            other => panic!("incomplete parse of {bytes:?}: {other:?}"),
        }
    }

    #[test]
    fn parses_a_post_with_body_and_keep_alive() {
        let raw = b"POST /v1/models/m/predict HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let req = parse_one(raw).unwrap();
        assert_eq!(req.method(), "POST");
        assert_eq!(req.path(), "/v1/models/m/predict");
        assert!(req.http11);
        assert!(req.keep_alive());
        assert_eq!(req.body(), b"abcd");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"), "lookup is case-insensitive");
        assert_eq!(
            req.headers().collect::<Vec<_>>(),
            [("Host", "x"), ("Content-Length", "4")]
        );
    }

    #[test]
    fn carves_pipelined_requests_out_of_one_stream() {
        let raw =
            b"GET /healthz HTTP/1.1\r\n\r\nGET /v1/stats HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut parser = RequestParser::new(Limits::default());
        parser.feed(raw);
        let first = match parser.next_request().unwrap() {
            ParseProgress::Request(req) => req,
            other => panic!("{other:?}"),
        };
        assert_eq!(first.path(), "/healthz");
        assert!(first.keep_alive());
        let second = match parser.next_request().unwrap() {
            ParseProgress::Request(req) => req,
            other => panic!("{other:?}"),
        };
        assert_eq!(second.path(), "/v1/stats");
        assert!(!second.keep_alive());
        assert!(matches!(
            parser.next_request().unwrap(),
            ParseProgress::NeedHead
        ));
        assert_eq!(parser.buffered(), 0);
    }

    #[test]
    fn byte_by_byte_arrival_reports_progress_then_parses() {
        let raw = b"POST /p HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi";
        let mut parser = RequestParser::new(Limits::default());
        for (i, byte) in raw.iter().enumerate() {
            parser.feed(std::slice::from_ref(byte));
            let progress = parser.next_request().unwrap();
            if i + 1 < raw.len() {
                match progress {
                    ParseProgress::NeedHead => assert!(i + 4 < raw.len() + 2, "head phase"),
                    ParseProgress::NeedBody => {
                        assert!(i >= raw.len() - 3, "body phase starts after the blank line")
                    }
                    ParseProgress::Request(_) => panic!("complete at byte {i}"),
                }
            } else {
                match progress {
                    ParseProgress::Request(req) => assert_eq!(req.body(), b"hi"),
                    other => panic!("{other:?}"),
                }
            }
        }
    }

    #[test]
    fn http10_defaults_to_close_and_can_opt_in() {
        let req = parse_one(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.keep_alive());
        let req = parse_one(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(req.keep_alive());
        let req = parse_one(b"GET / HTTP/1.1\r\nConnection: Close\r\n\r\n").unwrap();
        assert!(!req.keep_alive(), "Connection matching ignores case");
    }

    #[test]
    fn malformed_preambles_are_errors_not_panics() {
        for raw in [
            &b"NOT A REQUEST\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"GET noslash HTTP/1.1\r\n\r\n",
            b"G=T / HTTP/1.1\r\n\r\n",
            b"GET / HTTP/2.0\r\n\r\n",
            b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"GET / HTTP/1.1\r\nbad name: x\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: ten\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n",
            b"GET / HTTP/1.1\r\nA: 1\r\n folded\r\n\r\n",
            b"\xff\xfe / HTTP/1.1\r\n\r\n",
        ] {
            let err = parse_one(raw).unwrap_err();
            assert!(
                matches!(
                    err,
                    HttpError::Malformed(_) | HttpError::UnsupportedVersion(_)
                ),
                "{raw:?} gave {err:?}"
            );
        }
    }

    #[test]
    fn content_length_grammar_is_strict() {
        // Fuzz-style table: every deviation from 1*DIGIT is a structured
        // 400, never a lenient parse. `"+5".parse::<usize>()` succeeds in
        // Rust, so each of these is a live regression guard, not a tautology.
        let reject = [
            "+5",                      // sign — str::parse would accept it
            "-5",                      // sign
            "1 2",                     // embedded whitespace
            "1\t2",                    // embedded tab
            "0x10",                    // radix prefix
            "5.0",                     // decimal
            "5e3",                     // exponent
            "",                        // empty value
            "18446744073709551616",    // u64::MAX + 1
            "99999999999999999999999", // far past u64
            "١٢٣",                     // non-ASCII digits
            "5,5",                     // list syntax
        ];
        for value in reject {
            // Note the \t guard: the parser trims OWS around the value
            // (legal per RFC 9110), so craft values whose *interior* is bad.
            let raw = format!("POST / HTTP/1.1\r\nContent-Length:{value}\r\nX: y\r\n\r\n");
            let err = parse_one(raw.as_bytes()).unwrap_err();
            assert!(
                matches!(err, HttpError::Malformed(_)),
                "Content-Length {value:?} gave {err:?}"
            );
            assert_eq!(err.status(), 400, "{value:?}");
        }
        // The strict grammar still accepts plain digits (leading zeros are
        // 1*DIGIT per the RFC) and the usual OWS around the value.
        for (value, expect) in [("0", 0usize), ("007", 7), (" 4 ", 4)] {
            let raw = format!(
                "POST / HTTP/1.1\r\nContent-Length:{value}\r\n\r\n{}",
                "x".repeat(expect)
            );
            let req = parse_one(raw.as_bytes()).unwrap();
            assert_eq!(req.body().len(), expect, "{value:?}");
        }
    }

    #[test]
    fn transfer_encoding_is_rejected_with_501() {
        let err = parse_one(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err();
        assert!(matches!(err, HttpError::UnsupportedTransferEncoding));
        assert_eq!(err.status(), 501);
    }

    #[test]
    fn oversized_headers_and_bodies_are_refused() {
        // A terminated-but-oversized preamble.
        let mut raw = b"GET / HTTP/1.1\r\nX-Big: ".to_vec();
        raw.extend(vec![b'a'; 64 * 1024]);
        raw.extend_from_slice(b"\r\n\r\n");
        let err = parse_one(&raw).unwrap_err();
        assert!(matches!(err, HttpError::HeadersTooLarge { .. }));
        assert_eq!(err.status(), 431);

        // An unterminated preamble already past the cap must fail *before*
        // more bytes arrive (a slow-loris cannot buffer unbounded headers).
        let mut parser = RequestParser::new(Limits::default());
        parser.feed(b"GET / HTTP/1.1\r\nX-Big: ");
        parser.feed(&vec![b'a'; 64 * 1024]);
        assert!(matches!(
            parser.next_request().unwrap_err(),
            HttpError::HeadersTooLarge { .. }
        ));

        let err = parse_one(b"POST / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n").unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge { .. }));
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn truncated_requests_report_need_more() {
        let mut parser = RequestParser::new(Limits::default());
        parser.feed(b"GET / HT");
        assert!(matches!(
            parser.next_request().unwrap(),
            ParseProgress::NeedHead
        ));
        assert_eq!(parser.buffered(), 8, "mid-request bytes stay buffered");

        let mut parser = RequestParser::new(Limits::default());
        parser.feed(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc");
        assert!(matches!(
            parser.next_request().unwrap(),
            ParseProgress::NeedBody
        ));
    }

    #[test]
    fn bare_lf_line_endings_are_tolerated() {
        let req = parse_one(b"POST /p HTTP/1.1\nContent-Length: 2\n\nhi").unwrap();
        assert_eq!(req.body(), b"hi");
        // Mixed endings: CRLF preamble lines terminated by a bare \n\n pair
        // inside the stream still frame correctly (earliest terminator
        // wins), and vice versa.
        let req = parse_one(b"POST /p HTTP/1.1\nContent-Length: 4\n\n\r\n\r\n").unwrap();
        assert_eq!(req.body(), b"\r\n\r\n", "body may contain the other style");
    }

    #[test]
    fn read_from_buffers_stream_bytes() {
        let mut parser = RequestParser::new(Limits::default());
        let mut stream: &[u8] = b"GET /healthz HTTP/1.1\r\n\r\n";
        let n = parser.read_from(&mut stream).unwrap();
        assert_eq!(n, 25);
        match parser.next_request().unwrap() {
            ParseProgress::Request(req) => assert_eq!(req.path(), "/healthz"),
            other => panic!("{other:?}"),
        }
        assert_eq!(parser.read_from(&mut stream).unwrap(), 0, "EOF is Ok(0)");
    }

    #[test]
    fn response_writer_frames_and_reports_connection_state() {
        let mut out = Vec::new();
        write_response(&mut out, 200, br#"{"ok":true}"#, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));

        let mut out = Vec::new();
        write_response(&mut out, 503, b"{}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Connection: close\r\n"));
    }

    #[test]
    fn retry_after_header_is_emitted_only_when_set() {
        let with = encode_response_with_retry(503, "application/json", b"{}", true, Some(2));
        let text = String::from_utf8(with).unwrap();
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(
            text.contains("Content-Length: 2\r\n"),
            "framing survives the extra header"
        );
        let without = encode_response(503, "application/json", b"{}", true);
        assert!(!String::from_utf8(without).unwrap().contains("Retry-After"));
    }
}
