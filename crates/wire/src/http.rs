//! A minimal HTTP/1.1 server-side implementation on plain `std::io`.
//!
//! The build environment has no crates.io access, so there is no hyper —
//! this module hand-rolls exactly the subset the prediction front-end
//! needs: request-line + header parsing, `Content-Length` body framing,
//! keep-alive connection reuse, and hard limits on header/body sizes so a
//! misbehaving client cannot balloon a connection thread's memory.
//!
//! What is deliberately **not** implemented: chunked transfer encoding
//! (rejected with `501`), HTTP/2, TLS, multipart. The wire protocol is
//! small JSON documents over `Content-Length`-framed requests; anything
//! else is an error response, never a panic.
//!
//! # Blocking model
//!
//! [`HttpConnection::read_request`] is called on a connection thread whose
//! stream has a short read timeout. Timeouts while *waiting for a request*
//! poll the caller's `abort` flag (that is how graceful shutdown reaches
//! idle keep-alive connections); timeouts *inside* a request count against
//! [`Limits::request_deadline`] so a slow-loris client is eventually
//! disconnected rather than pinning a thread forever.

use std::io::{ErrorKind, Read, Write};
use std::time::{Duration, Instant};

/// Size/time limits enforced while reading one request.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Cap on the request line + headers, bytes.
    pub max_header_bytes: usize,
    /// Cap on the declared `Content-Length`, bytes.
    pub max_body_bytes: usize,
    /// Wall-clock budget for receiving one full request once its first byte
    /// has arrived.
    pub request_deadline: Duration,
    /// How long to wait for the *first* byte of the next request on an
    /// otherwise idle keep-alive connection. Without this bound, silent
    /// sockets would hold their connection slot forever.
    pub idle_timeout: Duration,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_header_bytes: 16 * 1024,
            max_body_bytes: 4 * 1024 * 1024,
            request_deadline: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(60),
        }
    }
}

/// Why reading a request off the wire failed.
#[derive(Debug)]
pub enum HttpError {
    /// Unparseable request line, header, or body framing → `400`.
    Malformed(String),
    /// The preamble outgrew [`Limits::max_header_bytes`] → `431`.
    HeadersTooLarge { limit: usize },
    /// Declared `Content-Length` exceeds [`Limits::max_body_bytes`] → `413`.
    BodyTooLarge { declared: usize, limit: usize },
    /// `Transfer-Encoding` framing this server does not implement → `501`.
    UnsupportedTransferEncoding,
    /// An HTTP version other than 1.0/1.1 → `505`.
    UnsupportedVersion(String),
    /// The client closed the connection **between** requests: the clean end
    /// of a keep-alive session, not an error.
    Closed,
    /// The client vanished mid-request (EOF before the framing completed).
    Disconnected,
    /// The caller's abort flag tripped while waiting for the next request.
    Aborted,
    /// [`Limits::idle_timeout`] elapsed with no request bytes at all: an
    /// idle keep-alive connection being reclaimed, not a protocol error.
    IdleTimeout,
    /// [`Limits::request_deadline`] elapsed mid-request.
    Timeout,
    /// Any other socket error.
    Io(String),
}

impl HttpError {
    /// The status code to answer with, when the failure is answerable at
    /// all (`None` means the connection is beyond responding — just close).
    pub fn status(&self) -> Option<u16> {
        match self {
            HttpError::Malformed(_) => Some(400),
            HttpError::HeadersTooLarge { .. } => Some(431),
            HttpError::BodyTooLarge { .. } => Some(413),
            HttpError::UnsupportedTransferEncoding => Some(501),
            HttpError::UnsupportedVersion(_) => Some(505),
            HttpError::Closed
            | HttpError::Disconnected
            | HttpError::Aborted
            | HttpError::IdleTimeout
            | HttpError::Timeout
            | HttpError::Io(_) => None,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            HttpError::HeadersTooLarge { limit } => {
                write!(f, "request headers exceed {limit} bytes")
            }
            HttpError::BodyTooLarge { declared, limit } => {
                write!(
                    f,
                    "request body of {declared} bytes exceeds {limit} byte limit"
                )
            }
            HttpError::UnsupportedTransferEncoding => {
                write!(
                    f,
                    "transfer encodings are not supported; use Content-Length"
                )
            }
            HttpError::UnsupportedVersion(v) => write!(f, "unsupported HTTP version {v:?}"),
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::Disconnected => write!(f, "client disconnected mid-request"),
            HttpError::Aborted => write!(f, "server is shutting down"),
            HttpError::IdleTimeout => write!(f, "idle connection timed out"),
            HttpError::Timeout => write!(f, "timed out reading request"),
            HttpError::Io(msg) => write!(f, "socket error: {msg}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// One parsed request: the method/target line, lower-cased headers and the
/// `Content-Length`-framed body.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// The raw request target (path plus any query string).
    pub target: String,
    /// `true` for HTTP/1.1, `false` for HTTP/1.0.
    pub http11: bool,
    /// Header `(name, value)` pairs; names lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The request path without any query string.
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// Whether the connection should stay open after the response:
    /// HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close, and an explicit
    /// `Connection` header overrides either.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection").map(str::to_ascii_lowercase) {
            Some(v) if v.contains("close") => false,
            Some(v) if v.contains("keep-alive") => true,
            _ => self.http11,
        }
    }
}

/// Server side of one TCP connection: buffers the byte stream and carves
/// `Content-Length`-framed requests out of it (leftover bytes after one
/// request seed the next — that is what makes keep-alive work).
pub struct HttpConnection<R: Read> {
    reader: R,
    limits: Limits,
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted between requests.
    pos: usize,
}

/// Outcome of one buffered read.
enum Fill {
    /// More bytes arrived.
    Data,
    /// Orderly EOF from the peer.
    Eof,
    /// The read timed out (stream has a read timeout); caller decides
    /// whether to retry or give up.
    TimedOut,
}

impl<R: Read> HttpConnection<R> {
    pub fn new(reader: R, limits: Limits) -> Self {
        HttpConnection {
            reader,
            limits,
            buf: Vec::with_capacity(4096),
            pos: 0,
        }
    }

    /// Reads the next request. Blocks until one arrives, the peer closes,
    /// `abort()` turns true (polled on read timeouts while idle), or the
    /// request violates a limit.
    pub fn read_request(&mut self, abort: impl Fn() -> bool) -> Result<Request, HttpError> {
        self.compact();
        // Phase 1 — wait for the first byte (idle keep-alive): timeouts
        // here poll the abort flag, bounded by the idle timeout so a silent
        // socket cannot hold its connection slot forever.
        let idle_deadline = Instant::now() + self.limits.idle_timeout;
        while self.buf.len() == self.pos {
            if abort() {
                return Err(HttpError::Aborted);
            }
            match self.fill()? {
                Fill::Data => break,
                Fill::Eof => return Err(HttpError::Closed),
                Fill::TimedOut => {
                    if Instant::now() >= idle_deadline {
                        return Err(HttpError::IdleTimeout);
                    }
                }
            }
        }
        // Phase 2 — the request has started; everything below must finish
        // within the per-request deadline.
        let deadline = Instant::now() + self.limits.request_deadline;
        let header_end = loop {
            if let Some(end) = find_header_end(&self.buf[self.pos..]) {
                break self.pos + end;
            }
            if self.buf.len() - self.pos > self.limits.max_header_bytes {
                return Err(HttpError::HeadersTooLarge {
                    limit: self.limits.max_header_bytes,
                });
            }
            self.fill_until(deadline)?;
        };
        let head = std::str::from_utf8(&self.buf[self.pos..header_end])
            .map_err(|_| HttpError::Malformed("preamble is not valid UTF-8".into()))?
            .to_string();
        if head.len() > self.limits.max_header_bytes {
            return Err(HttpError::HeadersTooLarge {
                limit: self.limits.max_header_bytes,
            });
        }
        // Skip the blank line terminating the preamble.
        self.pos = header_end;
        self.skip_blank_line();
        let (method, target, http11, headers) = parse_preamble(&head)?;
        let content_length = body_length(&headers)?;
        if content_length > self.limits.max_body_bytes {
            return Err(HttpError::BodyTooLarge {
                declared: content_length,
                limit: self.limits.max_body_bytes,
            });
        }
        // Phase 3 — the body, straight off the buffer + stream.
        while self.buf.len() - self.pos < content_length {
            self.fill_until(deadline)?;
        }
        let body = self.buf[self.pos..self.pos + content_length].to_vec();
        self.pos += content_length;
        Ok(Request {
            method,
            target,
            http11,
            headers,
            body,
        })
    }

    /// One buffered read from the underlying stream.
    fn fill(&mut self) -> Result<Fill, HttpError> {
        let mut chunk = [0u8; 4096];
        match self.reader.read(&mut chunk) {
            Ok(0) => Ok(Fill::Eof),
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(Fill::Data)
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                Ok(Fill::TimedOut)
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => Ok(Fill::TimedOut),
            Err(e) => Err(HttpError::Io(e.to_string())),
        }
    }

    /// `fill` for mid-request reads: EOF is a disconnect, and timeouts
    /// retry until `deadline`.
    fn fill_until(&mut self, deadline: Instant) -> Result<(), HttpError> {
        loop {
            match self.fill()? {
                Fill::Data => return Ok(()),
                Fill::Eof => return Err(HttpError::Disconnected),
                Fill::TimedOut => {
                    if Instant::now() >= deadline {
                        return Err(HttpError::Timeout);
                    }
                }
            }
        }
    }

    /// Drops the `\r\n\r\n` / `\n\n` that `find_header_end` stopped at.
    fn skip_blank_line(&mut self) {
        if self.buf[self.pos..].starts_with(b"\r\n\r\n") {
            self.pos += 4;
        } else if self.buf[self.pos..].starts_with(b"\n\n") {
            self.pos += 2;
        }
    }

    /// Reclaims consumed bytes between requests.
    fn compact(&mut self) {
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

/// Offset of the preamble terminator (exclusive of the blank line), if the
/// buffer already holds a complete `\r\n\r\n`- or `\n\n`-terminated head.
fn find_header_end(buf: &[u8]) -> Option<usize> {
    let crlf = buf.windows(4).position(|w| w == b"\r\n\r\n");
    let lf = buf.windows(2).position(|w| w == b"\n\n");
    // Earliest terminator of either style wins, so a body containing
    // `\r\n\r\n` can never swallow a bare-LF preamble (or vice versa).
    match (crlf, lf) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

/// Parses the request line + header lines out of the UTF-8 preamble.
#[allow(clippy::type_complexity)]
fn parse_preamble(head: &str) -> Result<(String, String, bool, Vec<(String, String)>), HttpError> {
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    if !method.chars().all(|c| c.is_ascii_alphabetic()) || method.is_empty() {
        return Err(HttpError::Malformed(format!("bad method {method:?}")));
    }
    if !target.starts_with('/') {
        return Err(HttpError::Malformed(format!(
            "request target {target:?} must be origin-form"
        )));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => return Err(HttpError::UnsupportedVersion(other.to_string())),
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if line.starts_with(' ') || line.starts_with('\t') {
            return Err(HttpError::Malformed(
                "obsolete header line folding is not supported".into(),
            ));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header line {line:?}")));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed(format!("bad header name {name:?}")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok((method.to_string(), target.to_string(), http11, headers))
}

/// Body length from the framing headers: `Content-Length` (validated,
/// duplicates must agree) or zero; any `Transfer-Encoding` is refused.
fn body_length(headers: &[(String, String)]) -> Result<usize, HttpError> {
    if headers.iter().any(|(n, _)| n == "transfer-encoding") {
        return Err(HttpError::UnsupportedTransferEncoding);
    }
    let mut length: Option<usize> = None;
    for (name, value) in headers {
        if name != "content-length" {
            continue;
        }
        let parsed = parse_content_length(value)
            .ok_or_else(|| HttpError::Malformed(format!("bad Content-Length {value:?}")))?;
        match length {
            Some(prev) if prev != parsed => {
                return Err(HttpError::Malformed(
                    "conflicting Content-Length headers".into(),
                ));
            }
            _ => length = Some(parsed),
        }
    }
    Ok(length.unwrap_or(0))
}

/// Strict `Content-Length` grammar: `1*DIGIT`, nothing else. `str::parse`
/// would be lenient here — it accepts a leading `+` — and request smuggling
/// defenses are built on front-ends and back-ends agreeing byte-for-byte on
/// framing, so anything but plain ASCII digits is refused: signs, embedded
/// or surrounding whitespace, and values overflowing `u64` all fail.
fn parse_content_length(value: &str) -> Option<usize> {
    let bytes = value.as_bytes();
    if bytes.is_empty() || !bytes.iter().all(u8::is_ascii_digit) {
        return None;
    }
    let mut length: u64 = 0;
    for &digit in bytes {
        length = length
            .checked_mul(10)?
            .checked_add(u64::from(digit - b'0'))?;
    }
    usize::try_from(length).ok()
}

/// The reason phrase for the status codes this server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        415 => "Unsupported Media Type",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Serializes one JSON response with explicit framing and writes it in a
/// single `write_all`.
pub fn write_response(
    w: impl Write,
    status: u16,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    write_response_typed(w, status, "application/json", body, keep_alive)
}

/// [`write_response`] with an explicit `Content-Type` — the binary predict
/// codec answers `application/x-exa-frame` bodies through this.
pub fn write_response_typed(
    mut w: impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        status_reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    let mut message = Vec::with_capacity(head.len() + body.len());
    message.extend_from_slice(head.as_bytes());
    message.extend_from_slice(body);
    w.write_all(&message)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conn(bytes: &[u8]) -> HttpConnection<&[u8]> {
        HttpConnection::new(bytes, Limits::default())
    }

    #[test]
    fn parses_a_post_with_body_and_keep_alive() {
        let raw = b"POST /v1/models/m/predict HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let req = conn(raw).read_request(|| false).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path(), "/v1/models/m/predict");
        assert!(req.http11);
        assert!(req.keep_alive());
        assert_eq!(req.body, b"abcd");
        assert_eq!(req.header("host"), Some("x"));
    }

    #[test]
    fn carves_pipelined_requests_out_of_one_stream() {
        let raw =
            b"GET /healthz HTTP/1.1\r\n\r\nGET /v1/stats HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut c = conn(raw);
        let first = c.read_request(|| false).unwrap();
        assert_eq!(first.path(), "/healthz");
        assert!(first.keep_alive());
        let second = c.read_request(|| false).unwrap();
        assert_eq!(second.path(), "/v1/stats");
        assert!(!second.keep_alive());
        assert!(matches!(c.read_request(|| false), Err(HttpError::Closed)));
    }

    #[test]
    fn http10_defaults_to_close_and_can_opt_in() {
        let raw = b"GET / HTTP/1.0\r\n\r\n";
        let req = conn(raw).read_request(|| false).unwrap();
        assert!(!req.keep_alive());
        let raw = b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n";
        let req = conn(raw).read_request(|| false).unwrap();
        assert!(req.keep_alive());
    }

    #[test]
    fn malformed_preambles_are_errors_not_panics() {
        for raw in [
            &b"NOT A REQUEST\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"GET noslash HTTP/1.1\r\n\r\n",
            b"G=T / HTTP/1.1\r\n\r\n",
            b"GET / HTTP/2.0\r\n\r\n",
            b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"GET / HTTP/1.1\r\nbad name: x\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: ten\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n",
            b"GET / HTTP/1.1\r\nA: 1\r\n folded\r\n\r\n",
            b"\xff\xfe / HTTP/1.1\r\n\r\n",
        ] {
            let err = conn(raw).read_request(|| false).unwrap_err();
            assert!(
                matches!(
                    err,
                    HttpError::Malformed(_) | HttpError::UnsupportedVersion(_)
                ),
                "{raw:?} gave {err:?}"
            );
        }
    }

    #[test]
    fn content_length_grammar_is_strict() {
        // Fuzz-style table: every deviation from 1*DIGIT is a structured
        // 400, never a lenient parse. `"+5".parse::<usize>()` succeeds in
        // Rust, so each of these is a live regression guard, not a tautology.
        let reject = [
            "+5",                      // sign — str::parse would accept it
            "-5",                      // sign
            "1 2",                     // embedded whitespace
            "1\t2",                    // embedded tab
            "0x10",                    // radix prefix
            "5.0",                     // decimal
            "5e3",                     // exponent
            "",                        // empty value
            "18446744073709551616",    // u64::MAX + 1
            "99999999999999999999999", // far past u64
            "١٢٣",                     // non-ASCII digits
            "5,5",                     // list syntax
        ];
        for value in reject {
            // Note the \t guard: parse_preamble trims OWS around the value
            // (legal per RFC 9110), so craft values whose *interior* is bad.
            let raw = format!("POST / HTTP/1.1\r\nContent-Length:{value}\r\nX: y\r\n\r\n");
            let err = conn(raw.as_bytes()).read_request(|| false).unwrap_err();
            assert!(
                matches!(err, HttpError::Malformed(_)),
                "Content-Length {value:?} gave {err:?}"
            );
            assert_eq!(err.status(), Some(400), "{value:?}");
        }
        // The strict grammar still accepts plain digits (leading zeros are
        // 1*DIGIT per the RFC) and the usual OWS around the value.
        for (value, expect) in [("0", 0usize), ("007", 7), (" 4 ", 4)] {
            let raw = format!(
                "POST / HTTP/1.1\r\nContent-Length:{value}\r\n\r\n{}",
                "x".repeat(expect)
            );
            let req = conn(raw.as_bytes()).read_request(|| false).unwrap();
            assert_eq!(req.body.len(), expect, "{value:?}");
        }
    }

    #[test]
    fn transfer_encoding_is_rejected_with_501() {
        let raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        let err = conn(raw).read_request(|| false).unwrap_err();
        assert!(matches!(err, HttpError::UnsupportedTransferEncoding));
        assert_eq!(err.status(), Some(501));
    }

    #[test]
    fn oversized_headers_and_bodies_are_refused() {
        let mut raw = b"GET / HTTP/1.1\r\nX-Big: ".to_vec();
        raw.extend(vec![b'a'; 64 * 1024]);
        raw.extend_from_slice(b"\r\n\r\n");
        let err = conn(&raw).read_request(|| false).unwrap_err();
        assert!(matches!(err, HttpError::HeadersTooLarge { .. }));
        assert_eq!(err.status(), Some(431));

        let raw = b"POST / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n";
        let err = conn(raw).read_request(|| false).unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge { .. }));
        assert_eq!(err.status(), Some(413));
    }

    #[test]
    fn truncated_requests_surface_as_disconnects() {
        // Headers cut off mid-line.
        let err = conn(b"GET / HT").read_request(|| false).unwrap_err();
        assert!(matches!(err, HttpError::Disconnected), "{err:?}");
        // Body shorter than its Content-Length.
        let err = conn(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
            .read_request(|| false)
            .unwrap_err();
        assert!(matches!(err, HttpError::Disconnected), "{err:?}");
        // Nothing at all: the clean keep-alive close.
        let err = conn(b"").read_request(|| false).unwrap_err();
        assert!(matches!(err, HttpError::Closed), "{err:?}");
    }

    #[test]
    fn bare_lf_line_endings_are_tolerated() {
        let raw = b"POST /p HTTP/1.1\nContent-Length: 2\n\nhi";
        let req = conn(raw).read_request(|| false).unwrap();
        assert_eq!(req.body, b"hi");
    }

    #[test]
    fn response_writer_frames_and_reports_connection_state() {
        let mut out = Vec::new();
        write_response(&mut out, 200, br#"{"ok":true}"#, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));

        let mut out = Vec::new();
        write_response(&mut out, 503, b"{}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Connection: close\r\n"));
    }
}
