//! Readiness notification over raw syscalls: `epoll(7)` on Linux, with a
//! portable `poll(2)` fallback.
//!
//! The build environment has no crates.io access, so there is no `mio` and
//! no `libc` crate — in the spirit of `shims/README.md`, this module
//! declares the three syscalls it needs itself (`std` already links the
//! platform C library, so the symbols are there) and wraps them in a safe
//! [`Poller`] API that is deliberately tiny: register/modify/deregister a
//! file descriptor under a `u64` token, and wait for readiness events.
//!
//! Both backends are **level-triggered**: an fd with unread bytes keeps
//! reporting readable on every wait. The reactor leans on that — it never
//! has to drain a socket to exhaustion in one pass to stay correct.
//!
//! Backend choice: Linux uses `epoll` (O(ready) wakeups) unless the
//! `EXA_WIRE_FORCE_POLL=1` environment variable forces the `poll(2)`
//! backend — that is how CI exercises the portable path on Linux runners.
//! Other Unix platforms always use `poll(2)`, which scans O(registered)
//! descriptors per wait but needs nothing beyond POSIX.

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// Which readiness directions a registration is subscribed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// No read/write interest — only error/hangup conditions, which both
    /// backends report unconditionally. Used while a request is parked in
    /// dispatch so pipelined bytes in the kernel buffer don't busy-wake
    /// the reactor.
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd is readable (or has pending data / an incoming connection).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// Error or hangup: the peer closed or the socket broke. Reported even
    /// when not subscribed; treat as "read until it tells you".
    pub closed: bool,
}

/// A readiness poller over one of the two backends. See the module docs
/// for backend selection.
pub enum Poller {
    #[cfg(target_os = "linux")]
    Epoll(epoll::Epoll),
    Poll(poll::PollSet),
}

impl Poller {
    /// Opens a poller with the platform's preferred backend.
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            if std::env::var("EXA_WIRE_FORCE_POLL").map(|v| v == "1") != Ok(true) {
                return Ok(Poller::Epoll(epoll::Epoll::new()?));
            }
        }
        Ok(Poller::Poll(poll::PollSet::new()))
    }

    /// The backend's name, for stats and logs.
    pub fn backend(&self) -> &'static str {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(_) => "epoll",
            Poller::Poll(_) => "poll",
        }
    }

    /// Subscribes `fd` under `token`. The fd must stay open until
    /// [`Poller::deregister`].
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(ep) => ep.ctl(epoll::EPOLL_CTL_ADD, fd, token, interest),
            Poller::Poll(ps) => ps.register(fd, token, interest),
        }
    }

    /// Changes the interest set (and/or token) of a registered fd.
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(ep) => ep.ctl(epoll::EPOLL_CTL_MOD, fd, token, interest),
            Poller::Poll(ps) => ps.register(fd, token, interest),
        }
    }

    /// Unsubscribes `fd`. Call *before* closing the fd — a closed fd is
    /// removed from epoll automatically, but the poll backend would keep
    /// scanning a stale entry.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(ep) => ep.ctl(epoll::EPOLL_CTL_DEL, fd, 0, Interest::READABLE),
            Poller::Poll(ps) => {
                ps.deregister(fd);
                Ok(())
            }
        }
    }

    /// Blocks until at least one registered fd is ready or `timeout`
    /// elapses, appending events to `events` (which is cleared first).
    /// `EINTR` is retried internally.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
        events.clear();
        let millis = i32::try_from(timeout.as_millis())
            .unwrap_or(i32::MAX)
            .max(0);
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(ep) => ep.wait(events, millis),
            Poller::Poll(ps) => ps.wait(events, millis),
        }
    }
}

#[cfg(target_os = "linux")]
pub mod epoll {
    use super::{Event, Interest};
    use std::io;
    use std::os::fd::RawFd;

    pub const EPOLL_CLOEXEC: i32 = 0x80000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLLOUT: u32 = 0x4;
    pub const EPOLLERR: u32 = 0x8;
    pub const EPOLLHUP: u32 = 0x10;
    pub const EPOLLRDHUP: u32 = 0x2000;

    /// `struct epoll_event` with the kernel's ABI: packed on x86-64 (the
    /// kernel headers say `__attribute__((packed))` there), natural
    /// alignment elsewhere.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// An `epoll` instance plus its reusable kernel-events buffer.
    pub struct Epoll {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    impl Epoll {
        pub fn new() -> io::Result<Epoll> {
            // SAFETY: plain syscall; -1 is the only failure signal.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Epoll {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
            })
        }

        pub fn ctl(
            &mut self,
            op: i32,
            fd: RawFd,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: interest_bits(interest),
                data: token,
            };
            // SAFETY: `ev` outlives the call; DEL ignores the event pointer.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            let n = loop {
                // SAFETY: `buf` is a live, correctly-sized EpollEvent array.
                let rc = unsafe {
                    epoll_wait(
                        self.epfd,
                        self.buf.as_mut_ptr(),
                        self.buf.len() as i32,
                        timeout_ms,
                    )
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for raw in &self.buf[..n] {
                // Copy out of the (possibly packed) struct before use.
                let (bits, token) = (raw.events, raw.data);
                events.push(Event {
                    token,
                    readable: bits & EPOLLIN != 0,
                    writable: bits & EPOLLOUT != 0,
                    closed: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            // SAFETY: closing the fd we own; errors at teardown are moot.
            unsafe { close(self.epfd) };
        }
    }

    fn interest_bits(interest: Interest) -> u32 {
        let mut bits = EPOLLRDHUP;
        if interest.readable {
            bits |= EPOLLIN;
        }
        if interest.writable {
            bits |= EPOLLOUT;
        }
        bits
    }
}

pub mod poll {
    use super::{Event, Interest};
    use std::io;
    use std::os::fd::RawFd;

    pub const POLLIN: i16 = 0x1;
    pub const POLLOUT: i16 = 0x4;
    pub const POLLERR: i16 = 0x8;
    pub const POLLHUP: i16 = 0x10;
    pub const POLLNVAL: i16 = 0x20;

    /// `struct pollfd`, identical across Unix platforms.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    #[cfg(unix)]
    extern "C" {
        fn poll(fds: *mut PollFd, nfds: core::ffi::c_ulong, timeout: i32) -> i32;
    }

    #[cfg(not(unix))]
    compile_error!("exa-wire's readiness reactor requires a Unix platform");

    /// The `poll(2)` backend: a dense registration table rebuilt into a
    /// `pollfd` array per wait. O(registered) per call — fine for the
    /// portable fallback, and exactly why Linux defaults to epoll.
    pub struct PollSet {
        /// `(fd, token, interest)` per registration, in insertion order.
        entries: Vec<(RawFd, u64, Interest)>,
        fds: Vec<PollFd>,
    }

    impl PollSet {
        #[allow(clippy::new_without_default)]
        pub fn new() -> PollSet {
            PollSet {
                entries: Vec::new(),
                fds: Vec::new(),
            }
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            match self.entries.iter_mut().find(|(f, _, _)| *f == fd) {
                Some(entry) => *entry = (fd, token, interest),
                None => self.entries.push((fd, token, interest)),
            }
            Ok(())
        }

        pub fn deregister(&mut self, fd: RawFd) {
            self.entries.retain(|(f, _, _)| *f != fd);
        }

        pub fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            self.fds.clear();
            for &(fd, _, interest) in &self.entries {
                let mut bits = 0i16;
                if interest.readable {
                    bits |= POLLIN;
                }
                if interest.writable {
                    bits |= POLLOUT;
                }
                self.fds.push(PollFd {
                    fd,
                    events: bits,
                    revents: 0,
                });
            }
            let n = loop {
                // SAFETY: `fds` is a live, correctly-sized pollfd array.
                let rc = unsafe {
                    poll(
                        self.fds.as_mut_ptr(),
                        self.fds.len() as core::ffi::c_ulong,
                        timeout_ms,
                    )
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            if n == 0 {
                return Ok(());
            }
            for (pfd, &(_, token, _)) in self.fds.iter().zip(&self.entries) {
                if pfd.revents == 0 {
                    continue;
                }
                events.push(Event {
                    token,
                    readable: pfd.revents & POLLIN != 0,
                    writable: pfd.revents & POLLOUT != 0,
                    closed: pfd.revents & (POLLERR | POLLHUP | POLLNVAL) != 0,
                });
            }
            Ok(())
        }
    }
}
