//! The readiness reactor under [`WireServer`](crate::server::WireServer):
//! one thread, non-blocking sockets, a hand-rolled poller.
//!
//! PR 4's thread-per-connection design burned an OS thread (and its stack)
//! per connection — idle keep-alive sockets included — and capped
//! concurrency at the connection cap. This module replaces that with the
//! classic reactor shape:
//!
//! ```text
//!  [sys::Poller]  epoll(7) / poll(2), level-triggered
//!       │ readiness events (token = generation<<32 | slab index)
//!       ▼
//!  reactor thread ── accept / read / parse / route / write ──┐
//!       ▲                                                    │ submit
//!       │ Waker byte + completion queue                      ▼
//!  serve workers ◀── PredictionTicket::on_ready ◀── PredictionServer
//! ```
//!
//! * [`sys::Poller`] wraps the readiness syscalls (no `mio`, no `libc`
//!   crate — see its docs).
//! * [`Connection`] is the per-socket state machine; its life cycle is
//!   documented on [`ConnState`].
//! * [`TokenSlab`] stores connections under generation-checked `u64`
//!   tokens, so a completion for a connection that has since died (and
//!   whose slot was recycled) can never touch the wrong socket.
//! * [`Waker`] lets other threads (serve workers fulfilling a prediction,
//!   or a shutdown caller) interrupt the poller's wait.
//!
//! The reactor thread never blocks on a socket: a slow reader costs a
//! buffered response and a wait for `EPOLLOUT`, not a stalled thread.
//! Predictions run on the serve worker pool (or inline for an idle-queue
//! fast path — see the server module docs); their completions come back
//! through a queue plus a waker byte.

pub mod sys;

pub use sys::{Event, Interest, Poller};

use crate::http::{self, HttpError, Limits, ParseProgress, RequestParser};
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Budget for flushing one queued response once the write starts.
const WRITE_DEADLINE: Duration = Duration::from_secs(10);

/// Budget for the half-closed drain before the socket drops (see
/// [`ConnState::Draining`]).
const DRAIN_DEADLINE: Duration = Duration::from_millis(500);

/// Wakes a [`Poller`] wait from another thread by writing one byte into a
/// socketpair whose read end is registered in the poller. Cloneable and
/// cheap: a wake while a wake is already pending is a no-op (the byte just
/// queues, or the pipe is full — either way the poller wakes once).
#[derive(Clone)]
pub struct Waker {
    tx: Arc<UnixStream>,
}

impl Waker {
    pub fn wake(&self) {
        // WouldBlock means the buffer already holds unread wake bytes — the
        // poller is guaranteed to wake, nothing more to do. Any other error
        // means teardown; equally nothing to do.
        let _ = (&*self.tx).write(&[1]);
    }
}

/// The poller-side half of a [`Waker`] pair: register
/// [`WakeReceiver::fd`] for readability, and [`WakeReceiver::drain`] it on
/// every wake event so level-triggered polling doesn't spin.
pub struct WakeReceiver {
    rx: UnixStream,
}

impl WakeReceiver {
    pub fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    pub fn drain(&self) {
        let mut sink = [0u8; 64];
        while matches!((&self.rx).read(&mut sink), Ok(n) if n > 0) {}
    }
}

/// Creates a connected waker pair (both ends non-blocking).
pub fn waker_pair() -> io::Result<(Waker, WakeReceiver)> {
    let (tx, rx) = UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx: Arc::new(tx) }, WakeReceiver { rx }))
}

/// A slab keyed by generation-checked tokens: `token = gen << 32 | index`.
/// Freeing a slot bumps its generation, so a stale token (for example a
/// prediction completion racing a connection teardown) misses instead of
/// addressing whatever connection was recycled into the slot.
pub struct TokenSlab<T> {
    slots: Vec<(u32, Option<T>)>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for TokenSlab<T> {
    fn default() -> Self {
        TokenSlab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }
}

impl<T> TokenSlab<T> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Stores `value`, returning its token.
    pub fn insert(&mut self, value: T) -> u64 {
        self.len += 1;
        match self.free.pop() {
            Some(index) => {
                let slot = &mut self.slots[index as usize];
                slot.1 = Some(value);
                pack(slot.0, index)
            }
            None => {
                let index = self.slots.len() as u32;
                self.slots.push((0, Some(value)));
                pack(0, index)
            }
        }
    }

    /// The entry for `token`, if the token is current.
    pub fn get_mut(&mut self, token: u64) -> Option<&mut T> {
        let (gen, index) = unpack(token);
        match self.slots.get_mut(index as usize) {
            Some((g, value)) if *g == gen => value.as_mut(),
            _ => None,
        }
    }

    /// Removes and returns the entry for `token`, bumping the slot's
    /// generation so the token (and any copies of it) go stale.
    pub fn remove(&mut self, token: u64) -> Option<T> {
        let (gen, index) = unpack(token);
        match self.slots.get_mut(index as usize) {
            Some((g, value)) if *g == gen && value.is_some() => {
                let taken = value.take();
                *g = g.wrapping_add(1);
                self.free.push(index);
                self.len -= 1;
                taken
            }
            _ => None,
        }
    }

    /// Tokens of all live entries (for deadline sweeps; collected so the
    /// sweep can mutate the slab while iterating).
    pub fn tokens(&self) -> Vec<u64> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, (_, value))| value.is_some())
            .map(|(index, (gen, _))| pack(*gen, index as u32))
            .collect()
    }
}

fn pack(gen: u32, index: u32) -> u64 {
    (u64::from(gen) << 32) | u64::from(index)
}

fn unpack(token: u64) -> (u32, u32) {
    ((token >> 32) as u32, token as u32)
}

/// Where a [`Connection`] is in its request/response life cycle.
///
/// ```text
///            ┌────────────◀─────────────── keep-alive ──┐
///            ▼                                          │
///  ReadingHead ──▶ ReadingBody ──▶ Dispatch ──▶ Writing ─┤
///       │               │   (or straight to Writing      │ close /
///       │               │    for inline-handled and      ▼ error
///       │               │    error responses)        Draining ──▶ closed
///       └── idle timeout┴── request deadline ──▶ closed
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnState {
    /// Waiting for (or incrementally receiving) a request preamble. With
    /// nothing buffered this doubles as the idle keep-alive state, under
    /// [`Limits::idle_timeout`]; once the first byte arrives the clock
    /// tightens to [`Limits::request_deadline`] (slow-loris guard).
    ReadingHead,
    /// Preamble parsed; receiving the `Content-Length`-declared body,
    /// still under the request deadline.
    ReadingBody,
    /// A decoded predict request is in flight on the serve side; the
    /// socket is quiescent (no read interest — pipelined bytes stay in the
    /// kernel buffer) and has no deadline of its own: the serve queue owns
    /// the latency story.
    Dispatch,
    /// A response is queued and being flushed as the socket accepts it.
    Writing,
    /// Half-closed (`shutdown(Write)` sent): the peer's in-flight bytes
    /// are read and discarded until EOF or a short deadline. Closing with
    /// unread received data would make the kernel send RST, destroying the
    /// just-written response — the very bytes the structured-error
    /// contract promises the client gets to read.
    Draining,
}

/// Outcome of one [`Connection::fill`] read.
#[derive(Debug, PartialEq, Eq)]
pub enum FillOutcome {
    /// Got at least one byte; try parsing.
    Progress,
    /// Nothing available right now; wait for readability.
    WouldBlock,
    /// Clean end-of-stream from the peer.
    Eof,
    /// The socket broke (reset, I/O error); close without ceremony.
    Broken,
}

/// Outcome of one [`Connection::try_write`] flush attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum WriteOutcome {
    /// Bytes remain; wait for writability.
    Pending,
    /// Response fully flushed; the connection re-entered
    /// [`ConnState::ReadingHead`] (keep-alive) — attempt a parse, there
    /// may be pipelined bytes already buffered.
    Flushed,
    /// Response fully flushed and the connection moved to
    /// [`ConnState::Draining`] (close requested).
    Closing,
    /// The socket broke mid-write.
    Broken,
}

/// Outcome of one [`Connection::drain`] attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum DrainOutcome {
    /// Still waiting for the peer's EOF.
    Pending,
    /// EOF (or error) seen; the socket can drop now.
    Done,
}

/// One client socket in the reactor: non-blocking stream + incremental
/// parser + response buffer + deadline, advanced through [`ConnState`] by
/// readiness events. All methods are non-blocking; none is ever called
/// from outside the reactor thread.
pub struct Connection {
    stream: TcpStream,
    parser: RequestParser,
    state: ConnState,
    limits: Limits,
    /// Queued response bytes and how many are already written.
    out: Vec<u8>,
    written: usize,
    /// Whether the connection returns to keep-alive after `out` flushes.
    keep_alive_after: bool,
    /// When the current state times out (`None` in [`ConnState::Dispatch`]).
    deadline: Option<Instant>,
    /// Interest currently registered with the poller, to elide no-op
    /// `modify` syscalls ([`Connection::arm`]).
    registered: Interest,
}

impl Connection {
    /// Adopts an accepted stream: non-blocking, `TCP_NODELAY`, idle
    /// deadline running.
    pub fn new(stream: TcpStream, limits: Limits, now: Instant) -> io::Result<Connection> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(Connection {
            stream,
            parser: RequestParser::new(limits),
            state: ConnState::ReadingHead,
            limits,
            out: Vec::new(),
            written: 0,
            keep_alive_after: false,
            deadline: Some(now + limits.idle_timeout),
            registered: Interest::READABLE,
        })
    }

    pub fn fd(&self) -> RawFd {
        self.stream.as_raw_fd()
    }

    pub fn state(&self) -> ConnState {
        self.state
    }

    /// `true` once bytes of a not-yet-carved request are buffered — the
    /// line between "idle keep-alive closed" (silent) and "client vanished
    /// mid-request" (counted).
    pub fn started(&self) -> bool {
        self.parser.buffered() > 0
    }

    /// One non-blocking read into the parser buffer, promoting the idle
    /// deadline to the (tighter) request deadline on a request's first
    /// byte.
    pub fn fill(&mut self, now: Instant) -> FillOutcome {
        let was_idle = self.parser.buffered() == 0;
        match self.parser.read_from(&mut self.stream) {
            Ok(0) => FillOutcome::Eof,
            Ok(_) => {
                if was_idle {
                    self.deadline = Some(now + self.limits.request_deadline);
                }
                FillOutcome::Progress
            }
            Err(e) if http::would_block(&e) => FillOutcome::WouldBlock,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => FillOutcome::WouldBlock,
            Err(_) => FillOutcome::Broken,
        }
    }

    /// Parse progress over the buffered bytes; tracks the
    /// head-vs-body reading state.
    pub fn next_request(&mut self) -> Result<ParseProgress, HttpError> {
        let progress = self.parser.next_request()?;
        match progress {
            ParseProgress::NeedHead => self.state = ConnState::ReadingHead,
            ParseProgress::NeedBody => self.state = ConnState::ReadingBody,
            ParseProgress::Request(_) => {}
        }
        Ok(progress)
    }

    /// Marks the connection as waiting on an in-flight serve-side
    /// dispatch: no socket interest, no deadline.
    pub fn begin_dispatch(&mut self) {
        self.state = ConnState::Dispatch;
        self.deadline = None;
    }

    /// Queues a fully-encoded response and starts the write clock. Call
    /// [`Connection::try_write`] next — the socket is usually writable
    /// already.
    pub fn queue_response(&mut self, bytes: Vec<u8>, keep_alive_after: bool, now: Instant) {
        debug_assert!(self.written >= self.out.len(), "response already in flight");
        self.out = bytes;
        self.written = 0;
        self.keep_alive_after = keep_alive_after;
        self.state = ConnState::Writing;
        self.deadline = Some(now + WRITE_DEADLINE);
    }

    /// Writes as much of the queued response as the socket accepts,
    /// transitioning out of [`ConnState::Writing`] when it completes.
    pub fn try_write(&mut self, now: Instant) -> WriteOutcome {
        while self.written < self.out.len() {
            match self.stream.write(&self.out[self.written..]) {
                Ok(0) => return WriteOutcome::Broken,
                Ok(n) => self.written += n,
                Err(e) if http::would_block(&e) => return WriteOutcome::Pending,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return WriteOutcome::Broken,
            }
        }
        self.out = Vec::new();
        self.written = 0;
        if self.keep_alive_after {
            self.enter_reading(now);
            WriteOutcome::Flushed
        } else {
            self.begin_drain(now);
            WriteOutcome::Closing
        }
    }

    /// Re-enters [`ConnState::ReadingHead`] after a keep-alive response:
    /// pipelined bytes already buffered keep the request deadline; an
    /// empty buffer relaxes to the idle timeout.
    pub fn enter_reading(&mut self, now: Instant) {
        self.state = ConnState::ReadingHead;
        self.deadline = Some(if self.parser.buffered() > 0 {
            now + self.limits.request_deadline
        } else {
            now + self.limits.idle_timeout
        });
    }

    /// Half-closes the stream and starts the drain clock (see
    /// [`ConnState::Draining`]).
    pub fn begin_drain(&mut self, now: Instant) {
        let _ = self.stream.shutdown(Shutdown::Write);
        self.state = ConnState::Draining;
        self.deadline = Some(now + DRAIN_DEADLINE);
    }

    /// Reads and discards whatever the peer is still sending.
    pub fn drain(&mut self) -> DrainOutcome {
        let mut sink = [0u8; 4096];
        loop {
            match self.stream.read(&mut sink) {
                Ok(0) => return DrainOutcome::Done,
                Ok(_) => continue,
                Err(e) if http::would_block(&e) => return DrainOutcome::Pending,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return DrainOutcome::Done,
            }
        }
    }

    /// Whether the current state's deadline has passed.
    pub fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|deadline| now >= deadline)
    }

    /// The earliest instant this connection needs a timeout look.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The readiness interest the current state needs.
    pub fn wants(&self) -> Interest {
        match self.state {
            ConnState::ReadingHead | ConnState::ReadingBody | ConnState::Draining => {
                Interest::READABLE
            }
            ConnState::Dispatch => Interest::NONE,
            ConnState::Writing => Interest::WRITABLE,
        }
    }

    /// Syncs the poller's interest for this connection with what the
    /// current state needs, eliding the syscall when nothing changed.
    pub fn arm(&mut self, poller: &mut Poller, token: u64) -> io::Result<()> {
        let wants = self.wants();
        if wants != self.registered {
            poller.modify(self.fd(), token, wants)?;
            self.registered = wants;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_slab_recycles_slots_with_fresh_generations() {
        let mut slab = TokenSlab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get_mut(a), Some(&mut "a"));
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.len(), 1);
        // The slot is recycled under a new generation; the old token is
        // stale and must miss.
        let c = slab.insert("c");
        assert_ne!(a, c);
        assert_eq!(slab.get_mut(a), None);
        assert_eq!(slab.remove(a), None);
        assert_eq!(slab.get_mut(c), Some(&mut "c"));
        assert_eq!(slab.get_mut(b), Some(&mut "b"));
        assert_eq!(slab.tokens().len(), 2);
    }

    #[test]
    fn waker_wakes_and_drains() {
        let (waker, receiver) = waker_pair().unwrap();
        waker.wake();
        waker.wake();
        let mut probe = [0u8; 1];
        // Bytes are pending...
        assert!((&receiver.rx).read(&mut probe).unwrap() > 0);
        receiver.drain();
        // ...and drained: the next read would block rather than yield data.
        assert!(http::would_block(
            &(&receiver.rx).read(&mut probe).unwrap_err()
        ));
    }

    #[test]
    fn poller_reports_readability_on_both_backends() {
        // The unit test drives whichever backend the platform default is;
        // CI additionally runs the whole suite under EXA_WIRE_FORCE_POLL=1.
        let mut poller = Poller::new().unwrap();
        let (waker, receiver) = waker_pair().unwrap();
        poller
            .register(receiver.fd(), 7, Interest::READABLE)
            .unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Duration::from_millis(10)).unwrap();
        assert!(events.is_empty(), "no readiness before the wake");
        waker.wake();
        poller.wait(&mut events, Duration::from_secs(5)).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        receiver.drain();
        poller.deregister(receiver.fd()).unwrap();
        poller.wait(&mut events, Duration::from_millis(10)).unwrap();
        assert!(events.is_empty(), "deregistered fd reports nothing");
    }
}
