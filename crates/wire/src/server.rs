//! The TCP front-end: accept loop, connection threads, routing.
//!
//! [`WireServer::start`] binds a listener, spawns the underlying
//! [`PredictionServer`] and an accept thread, and answers HTTP/1.1 requests
//! with a thread per connection (bounded by
//! [`WireConfig::max_connections`]; connections beyond the cap receive an
//! immediate `503` and are closed). Every request handler runs inside
//! `catch_unwind`, so a panic anywhere in parsing or prediction answers
//! `500` and increments [`WireStats::panics_contained`] instead of killing
//! the connection thread.
//!
//! Graceful shutdown ([`WireServer::shutdown`]) proceeds outside-in: stop
//! accepting, let every connection finish its in-flight request (idle
//! keep-alive connections notice within one read-timeout tick), join the
//! connection threads, then drain and join the prediction server — queued
//! predictions are all answered before the workers exit.

use crate::codec::{self, Codec, PredictRequestFrame};
use crate::http::{self, HttpConnection, HttpError, Limits, Request};
use crate::json::{Json, JsonWriter};
use exa_covariance::{Location, ParamCovariance};
use exa_serve::{ModelRegistry, PredictionServer, ServeConfig, ServeError, ServerHandle};
use std::io::{self, ErrorKind, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning for a [`WireServer`].
#[derive(Clone, Debug)]
pub struct WireConfig {
    /// Address to bind; port 0 picks an ephemeral port (read it back with
    /// [`WireServer::local_addr`]).
    pub bind_addr: String,
    /// Concurrent connections served; further accepts are answered with an
    /// immediate `503` and closed.
    pub max_connections: usize,
    /// Cap on one request's preamble (request line + headers), bytes.
    pub max_header_bytes: usize,
    /// Cap on one request's declared `Content-Length`, bytes.
    pub max_body_bytes: usize,
    /// Wall-clock budget for receiving one request once started (slow-loris
    /// guard).
    pub request_deadline: Duration,
    /// How long a keep-alive connection may sit idle (no request bytes)
    /// before it is closed — without this, silent sockets could pin
    /// [`WireConfig::max_connections`] slots forever.
    pub idle_timeout: Duration,
    /// Tuning for the underlying [`PredictionServer`].
    pub serve: ServeConfig,
}

impl Default for WireConfig {
    fn default() -> Self {
        let limits = Limits::default();
        WireConfig {
            bind_addr: "127.0.0.1:0".to_string(),
            max_connections: 64,
            max_header_bytes: limits.max_header_bytes,
            max_body_bytes: limits.max_body_bytes,
            request_deadline: limits.request_deadline,
            idle_timeout: limits.idle_timeout,
            serve: ServeConfig::default(),
        }
    }
}

/// How long an idle connection read blocks before re-checking the shutdown
/// flag: the upper bound on how stale an idle keep-alive connection's view
/// of a shutdown can be.
const IDLE_POLL: Duration = Duration::from_millis(50);

/// Monotonic wire-level counters, updated lock-free by the accept loop and
/// the connection threads.
#[derive(Default)]
struct WireCounters {
    connections_accepted: AtomicU64,
    connections_refused: AtomicU64,
    requests_ok: AtomicU64,
    requests_client_error: AtomicU64,
    requests_server_error: AtomicU64,
    malformed_requests: AtomicU64,
    disconnects_mid_request: AtomicU64,
    panics_contained: AtomicU64,
}

/// A point-in-time snapshot of a [`WireServer`]'s counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Connections accepted and handed to a connection thread.
    pub connections_accepted: u64,
    /// Connections refused with `503` at the [`WireConfig::max_connections`]
    /// cap.
    pub connections_refused: u64,
    /// Requests answered `2xx`.
    pub requests_ok: u64,
    /// Requests answered `4xx`.
    pub requests_client_error: u64,
    /// Requests answered `5xx`.
    pub requests_server_error: u64,
    /// HTTP-level parse failures (bad preamble, oversized framing) that were
    /// answered with an error status; a subset of `requests_client_error` /
    /// `requests_server_error`.
    pub malformed_requests: u64,
    /// Clients that vanished (or stalled past the deadline) mid-request.
    pub disconnects_mid_request: u64,
    /// Handler panics contained by the per-request `catch_unwind` — the
    /// wire-level companion of
    /// [`ServerStats::factorizations_during_serving`]: robustness tests
    /// assert it stays 0.
    ///
    /// [`ServerStats::factorizations_during_serving`]:
    ///     exa_serve::ServerStats::factorizations_during_serving
    pub panics_contained: u64,
}

impl WireCounters {
    fn snapshot(&self) -> WireStats {
        WireStats {
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_refused: self.connections_refused.load(Ordering::Relaxed),
            requests_ok: self.requests_ok.load(Ordering::Relaxed),
            requests_client_error: self.requests_client_error.load(Ordering::Relaxed),
            requests_server_error: self.requests_server_error.load(Ordering::Relaxed),
            malformed_requests: self.malformed_requests.load(Ordering::Relaxed),
            disconnects_mid_request: self.disconnects_mid_request.load(Ordering::Relaxed),
            panics_contained: self.panics_contained.load(Ordering::Relaxed),
        }
    }
}

struct Shared<K: ParamCovariance> {
    registry: Arc<ModelRegistry<K>>,
    handle: ServerHandle<K>,
    counters: WireCounters,
    shutting_down: AtomicBool,
    active_connections: AtomicUsize,
    limits: Limits,
    max_connections: usize,
}

/// One routed response, ready to frame.
struct Response {
    status: u16,
    body: Vec<u8>,
    /// `Content-Type` of `body`: JSON everywhere except a binary-negotiated
    /// predict success.
    content_type: &'static str,
    /// Force-close the connection after writing (on top of the client's own
    /// keep-alive preference).
    close: bool,
}

impl Response {
    fn ok(body: String) -> Self {
        Response {
            status: 200,
            body: body.into_bytes(),
            content_type: "application/json",
            close: false,
        }
    }

    /// A `200` carrying one binary predict frame.
    fn ok_frame(body: Vec<u8>) -> Self {
        Response {
            status: 200,
            body,
            content_type: codec::FRAME_CONTENT_TYPE,
            close: false,
        }
    }

    /// Errors are always the structured JSON envelope, whatever codec the
    /// request negotiated — a client that cannot read JSON errors cannot
    /// read the 4xx/5xx contract at all.
    fn error(status: u16, code: &str, message: &str) -> Self {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("error");
        w.begin_object();
        w.field_str("code", code);
        w.field_str("message", message);
        w.end_object();
        w.end_object();
        Response {
            status,
            body: w.finish().into_bytes(),
            content_type: "application/json",
            close: false,
        }
    }
}

/// The running wire front-end. See the [crate docs](crate) for the wire
/// schema and an end-to-end example.
pub struct WireServer<K: ParamCovariance> {
    shared: Arc<Shared<K>>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    connection_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    prediction: Option<PredictionServer<K>>,
}

impl<K: ParamCovariance> WireServer<K> {
    /// Binds `config.bind_addr`, starts the underlying [`PredictionServer`]
    /// and the accept loop, and begins serving.
    pub fn start(registry: Arc<ModelRegistry<K>>, config: WireConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.bind_addr)?;
        let local_addr = listener.local_addr()?;
        let prediction = PredictionServer::start(Arc::clone(&registry), config.serve);
        let shared = Arc::new(Shared {
            registry,
            handle: prediction.handle(),
            counters: WireCounters::default(),
            shutting_down: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
            limits: Limits {
                max_header_bytes: config.max_header_bytes,
                max_body_bytes: config.max_body_bytes,
                request_deadline: config.request_deadline,
                idle_timeout: config.idle_timeout,
            },
            max_connections: config.max_connections.max(1),
        });
        let connection_threads = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let shared = Arc::clone(&shared);
            let threads = Arc::clone(&connection_threads);
            std::thread::spawn(move || accept_loop(&shared, listener, &threads))
        };
        Ok(WireServer {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
            connection_threads,
            prediction: Some(prediction),
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Wire-level statistics snapshot.
    pub fn stats(&self) -> WireStats {
        self.shared.counters.snapshot()
    }

    /// Statistics of the underlying prediction server.
    pub fn serve_stats(&self) -> exa_serve::ServerStats {
        self.shared.handle.stats()
    }

    /// Graceful shutdown: stop accepting, finish in-flight requests, join
    /// every connection thread, then drain and join the prediction server.
    /// Returns the final wire and serving statistics.
    pub fn shutdown(mut self) -> (WireStats, exa_serve::ServerStats) {
        self.wind_down();
        let wire = self.shared.counters.snapshot();
        let serve = self
            .prediction
            .take()
            .expect("prediction server present until shutdown")
            .shutdown();
        (wire, serve)
    }

    fn wind_down(&mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection; it checks
        // the flag before handing any stream to a worker.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(accept) = self.accept_thread.take() {
            let _ = accept.join();
        }
        let threads = std::mem::take(
            &mut *self
                .connection_threads
                .lock()
                .expect("connection thread list lock"),
        );
        for thread in threads {
            let _ = thread.join();
        }
    }
}

impl<K: ParamCovariance> Drop for WireServer<K> {
    fn drop(&mut self) {
        // `shutdown()` takes `prediction`; an un-shutdown drop still winds
        // the accept loop and connections down cleanly (the prediction
        // server's own Drop then drains its queue).
        if self.accept_thread.is_some() {
            self.wind_down();
        }
    }
}

fn accept_loop<K: ParamCovariance>(
    shared: &Arc<Shared<K>>,
    listener: TcpListener,
    threads: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(stream) => stream,
            Err(_) => continue,
        };
        let active = shared.active_connections.load(Ordering::SeqCst);
        if active >= shared.max_connections {
            shared
                .counters
                .connections_refused
                .fetch_add(1, Ordering::Relaxed);
            let body = Response::error(503, "overloaded", "connection limit reached").body;
            if http::write_response(&stream, 503, &body, false).is_ok() {
                drain_then_close(&stream);
            }
            continue;
        }
        shared.active_connections.fetch_add(1, Ordering::SeqCst);
        shared
            .counters
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
        let worker = {
            let shared = Arc::clone(shared);
            std::thread::spawn(move || {
                let _guard = ActiveGuard(&shared);
                connection_loop(&shared, stream);
            })
        };
        let mut list = threads.lock().expect("connection thread list lock");
        // Reap finished threads so a long-lived server's handle list stays
        // proportional to *live* connections, not lifetime connections.
        list.retain(|handle| !handle.is_finished());
        list.push(worker);
    }
}

/// Decrements the live-connection count when a connection thread exits,
/// however it exits.
struct ActiveGuard<'a, K: ParamCovariance>(&'a Shared<K>);

impl<K: ParamCovariance> Drop for ActiveGuard<'_, K> {
    fn drop(&mut self) {
        self.0.active_connections.fetch_sub(1, Ordering::SeqCst);
    }
}

fn connection_loop<K: ParamCovariance>(shared: &Shared<K>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let mut conn = HttpConnection::new(&stream, shared.limits);
    loop {
        let request = conn.read_request(|| shared.shutting_down.load(Ordering::SeqCst));
        let request = match request {
            Ok(request) => request,
            Err(err) => {
                match err.status() {
                    // Answerable protocol violation: respond, then close
                    // (the connection's framing can no longer be trusted).
                    Some(status) => {
                        shared
                            .counters
                            .malformed_requests
                            .fetch_add(1, Ordering::Relaxed);
                        count_status(shared, status);
                        let body = Response::error(status, "bad_request", &err.to_string()).body;
                        if http::write_response(&stream, status, &body, false).is_ok() {
                            drain_then_close(&stream);
                        }
                    }
                    None => {
                        if matches!(err, HttpError::Disconnected | HttpError::Timeout) {
                            shared
                                .counters
                                .disconnects_mid_request
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        // Closed / Aborted / IdleTimeout / Io: nothing to
                        // say, just close.
                    }
                }
                return;
            }
        };
        // A panic anywhere in routing (JSON decode, registry, prediction
        // wait) must not kill this thread: contain it, answer 500.
        let response =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| route(shared, &request)))
                .unwrap_or_else(|_| {
                    shared
                        .counters
                        .panics_contained
                        .fetch_add(1, Ordering::Relaxed);
                    let mut resp = Response::error(500, "internal", "request handler panicked");
                    resp.close = true;
                    resp
                });
        count_status(shared, response.status);
        let shutting_down = shared.shutting_down.load(Ordering::SeqCst);
        let keep_alive = request.keep_alive() && !response.close && !shutting_down;
        if http::write_response_typed(
            &stream,
            response.status,
            response.content_type,
            &response.body,
            keep_alive,
        )
        .is_err()
        {
            return;
        }
        if !keep_alive {
            drain_then_close(&stream);
            return;
        }
    }
}

/// Half-closes the connection and briefly drains whatever the peer is still
/// sending before the socket drops. Closing with unread received data makes
/// the kernel send RST, which can destroy the error/refusal response that
/// was just written — the very bytes the structured-error contract promises
/// the client gets to read.
fn drain_then_close(stream: &TcpStream) {
    let _ = stream.shutdown(Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let deadline = Instant::now() + Duration::from_millis(500);
    let mut sink = [0u8; 4096];
    let mut reader = stream;
    while Instant::now() < deadline {
        match reader.read(&mut sink) {
            // EOF: the peer saw our FIN (and our response) and closed too.
            Ok(0) => break,
            Ok(_) => continue,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            // Timeout or a genuinely broken pipe: we gave the peer its
            // chance; close now either way.
            Err(_) => break,
        }
    }
}

fn count_status<K: ParamCovariance>(shared: &Shared<K>, status: u16) {
    let counter = match status {
        200..=299 => &shared.counters.requests_ok,
        400..=499 => &shared.counters.requests_client_error,
        _ => &shared.counters.requests_server_error,
    };
    counter.fetch_add(1, Ordering::Relaxed);
}

/// Maps one parsed request to a response. Never returns a transport-level
/// error: everything is an HTTP status plus a structured JSON error body.
fn route<K: ParamCovariance>(shared: &Shared<K>, request: &Request) -> Response {
    let path = request.path();
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => health(shared),
        ("GET", ["v1", "models"]) => models(shared),
        ("GET", ["v1", "stats"]) => stats(shared),
        ("POST", ["v1", "models", name, "predict"]) => predict(shared, name, request),
        // Right path, wrong verb → 405 so clients can tell the two apart.
        (_, ["healthz"])
        | (_, ["v1", "models"])
        | (_, ["v1", "stats"])
        | (_, ["v1", "models", _, "predict"]) => Response::error(
            405,
            "method_not_allowed",
            &format!("{} is not supported on {path}", request.method),
        ),
        _ => Response::error(404, "unknown_path", &format!("no route for {path}")),
    }
}

fn health<K: ParamCovariance>(shared: &Shared<K>) -> Response {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("status", "ok");
    w.field_uint("models", shared.registry.len() as u64);
    w.end_object();
    Response::ok(w.finish())
}

fn models<K: ParamCovariance>(shared: &Shared<K>) -> Response {
    // One lock acquisition: the entry list and the counters must describe
    // the same instant, or eviction observers see books that don't balance.
    let (entries, stats) = shared.registry.snapshot();
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("models");
    w.begin_array();
    for entry in &entries {
        w.begin_object();
        w.field_str("name", &entry.name);
        w.field_uint("factor_bytes", entry.factor_bytes as u64);
        w.end_object();
    }
    w.end_array();
    w.field_uint("resident_models", stats.resident_models as u64);
    w.field_uint("bytes_in_use", stats.bytes_in_use as u64);
    w.key("byte_budget");
    match stats.byte_budget {
        Some(budget) => w.uint(budget as u64),
        None => w.null(),
    }
    w.field_uint("insertions", stats.insertions);
    w.field_uint("evictions", stats.evictions);
    w.field_uint("hits", stats.hits);
    w.field_uint("misses", stats.misses);
    w.end_object();
    Response::ok(w.finish())
}

fn stats<K: ParamCovariance>(shared: &Shared<K>) -> Response {
    let wire = shared.counters.snapshot();
    let serve = shared.handle.stats();
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("wire");
    w.begin_object();
    w.field_uint("connections_accepted", wire.connections_accepted);
    w.field_uint("connections_refused", wire.connections_refused);
    w.field_uint("requests_ok", wire.requests_ok);
    w.field_uint("requests_client_error", wire.requests_client_error);
    w.field_uint("requests_server_error", wire.requests_server_error);
    w.field_uint("malformed_requests", wire.malformed_requests);
    w.field_uint("disconnects_mid_request", wire.disconnects_mid_request);
    w.field_uint("panics_contained", wire.panics_contained);
    w.end_object();
    w.key("serve");
    w.begin_object();
    w.field_uint("requests_submitted", serve.requests_submitted);
    w.field_uint("requests_served", serve.requests_served);
    w.field_uint("requests_failed", serve.requests_failed);
    w.field_uint("batches_executed", serve.batches_executed);
    w.field_uint("requests_coalesced", serve.requests_coalesced);
    w.field_uint("points_served", serve.points_served);
    w.field_uint("max_queue_depth", serve.max_queue_depth);
    w.field_uint("queue_depth", shared.handle.queue_depth() as u64);
    w.field_num("total_latency_seconds", serve.total_latency_seconds);
    w.field_num("max_latency_seconds", serve.max_latency_seconds);
    w.field_num("mean_latency_seconds", serve.mean_latency_seconds());
    w.field_uint(
        "factorizations_during_serving",
        serve.factorizations_during_serving,
    );
    w.end_object();
    w.end_object();
    Response::ok(w.finish())
}

/// The media type of a `Content-Type`/`Accept` value with any parameters
/// stripped: `application/JSON; charset=utf-8` → `application/JSON`.
fn media_essence(value: &str) -> &str {
    value.split(';').next().unwrap_or("").trim()
}

/// The predict *request* codec from `Content-Type`. Absent (or empty)
/// means JSON — the wire default — and anything but the supported types
/// is a structured `415`. `application/x-www-form-urlencoded` is accepted
/// as JSON on purpose: it is what `curl -d '{...}'` stamps on a body by
/// default, and the documented walkthrough (and any PR 4-era script)
/// relies on that working.
fn request_codec(request: &Request) -> Result<Codec, Response> {
    match request.header("content-type").map(media_essence) {
        None => Ok(Codec::Json),
        Some(t)
            if t.is_empty()
                || t.eq_ignore_ascii_case("application/json")
                || t.eq_ignore_ascii_case("application/x-www-form-urlencoded") =>
        {
            Ok(Codec::Json)
        }
        Some(t) if t.eq_ignore_ascii_case(codec::FRAME_CONTENT_TYPE) => Ok(Codec::Binary),
        Some(t) => Err(Response::error(
            415,
            "unsupported_media_type",
            &format!(
                "unsupported Content-Type {t:?}; use application/json or {}",
                codec::FRAME_CONTENT_TYPE
            ),
        )),
    }
}

/// The predict *response* codec from `Accept`: absent, `*/*` or
/// `application/*` mirrors the request codec (symmetric round trips, and
/// curl's default `Accept: */*` keeps getting JSON for JSON); naming
/// exactly one supported type selects it; naming both mirrors the request;
/// naming neither is a structured `415`.
fn response_codec(request: &Request, request_codec: Codec) -> Result<Codec, Response> {
    let Some(accept) = request.header("accept") else {
        return Ok(request_codec);
    };
    let (mut json_ok, mut binary_ok, mut any_ok) = (false, false, false);
    for item in accept.split(',') {
        let t = media_essence(item);
        if t == "*/*" || t.eq_ignore_ascii_case("application/*") {
            any_ok = true;
        } else if t.eq_ignore_ascii_case("application/json") {
            json_ok = true;
        } else if t.eq_ignore_ascii_case(codec::FRAME_CONTENT_TYPE) {
            binary_ok = true;
        }
    }
    match (binary_ok, json_ok, any_ok) {
        (true, true, _) => Ok(request_codec),
        (true, false, _) => Ok(Codec::Binary),
        (false, true, _) => Ok(Codec::Json),
        (false, false, true) => Ok(request_codec),
        (false, false, false) => Err(Response::error(
            415,
            "unsupported_media_type",
            &format!(
                "no supported media type in Accept {accept:?}; this endpoint answers \
                 application/json or {}",
                codec::FRAME_CONTENT_TYPE
            ),
        )),
    }
}

/// Decodes a JSON predict body into `(targets, want_variance)`.
fn parse_json_predict(body: &[u8]) -> Result<(Vec<Location>, bool), Response> {
    let text = std::str::from_utf8(body)
        .map_err(|_| Response::error(400, "invalid_json", "request body is not valid UTF-8"))?;
    let doc =
        Json::parse(text).map_err(|err| Response::error(400, "invalid_json", &err.to_string()))?;
    let targets =
        parse_targets(&doc).map_err(|message| Response::error(400, "invalid_query", &message))?;
    let want_variance = match doc.get("variance") {
        None => false,
        Some(v) => v.as_bool().ok_or_else(|| {
            Response::error(400, "invalid_query", "\"variance\" must be a boolean")
        })?,
    };
    Ok((targets, want_variance))
}

/// Decodes a binary predict body into `(targets, want_variance)`. Only the
/// *structure* is validated here — empty target sets and non-finite
/// coordinates are rejected by the prediction server itself, so both
/// codecs share one `invalid_query` policy.
fn parse_frame_predict(body: &[u8]) -> Result<(Vec<Location>, bool), Response> {
    let frame = PredictRequestFrame::decode(body)
        .map_err(|err| Response::error(400, "invalid_frame", &err.to_string()))?;
    Ok((frame.to_locations(), frame.variance))
}

fn predict<K: ParamCovariance>(shared: &Shared<K>, name: &str, request: &Request) -> Response {
    let req_codec = match request_codec(request) {
        Ok(codec) => codec,
        Err(response) => return response,
    };
    let resp_codec = match response_codec(request, req_codec) {
        Ok(codec) => codec,
        Err(response) => return response,
    };
    let decoded = match req_codec {
        Codec::Json => parse_json_predict(&request.body),
        Codec::Binary => parse_frame_predict(&request.body),
    };
    let (targets, want_variance) = match decoded {
        Ok(decoded) => decoded,
        Err(response) => return response,
    };
    // One wire request = one submission = one coalesced-batch membership.
    let served = if want_variance {
        shared.handle.predict_with_variance(name, targets)
    } else {
        shared.handle.predict(name, targets)
    };
    let served = match served {
        Ok(served) => served,
        Err(err) => return serve_error_response(&err),
    };
    match resp_codec {
        Codec::Binary => Response::ok_frame(codec::encode_predict_response(
            &served.values,
            served.variances.as_deref(),
            served.coalesced_requests.min(u32::MAX as usize) as u32,
            served.batch_points.min(u32::MAX as usize) as u32,
            served.latency_seconds,
        )),
        Codec::Json => {
            let mut w = JsonWriter::new();
            w.begin_object();
            w.field_str("model", name);
            w.key("mean");
            w.begin_array();
            for v in &served.values {
                w.number(*v);
            }
            w.end_array();
            if let Some(variances) = &served.variances {
                w.key("variance");
                w.begin_array();
                for v in variances {
                    w.number(*v);
                }
                w.end_array();
            }
            w.field_uint("points", served.values.len() as u64);
            w.field_uint("coalesced_requests", served.coalesced_requests as u64);
            w.field_uint("batch_points", served.batch_points as u64);
            w.field_num("latency_seconds", served.latency_seconds);
            w.end_object();
            Response::ok(w.finish())
        }
    }
}

/// Decodes `"targets": [[x, y], ...]` with precise error messages.
fn parse_targets(doc: &Json) -> Result<Vec<Location>, String> {
    let targets = doc
        .get("targets")
        .ok_or("missing \"targets\" field")?
        .as_array()
        .ok_or("\"targets\" must be an array of [x, y] pairs")?;
    let mut out = Vec::with_capacity(targets.len());
    for (i, pair) in targets.iter().enumerate() {
        let pair = pair
            .as_array()
            .ok_or_else(|| format!("target {i} must be an [x, y] pair"))?;
        if pair.len() != 2 {
            return Err(format!(
                "target {i} must have exactly 2 coordinates, got {}",
                pair.len()
            ));
        }
        let x = pair[0]
            .as_f64()
            .ok_or_else(|| format!("target {i} x-coordinate must be a number"))?;
        let y = pair[1]
            .as_f64()
            .ok_or_else(|| format!("target {i} y-coordinate must be a number"))?;
        out.push(Location::new(x, y));
    }
    Ok(out)
}

/// Maps [`ServeError`] onto status + structured body: client mistakes are
/// `4xx`, capacity/lifecycle are `503` — never a dropped connection.
fn serve_error_response(err: &ServeError) -> Response {
    match err {
        ServeError::UnknownModel(name) => Response::error(
            404,
            "unknown_model",
            &format!("no model named {name:?} is registered"),
        ),
        ServeError::Rejected(message) => Response::error(400, "invalid_query", message),
        // A contained worker-side panic is a server fault: 5xx, never a
        // client error.
        ServeError::Panicked(message) => Response::error(
            500,
            "internal",
            &format!("prediction panicked on a serve worker: {message}"),
        ),
        ServeError::Overloaded { queue_depth } => Response::error(
            503,
            "overloaded",
            &format!("server overloaded ({queue_depth} requests queued); retry later"),
        ),
        ServeError::ShuttingDown => {
            let mut resp = Response::error(503, "shutting_down", "server is shutting down");
            resp.close = true;
            resp
        }
    }
}
