//! The TCP front-end: readiness reactor, connection state machine, routing.
//!
//! [`WireServer::start`] binds a listener, spawns the underlying
//! [`PredictionServer`], and runs **one reactor thread** that owns every
//! socket: non-blocking accepts, incremental request parsing, routing,
//! and response writes, all driven by a level-triggered
//! [`Poller`] (`epoll` on Linux, `poll(2)`
//! elsewhere — see [`crate::reactor::sys`]). Connections advance through
//! the [`ConnState`] machine; an idle keep-alive socket costs one slab
//! entry and one poller registration, not an OS thread, which is what
//! lets the default [`WireConfig::max_connections`] sit at 1024 instead
//! of PR 4's 64.
//!
//! Predictions leave the reactor thread in one of two ways:
//!
//! * **Inline fast path** — when nothing else is in flight (`no reactor
//!   dispatches pending, serve queue empty, only one connection readable
//!   this poll batch`), the request runs as a batch-of-one directly on
//!   the reactor thread via [`ServerHandle::predict`], skipping both
//!   scheduler handoffs — this is what keeps single-client closed-loop
//!   latency at the PR 5 level ([`WireStats::requests_inline`]).
//! * **Dispatch** — otherwise the request is submitted without blocking
//!   ([`ServerHandle::submit`]) and the reactor returns to its poller;
//!   the serve workers coalesce every concurrently dispatched request
//!   exactly as PR 3 designed, and completion comes back through a queue
//!   plus a waker byte ([`PredictionTicket::on_ready`],
//!   [`WireStats::requests_dispatched`]).
//!
//! Every request is routed inside `catch_unwind`, so a panic anywhere in
//! parsing or prediction answers `500` and increments
//! [`WireStats::panics_contained`] instead of killing the reactor.
//!
//! Graceful shutdown ([`WireServer::shutdown`]) proceeds outside-in: drop
//! the listener, close idle connections, let in-flight requests finish
//! (their responses are written with `Connection: close`), then drain and
//! join the prediction server — queued predictions are all answered
//! before the workers exit.
//!
//! [`PredictionTicket::on_ready`]: exa_serve::PredictionTicket::on_ready
//! [`ServerHandle::predict`]: exa_serve::ServerHandle::predict
//! [`ServerHandle::submit`]: exa_serve::ServerHandle::submit

use crate::codec::{self, Codec, ObserveRequestFrame, ObserveResponseFrame, PredictRequestFrame};
use crate::http::{self, Limits, ParseProgress, Request};
use crate::json::{Json, JsonWriter};
use crate::reactor::{
    waker_pair, ConnState, Connection, DrainOutcome, Event, FillOutcome, Interest, Poller,
    TokenSlab, WakeReceiver, Waker, WriteOutcome,
};
use exa_covariance::{Location, ParamCovariance};
use exa_serve::{
    ModelRegistry, PredictionServer, ServeConfig, ServeError, ServedPrediction, ServerHandle,
};
use exa_telemetry::{
    Histogram, HistogramSnapshot, PromText, SlowEntry, SlowRing, TraceId, TRACE_HEADER,
};
use std::collections::VecDeque;
use std::io::{self, ErrorKind};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning for a [`WireServer`].
#[derive(Clone, Debug)]
pub struct WireConfig {
    /// Address to bind; port 0 picks an ephemeral port (read it back with
    /// [`WireServer::local_addr`]).
    pub bind_addr: String,
    /// Concurrent connections served; further accepts are answered with an
    /// immediate `503` and closed. Connections are slab entries under the
    /// reactor, not threads, so this defaults to 1024 — raise it freely,
    /// the marginal cost per idle connection is a poller registration and
    /// a few hundred bytes of parser buffer.
    pub max_connections: usize,
    /// Cap on one request's preamble (request line + headers), bytes.
    pub max_header_bytes: usize,
    /// Cap on one request's declared `Content-Length`, bytes.
    pub max_body_bytes: usize,
    /// Wall-clock budget for receiving one request once started (slow-loris
    /// guard).
    pub request_deadline: Duration,
    /// How long a keep-alive connection may sit idle (no request bytes)
    /// before it is closed — without this, silent sockets could pin
    /// [`WireConfig::max_connections`] slots forever.
    pub idle_timeout: Duration,
    /// Tuning for the underlying [`PredictionServer`].
    pub serve: ServeConfig,
}

impl Default for WireConfig {
    fn default() -> Self {
        let limits = Limits::default();
        WireConfig {
            bind_addr: "127.0.0.1:0".to_string(),
            max_connections: 1024,
            max_header_bytes: limits.max_header_bytes,
            max_body_bytes: limits.max_body_bytes,
            request_deadline: limits.request_deadline,
            idle_timeout: limits.idle_timeout,
            serve: ServeConfig::default(),
        }
    }
}

/// The reactor's poll tick: the upper bound on deadline-sweep staleness
/// (idle timeouts, slow-loris deadlines fire at most one tick late) and on
/// how long a shutdown request can go unnoticed on a quiet server.
const TICK: Duration = Duration::from_millis(25);

/// Refusal connections (queued `503`s at the connection cap) the reactor
/// will hold concurrently; an accept flood beyond this is dropped without
/// the courtesy response so refusals cannot balloon the slab.
const MAX_PENDING_REFUSALS: usize = 256;

/// Poller token of the listening socket (outside the slab's token space:
/// slab tokens would need ~4 billion reuses of one slot to reach it).
const LISTENER_TOKEN: u64 = u64::MAX;
/// Poller token of the waker's receive end.
const WAKER_TOKEN: u64 = u64::MAX - 1;

/// Monotonic wire-level counters, updated by the reactor and read from any
/// thread.
#[derive(Default)]
struct WireCounters {
    connections_accepted: AtomicU64,
    connections_refused: AtomicU64,
    requests_ok: AtomicU64,
    requests_client_error: AtomicU64,
    requests_server_error: AtomicU64,
    malformed_requests: AtomicU64,
    disconnects_mid_request: AtomicU64,
    panics_contained: AtomicU64,
    requests_inline: AtomicU64,
    requests_dispatched: AtomicU64,
}

/// A point-in-time snapshot of a [`WireServer`]'s counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Connections accepted and admitted to the reactor.
    pub connections_accepted: u64,
    /// Connections refused with `503` at the [`WireConfig::max_connections`]
    /// cap.
    pub connections_refused: u64,
    /// Requests answered `2xx`.
    pub requests_ok: u64,
    /// Requests answered `4xx`.
    pub requests_client_error: u64,
    /// Requests answered `5xx`.
    pub requests_server_error: u64,
    /// HTTP-level parse failures (bad preamble, oversized framing) that were
    /// answered with an error status; a subset of `requests_client_error` /
    /// `requests_server_error`.
    pub malformed_requests: u64,
    /// Clients that vanished (or stalled past the deadline) mid-request.
    pub disconnects_mid_request: u64,
    /// Handler panics contained by the per-request `catch_unwind` — the
    /// wire-level companion of
    /// [`ServerStats::factorizations_during_serving`]: robustness tests
    /// assert it stays 0.
    ///
    /// [`ServerStats::factorizations_during_serving`]:
    ///     exa_serve::ServerStats::factorizations_during_serving
    pub panics_contained: u64,
    /// Predict requests executed as a batch-of-one on the reactor thread
    /// (the idle-queue fast path; see the module docs).
    pub requests_inline: u64,
    /// Predict requests handed to the serve worker pool via the
    /// non-blocking submit + completion-callback path.
    pub requests_dispatched: u64,
}

impl WireCounters {
    fn snapshot(&self) -> WireStats {
        WireStats {
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_refused: self.connections_refused.load(Ordering::Relaxed),
            requests_ok: self.requests_ok.load(Ordering::Relaxed),
            requests_client_error: self.requests_client_error.load(Ordering::Relaxed),
            requests_server_error: self.requests_server_error.load(Ordering::Relaxed),
            malformed_requests: self.malformed_requests.load(Ordering::Relaxed),
            disconnects_mid_request: self.disconnects_mid_request.load(Ordering::Relaxed),
            panics_contained: self.panics_contained.load(Ordering::Relaxed),
            requests_inline: self.requests_inline.load(Ordering::Relaxed),
            requests_dispatched: self.requests_dispatched.load(Ordering::Relaxed),
        }
    }
}

struct Shared<K: ParamCovariance> {
    registry: Arc<ModelRegistry<K>>,
    handle: ServerHandle<K>,
    counters: WireCounters,
    shutting_down: AtomicBool,
    limits: Limits,
    max_connections: usize,
    waker: Waker,
    backend: &'static str,
    /// When this server started — the base of `uptime_seconds`.
    started: Instant,
    /// Bumped on every `/v1/stats` and `/metrics` render. Monotone within
    /// one process, so a *decrease* between two scrapes of the same
    /// address tells the scraper the node restarted.
    stats_epoch: AtomicU64,
    /// Wire-side stage histograms for predict requests (the queue/solve
    /// stages live in the serve layer's own histograms).
    parse_hist: Histogram,
    write_hist: Histogram,
    request_hist: Histogram,
    /// The slowest recent predicts, with per-stage breakdowns
    /// (`GET /v1/debug/slow`).
    slow: SlowRing,
}

/// One routed response, ready to frame.
struct Response {
    status: u16,
    body: Vec<u8>,
    /// `Content-Type` of `body`: JSON everywhere except a binary-negotiated
    /// predict success.
    content_type: &'static str,
    /// Force-close the connection after writing (on top of the client's own
    /// keep-alive preference).
    close: bool,
    /// `Retry-After` seconds on refusals, so backoff is signalled rather
    /// than guessed (the fleet router keys its failover pacing on this).
    retry_after: Option<u64>,
    /// Trace id to echo in the `x-exa-trace-id` response header (set on
    /// the predict paths, where a trace is extracted or minted).
    trace: Option<TraceId>,
}

impl Response {
    fn ok(body: String) -> Self {
        Response {
            status: 200,
            body: body.into_bytes(),
            content_type: "application/json",
            close: false,
            retry_after: None,
            trace: None,
        }
    }

    /// A `200` carrying one binary predict frame.
    fn ok_frame(body: Vec<u8>) -> Self {
        Response {
            status: 200,
            body,
            content_type: codec::FRAME_CONTENT_TYPE,
            close: false,
            retry_after: None,
            trace: None,
        }
    }

    /// Errors are always the structured JSON envelope, whatever codec the
    /// request negotiated — a client that cannot read JSON errors cannot
    /// read the 4xx/5xx contract at all.
    fn error(status: u16, code: &str, message: &str) -> Self {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("error");
        w.begin_object();
        w.field_str("code", code);
        w.field_str("message", message);
        w.end_object();
        w.end_object();
        Response {
            status,
            body: w.finish().into_bytes(),
            content_type: "application/json",
            close: false,
            retry_after: None,
            trace: None,
        }
    }
}

/// `Retry-After` seconds on a transient `503 overloaded` (queue pressure or
/// connection cap): pressure at this horizon is usually gone in a moment.
const RETRY_AFTER_OVERLOADED: u64 = 1;
/// `Retry-After` seconds on `503 shutting_down`: the node will not be back
/// soon, steer clients away longer.
const RETRY_AFTER_SHUTDOWN: u64 = 5;

/// The running wire front-end. See the [crate docs](crate) for the wire
/// schema and an end-to-end example.
pub struct WireServer<K: ParamCovariance> {
    shared: Arc<Shared<K>>,
    local_addr: SocketAddr,
    reactor_thread: Option<JoinHandle<()>>,
    prediction: Option<PredictionServer<K>>,
}

impl<K: ParamCovariance> WireServer<K> {
    /// Binds `config.bind_addr`, starts the underlying [`PredictionServer`]
    /// and the reactor thread, and begins serving.
    pub fn start(registry: Arc<ModelRegistry<K>>, config: WireConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.bind_addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let mut poller = Poller::new()?;
        let backend = poller.backend();
        let (waker, wake_rx) = waker_pair()?;
        poller.register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READABLE)?;
        poller.register(wake_rx.fd(), WAKER_TOKEN, Interest::READABLE)?;
        let prediction = PredictionServer::start(Arc::clone(&registry), config.serve);
        let shared = Arc::new(Shared {
            registry,
            handle: prediction.handle(),
            counters: WireCounters::default(),
            shutting_down: AtomicBool::new(false),
            limits: Limits {
                max_header_bytes: config.max_header_bytes,
                max_body_bytes: config.max_body_bytes,
                request_deadline: config.request_deadline,
                idle_timeout: config.idle_timeout,
            },
            max_connections: config.max_connections.max(1),
            waker,
            backend,
            started: Instant::now(),
            stats_epoch: AtomicU64::new(0),
            parse_hist: Histogram::new(),
            write_hist: Histogram::new(),
            request_hist: Histogram::new(),
            slow: SlowRing::default(),
        });
        let reactor_thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("exa-wire-reactor".into())
                .spawn(move || Reactor::new(shared, poller, listener, wake_rx).run())?
        };
        Ok(WireServer {
            shared,
            local_addr,
            reactor_thread: Some(reactor_thread),
            prediction: Some(prediction),
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Which readiness backend the reactor is running on (`"epoll"` or
    /// `"poll"`).
    pub fn backend(&self) -> &'static str {
        self.shared.backend
    }

    /// Wire-level statistics snapshot.
    pub fn stats(&self) -> WireStats {
        self.shared.counters.snapshot()
    }

    /// Statistics of the underlying prediction server.
    pub fn serve_stats(&self) -> exa_serve::ServerStats {
        self.shared.handle.stats()
    }

    /// Graceful shutdown: stop accepting, finish in-flight requests, join
    /// the reactor thread, then drain and join the prediction server.
    /// Returns the final wire and serving statistics.
    pub fn shutdown(mut self) -> (WireStats, exa_serve::ServerStats) {
        self.wind_down();
        let wire = self.shared.counters.snapshot();
        let serve = self
            .prediction
            .take()
            .expect("prediction server present until shutdown")
            .shutdown();
        (wire, serve)
    }

    fn wind_down(&mut self) {
        // ORDERING: SeqCst — the flag store must be globally ordered before
        // the waker byte below, so a reactor woken by it cannot load the
        // flag as false and go back to sleep.
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        self.shared.waker.wake();
        if let Some(reactor) = self.reactor_thread.take() {
            let _ = reactor.join();
        }
    }
}

impl<K: ParamCovariance> Drop for WireServer<K> {
    fn drop(&mut self) {
        // `shutdown()` takes `prediction`; an un-shutdown drop still winds
        // the reactor down cleanly (the prediction server's own Drop then
        // drains its queue).
        if self.reactor_thread.is_some() {
            self.wind_down();
        }
    }
}

/// A prediction answer crossing back from a fulfilling thread to the
/// reactor.
struct Completion {
    token: u64,
    result: Result<ServedPrediction, ServeError>,
}

/// What the reactor remembers about a dispatched predict request while the
/// serve side works on it: everything needed to encode the response at
/// completion time.
struct PendingDispatch {
    model: String,
    resp_codec: Codec,
    keep_alive_wanted: bool,
    /// The request's trace id, echoed in the response and attributed in
    /// the slow ring.
    trace: TraceId,
    /// When the request was carved off the socket (total-span base).
    request_started: Instant,
    /// Routing + body-decode span, measured before the dispatch.
    parse_ns: u64,
}

/// One slab entry: the transport state machine plus the reactor's
/// request-level bookkeeping for it.
struct ConnEntry {
    conn: Connection,
    /// Set while `conn` is in [`ConnState::Dispatch`].
    pending: Option<PendingDispatch>,
    /// A `503` courtesy connection at the cap, excluded from the serving
    /// count.
    refusal: bool,
    /// The peer hung up while a dispatch was in flight: the fd is already
    /// deregistered, and the entry is reaped when its completion arrives.
    peer_gone: bool,
}

struct Reactor<K: ParamCovariance> {
    shared: Arc<Shared<K>>,
    poller: Poller,
    listener: Option<TcpListener>,
    wake_rx: WakeReceiver,
    conns: TokenSlab<ConnEntry>,
    completions: Arc<Mutex<VecDeque<Completion>>>,
    /// Dispatched predictions not yet completed (queued completions
    /// included — the count drops when the completion is *processed*).
    inflight: usize,
    /// Admitted (non-refusal) connections, measured against
    /// `max_connections`.
    serving: usize,
    /// Live refusal entries, bounded by [`MAX_PENDING_REFUSALS`].
    refusals: usize,
    /// Whether exactly one connection went readable in the current poll
    /// batch — the precondition for the inline fast path (with more than
    /// one, dispatching preserves cross-request coalescing).
    batch_solo: bool,
    shutting: bool,
}

impl<K: ParamCovariance> Reactor<K> {
    fn new(
        shared: Arc<Shared<K>>,
        poller: Poller,
        listener: TcpListener,
        wake_rx: WakeReceiver,
    ) -> Self {
        Reactor {
            shared,
            poller,
            listener: Some(listener),
            wake_rx,
            conns: TokenSlab::new(),
            completions: Arc::new(Mutex::new(VecDeque::new())),
            inflight: 0,
            serving: 0,
            refusals: 0,
            batch_solo: false,
            shutting: false,
        }
    }

    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        let mut next_sweep = Instant::now() + TICK;
        loop {
            if self.poller.wait(&mut events, TICK).is_err() {
                // A failed wait would spin; treat it as fatal for the
                // reactor but not the process.
                break;
            }
            let now = Instant::now();
            self.batch_solo = events
                .iter()
                .filter(|e| e.token < WAKER_TOKEN && e.readable)
                .count()
                <= 1;
            let mut accept_ready = false;
            let mut wake = false;
            for &event in &events {
                match event.token {
                    LISTENER_TOKEN => accept_ready = true,
                    WAKER_TOKEN => wake = true,
                    token => self.conn_event(token, event, now),
                }
            }
            if wake {
                self.wake_rx.drain();
            }
            self.process_completions(now);
            if accept_ready {
                self.accept_pending(now);
            }
            // ORDERING: SeqCst pairs with wind_down's store: after the waker
            // byte wakes this loop, the load is guaranteed to see the flag.
            if self.shared.shutting_down.load(Ordering::SeqCst) && !self.shutting {
                self.begin_shutdown();
            }
            if now >= next_sweep {
                self.sweep_deadlines(now);
                next_sweep = now + TICK;
            }
            if self.shutting && self.conns.is_empty() && self.inflight == 0 {
                break;
            }
        }
    }

    /// Accepts until `WouldBlock`, admitting up to the connection cap and
    /// answering the rest with a courtesy `503`.
    fn accept_pending(&mut self, now: Instant) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if http::would_block(&e) => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                // Transient accept errors (e.g. the peer already reset):
                // nothing to serve, keep accepting.
                Err(_) => continue,
            };
            if self.serving < self.shared.max_connections {
                self.admit(stream, now);
            } else {
                self.refuse(stream, now);
            }
        }
    }

    fn admit(&mut self, stream: TcpStream, now: Instant) {
        let Ok(conn) = Connection::new(stream, self.shared.limits, now) else {
            return;
        };
        let fd = conn.fd();
        let token = self.conns.insert(ConnEntry {
            conn,
            pending: None,
            refusal: false,
            peer_gone: false,
        });
        // A fresh connection starts with read interest — which is exactly
        // what `Connection::new` caches, so no follow-up `arm` is needed.
        if self.poller.register(fd, token, Interest::READABLE).is_err() {
            self.conns.remove(token);
            return;
        }
        self.serving += 1;
        self.shared
            .counters
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Answers an over-cap connection with `503` and drains it to a clean
    /// close, without ever admitting it to the serving count.
    fn refuse(&mut self, stream: TcpStream, now: Instant) {
        self.shared
            .counters
            .connections_refused
            .fetch_add(1, Ordering::Relaxed);
        if self.refusals >= MAX_PENDING_REFUSALS {
            return; // drop the socket: the courtesy 503 has a budget too
        }
        let Ok(mut conn) = Connection::new(stream, self.shared.limits, now) else {
            return;
        };
        let mut response = Response::error(503, "overloaded", "connection limit reached");
        response.retry_after = Some(RETRY_AFTER_OVERLOADED);
        let bytes = http::encode_response_with_retry(
            response.status,
            response.content_type,
            &response.body,
            false,
            response.retry_after,
        );
        conn.queue_response(bytes, false, now);
        let fd = conn.fd();
        let token = self.conns.insert(ConnEntry {
            conn,
            pending: None,
            refusal: true,
            peer_gone: false,
        });
        if self.poller.register(fd, token, Interest::READABLE).is_err() {
            self.conns.remove(token);
            return;
        }
        self.refusals += 1;
        let entry = self.conns.get_mut(token).expect("just inserted");
        match entry.conn.try_write(now) {
            WriteOutcome::Pending | WriteOutcome::Closing => self.arm(token),
            WriteOutcome::Broken => self.remove_conn(token),
            WriteOutcome::Flushed => unreachable!("refusals never keep alive"),
        }
    }

    /// One readiness event for one connection.
    fn conn_event(&mut self, token: u64, event: Event, now: Instant) {
        let Some(entry) = self.conns.get_mut(token) else {
            return; // stale token: the connection died earlier this batch
        };
        match entry.conn.state() {
            ConnState::ReadingHead | ConnState::ReadingBody => self.conn_read(token, now),
            ConnState::Writing => {
                match entry.conn.try_write(now) {
                    WriteOutcome::Flushed => {
                        self.parse_loop(token, now);
                        // Any kernel-buffered bytes re-report via level
                        // triggering; parse_loop already handled what was
                        // in the parser buffer.
                    }
                    WriteOutcome::Pending | WriteOutcome::Closing => {}
                    WriteOutcome::Broken => {
                        self.remove_conn(token);
                        return;
                    }
                }
                self.arm(token);
            }
            ConnState::Draining => {
                if entry.conn.drain() == DrainOutcome::Done {
                    self.remove_conn(token);
                }
            }
            ConnState::Dispatch => {
                if event.closed {
                    // The peer is gone for good (full close or reset — a
                    // half-close would not raise this without read
                    // interest). Deregister so the level-triggered HUP
                    // stops waking us; the completion reaps the entry.
                    let fd = entry.conn.fd();
                    entry.peer_gone = true;
                    let _ = self.poller.deregister(fd);
                }
            }
        }
    }

    /// Reads until `WouldBlock` (or the connection changes state), parsing
    /// and handling every complete request along the way.
    fn conn_read(&mut self, token: u64, now: Instant) {
        loop {
            let Some(entry) = self.conns.get_mut(token) else {
                return;
            };
            if !matches!(
                entry.conn.state(),
                ConnState::ReadingHead | ConnState::ReadingBody
            ) {
                break;
            }
            match entry.conn.fill(now) {
                FillOutcome::Progress => self.parse_loop(token, now),
                FillOutcome::WouldBlock => break,
                FillOutcome::Eof => {
                    if entry.conn.started() {
                        self.shared
                            .counters
                            .disconnects_mid_request
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    self.remove_conn(token);
                    return;
                }
                FillOutcome::Broken => {
                    if entry.conn.started() {
                        self.shared
                            .counters
                            .disconnects_mid_request
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    self.remove_conn(token);
                    return;
                }
            }
        }
        self.arm(token);
    }

    /// Carves and handles buffered requests while the connection stays in
    /// a reading state (keep-alive pipelining without extra socket reads).
    fn parse_loop(&mut self, token: u64, now: Instant) {
        loop {
            let Some(entry) = self.conns.get_mut(token) else {
                return;
            };
            if !matches!(
                entry.conn.state(),
                ConnState::ReadingHead | ConnState::ReadingBody
            ) {
                return;
            }
            match entry.conn.next_request() {
                Ok(ParseProgress::Request(request)) => {
                    if !self.handle_request(token, request, now) {
                        return;
                    }
                }
                Ok(ParseProgress::NeedHead | ParseProgress::NeedBody) => return,
                Err(err) => {
                    // Answerable protocol violation: respond, then close
                    // (the connection's framing can no longer be trusted).
                    self.shared
                        .counters
                        .malformed_requests
                        .fetch_add(1, Ordering::Relaxed);
                    let mut response =
                        Response::error(err.status(), "bad_request", &err.to_string());
                    response.close = true;
                    self.answer(token, response, true, now);
                    return;
                }
            }
        }
    }

    /// Routes one parsed request: answer immediately, run the predict
    /// inline, or dispatch it to the serve pool. Returns `true` when the
    /// response was fully flushed on a keep-alive connection (the caller
    /// may parse the next pipelined request).
    fn handle_request(&mut self, token: u64, request: Request, now: Instant) -> bool {
        let request_started = Instant::now();
        let keep_alive_wanted = request.keep_alive();
        let trace_in = request.header(TRACE_HEADER).and_then(TraceId::parse);
        // A panic anywhere in routing (JSON decode, registry, inline
        // prediction) must not kill the reactor: contain it, answer 500.
        let routed = catch_unwind(AssertUnwindSafe(|| route(&self.shared, &request)));
        // Routing includes the body decode, so this is the parse span.
        let parse_ns = request_started.elapsed().as_nanos() as u64;
        let routed = match routed {
            Ok(routed) => routed,
            Err(_) => {
                self.shared
                    .counters
                    .panics_contained
                    .fetch_add(1, Ordering::Relaxed);
                let mut response = Response::error(500, "internal", "request handler panicked");
                response.close = true;
                return self.answer(token, response, keep_alive_wanted, now);
            }
        };
        let (name, targets, want_variance, resp_codec) = match routed {
            Routed::Response(response) => {
                return self.answer(token, response, keep_alive_wanted, now)
            }
            Routed::Predict {
                name,
                targets,
                want_variance,
                resp_codec,
            } => (name, targets, want_variance, resp_codec),
        };
        // Every predict carries a trace id: the router's (forwarded in the
        // request header) or one minted here for direct clients.
        let trace = trace_in.unwrap_or_else(TraceId::mint);
        if self.inline_ok() {
            self.shared
                .counters
                .requests_inline
                .fetch_add(1, Ordering::Relaxed);
            let handle = &self.shared.handle;
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let served = handle.predict_traced(&name, targets, want_variance, Some(trace));
                match served {
                    Ok(served) => {
                        let stages = stage_ns(&served);
                        (predict_response(&name, resp_codec, &served), stages)
                    }
                    Err(err) => (serve_error_response(&err), (0, 0)),
                }
            }));
            let (mut response, (queue_ns, solve_ns)) = outcome.unwrap_or_else(|_| {
                self.shared
                    .counters
                    .panics_contained
                    .fetch_add(1, Ordering::Relaxed);
                let mut response = Response::error(500, "internal", "request handler panicked");
                response.close = true;
                (response, (0, 0))
            });
            response.trace = Some(trace);
            let write_start = Instant::now();
            let flushed = self.answer(token, response, keep_alive_wanted, now);
            observe_predict(
                &self.shared,
                trace,
                &name,
                parse_ns,
                queue_ns,
                solve_ns,
                write_start.elapsed().as_nanos() as u64,
                request_started.elapsed().as_nanos() as u64,
            );
            return flushed;
        }
        // Dispatch path: non-blocking submit, completion via callback.
        let ticket = self
            .shared
            .handle
            .submit_traced(&name, targets, want_variance, Some(trace));
        let ticket = match ticket {
            Ok(ticket) => ticket,
            Err(err) => {
                let mut response = serve_error_response(&err);
                response.trace = Some(trace);
                return self.answer(token, response, keep_alive_wanted, now);
            }
        };
        let entry = self.conns.get_mut(token).expect("handled conn is live");
        entry.pending = Some(PendingDispatch {
            model: name,
            resp_codec,
            keep_alive_wanted,
            trace,
            request_started,
            parse_ns,
        });
        entry.conn.begin_dispatch();
        self.inflight += 1;
        self.shared
            .counters
            .requests_dispatched
            .fetch_add(1, Ordering::Relaxed);
        let completions = Arc::clone(&self.completions);
        let waker = self.shared.waker.clone();
        // Fires on whichever thread fulfills the prediction (worker or an
        // inline submitter): park the result and poke the poller.
        ticket.on_ready(move |result| {
            completions
                .lock()
                .expect("completion queue lock")
                .push_back(Completion { token, result });
            waker.wake();
        });
        self.arm(token);
        false
    }

    /// Whether a predict may run inline on the reactor thread right now:
    /// only with nothing else in motion — no dispatch in flight, nothing
    /// in the serve queue, and no other connection readable in this poll
    /// batch. Anything else must dispatch so concurrent requests coalesce
    /// on the worker pool instead of serializing behind the reactor.
    fn inline_ok(&self) -> bool {
        self.batch_solo && self.inflight == 0 && self.shared.handle.queue_depth() == 0
    }

    /// Drains the completion queue: encode each answered dispatch and
    /// start (or finish) writing it.
    fn process_completions(&mut self, now: Instant) {
        loop {
            let completion = self
                .completions
                .lock()
                .expect("completion queue lock")
                .pop_front();
            let Some(Completion { token, result }) = completion else {
                return;
            };
            self.inflight -= 1;
            let Some(entry) = self.conns.get_mut(token) else {
                continue; // the connection died while the serve side worked
            };
            let pending = entry
                .pending
                .take()
                .expect("completion for a connection not in dispatch");
            let peer_gone = entry.peer_gone;
            let outcome = catch_unwind(AssertUnwindSafe(|| match &result {
                Ok(served) => predict_response(&pending.model, pending.resp_codec, served),
                Err(err) => serve_error_response(err),
            }));
            let mut response = outcome.unwrap_or_else(|_| {
                self.shared
                    .counters
                    .panics_contained
                    .fetch_add(1, Ordering::Relaxed);
                let mut response = Response::error(500, "internal", "request handler panicked");
                response.close = true;
                response
            });
            response.trace = Some(pending.trace);
            let (queue_ns, solve_ns) = match &result {
                Ok(served) => stage_ns(served),
                Err(_) => (0, 0),
            };
            if peer_gone {
                // The request is still accounted (the work was done), but
                // there is no one left to write to.
                count_status(&self.shared, response.status);
                observe_predict(
                    &self.shared,
                    pending.trace,
                    &pending.model,
                    pending.parse_ns,
                    queue_ns,
                    solve_ns,
                    0,
                    pending.request_started.elapsed().as_nanos() as u64,
                );
                self.remove_conn(token);
                continue;
            }
            let write_start = Instant::now();
            let flushed = self.answer(token, response, pending.keep_alive_wanted, now);
            observe_predict(
                &self.shared,
                pending.trace,
                &pending.model,
                pending.parse_ns,
                queue_ns,
                solve_ns,
                write_start.elapsed().as_nanos() as u64,
                pending.request_started.elapsed().as_nanos() as u64,
            );
            if flushed {
                // Flushed on a keep-alive connection: pipelined requests
                // may already be buffered.
                self.parse_loop(token, now);
            }
            self.arm(token);
        }
    }

    /// Counts, encodes, queues, and starts writing one response. Returns
    /// `true` when it flushed completely and the connection re-entered
    /// keep-alive reading.
    fn answer(
        &mut self,
        token: u64,
        response: Response,
        keep_alive_wanted: bool,
        now: Instant,
    ) -> bool {
        count_status(&self.shared, response.status);
        // ORDERING: SeqCst — same total order as wind_down's store, so no
        // response renews keep-alive once shutdown has begun.
        let shutting = self.shared.shutting_down.load(Ordering::SeqCst);
        let keep_alive = keep_alive_wanted && !response.close && !shutting;
        let trace_header;
        let extra: &[(&str, String)] = match response.trace {
            Some(trace) => {
                trace_header = [(TRACE_HEADER, trace.to_string())];
                &trace_header
            }
            None => &[],
        };
        let bytes = http::encode_response_ext(
            response.status,
            response.content_type,
            &response.body,
            keep_alive,
            response.retry_after,
            extra,
        );
        let Some(entry) = self.conns.get_mut(token) else {
            return false;
        };
        entry.conn.queue_response(bytes, keep_alive, now);
        match entry.conn.try_write(now) {
            WriteOutcome::Flushed => true,
            WriteOutcome::Pending | WriteOutcome::Closing => {
                self.arm(token);
                false
            }
            WriteOutcome::Broken => {
                self.remove_conn(token);
                false
            }
        }
    }

    /// Syncs a connection's poller interest with its state, tearing the
    /// connection down if the poller refuses.
    fn arm(&mut self, token: u64) {
        let Some(entry) = self.conns.get_mut(token) else {
            return;
        };
        if entry.peer_gone {
            return; // fd already deregistered
        }
        if entry.conn.arm(&mut self.poller, token).is_err() {
            self.remove_conn(token);
        }
    }

    /// Applies state deadlines: reap idle keep-alives silently, count
    /// stalled mid-request clients, abandon stuck writes and drains.
    fn sweep_deadlines(&mut self, now: Instant) {
        for token in self.conns.tokens() {
            let Some(entry) = self.conns.get_mut(token) else {
                continue;
            };
            if !entry.conn.expired(now) {
                continue;
            }
            match entry.conn.state() {
                ConnState::ReadingHead if !entry.conn.started() => {
                    // Idle keep-alive past its timeout: close silently
                    // (nothing was promised to this client).
                    self.remove_conn(token);
                }
                ConnState::ReadingHead | ConnState::ReadingBody => {
                    // Slow-loris: request started, deadline blown.
                    self.shared
                        .counters
                        .disconnects_mid_request
                        .fetch_add(1, Ordering::Relaxed);
                    self.remove_conn(token);
                }
                ConnState::Writing | ConnState::Draining => self.remove_conn(token),
                ConnState::Dispatch => unreachable!("dispatch carries no deadline"),
            }
        }
    }

    /// Stops accepting and sheds every connection not occupied with a
    /// request: reading-state connections close immediately (idle or not —
    /// PR 4 semantics), dispatch/write/drain states finish their work.
    fn begin_shutdown(&mut self) {
        self.shutting = true;
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.deregister(listener.as_raw_fd());
        }
        for token in self.conns.tokens() {
            let Some(entry) = self.conns.get_mut(token) else {
                continue;
            };
            if matches!(
                entry.conn.state(),
                ConnState::ReadingHead | ConnState::ReadingBody
            ) {
                self.remove_conn(token);
            }
        }
    }

    fn remove_conn(&mut self, token: u64) {
        let Some(entry) = self.conns.remove(token) else {
            return;
        };
        if !entry.peer_gone {
            let _ = self.poller.deregister(entry.conn.fd());
        }
        if entry.refusal {
            self.refusals -= 1;
        } else {
            self.serving -= 1;
        }
        // Dropping `entry` closes the socket. An entry dying mid-dispatch
        // leaves `inflight` untouched on purpose: its completion still
        // arrives, is popped, and finds the token stale.
    }
}

fn count_status<K: ParamCovariance>(shared: &Shared<K>, status: u16) {
    let counter = match status {
        200..=299 => &shared.counters.requests_ok,
        400..=499 => &shared.counters.requests_client_error,
        _ => &shared.counters.requests_server_error,
    };
    counter.fetch_add(1, Ordering::Relaxed);
}

/// What routing decided: either a finished response, or a decoded predict
/// request for the reactor to run inline or dispatch.
enum Routed {
    Response(Response),
    Predict {
        name: String,
        targets: Vec<Location>,
        want_variance: bool,
        resp_codec: Codec,
    },
}

/// Maps one parsed request to a response or a decoded prediction. Never
/// returns a transport-level error: everything is an HTTP status plus a
/// structured JSON error body.
fn route<K: ParamCovariance>(shared: &Shared<K>, request: &Request) -> Routed {
    let path = request.path();
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method(), segments.as_slice()) {
        ("GET", ["healthz"]) => Routed::Response(health(shared)),
        ("GET", ["v1", "models"]) => Routed::Response(models(shared)),
        ("GET", ["v1", "stats"]) => Routed::Response(stats(shared)),
        ("GET", ["metrics"]) => Routed::Response(metrics(shared)),
        ("GET", ["v1", "debug", "slow"]) => Routed::Response(debug_slow(shared)),
        ("POST", ["v1", "models", name, "predict"]) => decode_predict(name, request),
        // The write path runs synchronously on the reactor thread: that
        // serializes observes per node (and therefore per model) by
        // construction, which the incremental factor update requires.
        ("POST", ["v1", "models", name, "observe"]) => {
            Routed::Response(observe(shared, name, request))
        }
        // Admin: drop a model so the next miss reloads it through the
        // loader — the fleet router uses this to un-stale a replica that
        // missed an observe.
        ("POST", ["v1", "models", name, "evict"]) => Routed::Response(evict(shared, name)),
        // Right path, wrong verb → 405 so clients can tell the two apart.
        (_, ["healthz"])
        | (_, ["v1", "models"])
        | (_, ["v1", "stats"])
        | (_, ["metrics"])
        | (_, ["v1", "debug", "slow"])
        | (_, ["v1", "models", _, "predict"])
        | (_, ["v1", "models", _, "observe"])
        | (_, ["v1", "models", _, "evict"]) => Routed::Response(Response::error(
            405,
            "method_not_allowed",
            &format!("{} is not supported on {path}", request.method()),
        )),
        _ => Routed::Response(Response::error(
            404,
            "unknown_path",
            &format!("no route for {path}"),
        )),
    }
}

fn health<K: ParamCovariance>(shared: &Shared<K>) -> Response {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("status", "ok");
    w.field_uint("models", shared.registry.len() as u64);
    w.end_object();
    Response::ok(w.finish())
}

fn models<K: ParamCovariance>(shared: &Shared<K>) -> Response {
    // One lock acquisition: the entry list and the counters must describe
    // the same instant, or eviction observers see books that don't balance.
    let (entries, stats) = shared.registry.snapshot();
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("models");
    w.begin_array();
    for entry in &entries {
        w.begin_object();
        w.field_str("name", &entry.name);
        w.field_uint("factor_bytes", entry.factor_bytes as u64);
        w.end_object();
    }
    w.end_array();
    w.field_uint("resident_models", stats.resident_models as u64);
    w.field_uint("bytes_in_use", stats.bytes_in_use as u64);
    w.key("byte_budget");
    match stats.byte_budget {
        Some(budget) => w.uint(budget as u64),
        None => w.null(),
    }
    w.field_uint("insertions", stats.insertions);
    w.field_uint("evictions", stats.evictions);
    w.field_uint("hits", stats.hits);
    w.field_uint("misses", stats.misses);
    w.end_object();
    Response::ok(w.finish())
}

fn stats<K: ParamCovariance>(shared: &Shared<K>) -> Response {
    let wire = shared.counters.snapshot();
    let serve = shared.handle.stats();
    let registry = shared.registry.stats();
    let epoch = shared.stats_epoch.fetch_add(1, Ordering::Relaxed) + 1;
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("wire");
    w.begin_object();
    w.field_str("backend", shared.backend);
    w.field_uint("connections_accepted", wire.connections_accepted);
    w.field_uint("connections_refused", wire.connections_refused);
    w.field_uint("requests_ok", wire.requests_ok);
    w.field_uint("requests_client_error", wire.requests_client_error);
    w.field_uint("requests_server_error", wire.requests_server_error);
    w.field_uint("malformed_requests", wire.malformed_requests);
    w.field_uint("disconnects_mid_request", wire.disconnects_mid_request);
    w.field_uint("panics_contained", wire.panics_contained);
    w.field_uint("requests_inline", wire.requests_inline);
    w.field_uint("requests_dispatched", wire.requests_dispatched);
    w.field_num("uptime_seconds", shared.started.elapsed().as_secs_f64());
    w.field_uint("stats_epoch", epoch);
    w.end_object();
    w.key("serve");
    w.begin_object();
    w.field_uint("requests_submitted", serve.requests_submitted);
    w.field_uint("requests_served", serve.requests_served);
    w.field_uint("requests_failed", serve.requests_failed);
    w.field_uint("batches_executed", serve.batches_executed);
    w.field_uint("requests_coalesced", serve.requests_coalesced);
    w.field_uint("points_served", serve.points_served);
    w.field_uint("max_queue_depth", serve.max_queue_depth);
    w.field_uint("queue_depth", shared.handle.queue_depth() as u64);
    w.field_num("total_latency_seconds", serve.total_latency_seconds);
    w.field_num("max_latency_seconds", serve.max_latency_seconds);
    w.field_num("mean_latency_seconds", serve.mean_latency_seconds());
    w.field_num("latency_p50_seconds", serve.latency_p50_seconds);
    w.field_num("latency_p95_seconds", serve.latency_p95_seconds);
    w.field_num("latency_p99_seconds", serve.latency_p99_seconds);
    w.field_num("latency_p999_seconds", serve.latency_p999_seconds);
    w.field_uint(
        "factorizations_during_serving",
        serve.factorizations_during_serving,
    );
    w.field_uint("observes_applied", serve.observes_applied);
    w.field_uint("observe_points_ingested", serve.observe_points_ingested);
    w.field_uint("observes_failed", serve.observes_failed);
    w.field_uint("observe_sync_refits", serve.observe_sync_refits);
    w.field_uint("observe_refits_triggered", serve.observe_refits_triggered);
    w.field_num("observe_p50_seconds", serve.observe_p50_seconds);
    w.field_num("observe_p95_seconds", serve.observe_p95_seconds);
    w.field_num("observe_p99_seconds", serve.observe_p99_seconds);
    let drift = shared.handle.drift_totals();
    w.field_uint(
        "ingest_updates_since_refactor",
        drift.updates_since_refactor,
    );
    w.field_uint("ingest_updates_total", drift.updates_total);
    w.field_uint("ingest_points_ingested", drift.points_ingested);
    w.field_uint("ingest_points_expired", drift.points_expired);
    w.field_uint("ingest_refits_triggered", drift.refits_triggered);
    w.field_uint("ingest_refits_completed", drift.refits_completed);
    w.field_uint("ingest_replayed_updates", drift.replayed_updates);
    w.field_num("ingest_condition_growth", drift.condition_growth);
    w.field_num("ingest_loglik_drift", drift.loglik_drift);
    w.end_object();
    w.key("registry");
    w.begin_object();
    w.field_uint("resident_models", registry.resident_models as u64);
    w.field_uint("bytes_in_use", registry.bytes_in_use as u64);
    w.field_uint("insertions", registry.insertions);
    w.field_uint("evictions", registry.evictions);
    w.field_uint("hits", registry.hits);
    w.field_uint("misses", registry.misses);
    w.field_uint("loads", registry.loads);
    w.field_uint("reaccounts", registry.reaccounts);
    w.end_object();
    w.end_object();
    Response::ok(w.finish())
}

/// `GET /metrics`: the Prometheus text exposition. Scalar metric names
/// mirror the `/v1/stats` JSON keys exactly (`exa_wire_requests_ok` ↔
/// `wire.requests_ok`) so the CI drift check is a mechanical two-way key
/// comparison; histogram families have no JSON twin and are allowlisted
/// there.
fn metrics<K: ParamCovariance>(shared: &Shared<K>) -> Response {
    let wire = shared.counters.snapshot();
    let serve = shared.handle.stats();
    let registry = shared.registry.stats();
    let epoch = shared.stats_epoch.fetch_add(1, Ordering::Relaxed) + 1;
    let mut p = PromText::new();
    p.counter(
        "exa_wire_connections_accepted",
        "Connections accepted and admitted to the reactor.",
        wire.connections_accepted,
    );
    p.counter(
        "exa_wire_connections_refused",
        "Connections refused with 503 at the connection cap.",
        wire.connections_refused,
    );
    p.counter(
        "exa_wire_requests_ok",
        "Requests answered 2xx.",
        wire.requests_ok,
    );
    p.counter(
        "exa_wire_requests_client_error",
        "Requests answered 4xx.",
        wire.requests_client_error,
    );
    p.counter(
        "exa_wire_requests_server_error",
        "Requests answered 5xx.",
        wire.requests_server_error,
    );
    p.counter(
        "exa_wire_malformed_requests",
        "HTTP-level parse failures answered with an error status.",
        wire.malformed_requests,
    );
    p.counter(
        "exa_wire_disconnects_mid_request",
        "Clients that vanished or stalled past the deadline mid-request.",
        wire.disconnects_mid_request,
    );
    p.counter(
        "exa_wire_panics_contained",
        "Handler panics contained by the per-request catch_unwind.",
        wire.panics_contained,
    );
    p.counter(
        "exa_wire_requests_inline",
        "Predicts run as a batch-of-one on the reactor thread.",
        wire.requests_inline,
    );
    p.counter(
        "exa_wire_requests_dispatched",
        "Predicts handed to the serve worker pool.",
        wire.requests_dispatched,
    );
    p.gauge(
        "exa_wire_uptime_seconds",
        "Seconds since this wire server started.",
        shared.started.elapsed().as_secs_f64(),
    );
    p.gauge(
        "exa_wire_stats_epoch",
        "Render counter, monotone per process; a decrease means a restart.",
        epoch as f64,
    );
    p.counter(
        "exa_serve_requests_submitted",
        "Requests accepted into the serve queue.",
        serve.requests_submitted,
    );
    p.counter(
        "exa_serve_requests_served",
        "Requests answered successfully by the serve layer.",
        serve.requests_served,
    );
    p.counter(
        "exa_serve_requests_failed",
        "Requests answered with an error by the serve layer.",
        serve.requests_failed,
    );
    p.counter(
        "exa_serve_batches_executed",
        "Coalesced prediction calls executed by the workers.",
        serve.batches_executed,
    );
    p.counter(
        "exa_serve_requests_coalesced",
        "Requests that shared their batch with at least one other request.",
        serve.requests_coalesced,
    );
    p.counter(
        "exa_serve_points_served",
        "Total prediction points answered.",
        serve.points_served,
    );
    p.counter(
        "exa_serve_max_queue_depth",
        "Queue-depth high-water mark.",
        serve.max_queue_depth,
    );
    p.gauge(
        "exa_serve_queue_depth",
        "Requests currently queued in the serve layer.",
        shared.handle.queue_depth() as f64,
    );
    p.gauge(
        "exa_serve_total_latency_seconds",
        "Sum of per-request submit-to-response latencies.",
        serve.total_latency_seconds,
    );
    p.gauge(
        "exa_serve_max_latency_seconds",
        "Worst single-request latency.",
        serve.max_latency_seconds,
    );
    p.gauge(
        "exa_serve_mean_latency_seconds",
        "Mean submit-to-response latency.",
        serve.mean_latency_seconds(),
    );
    p.gauge(
        "exa_serve_latency_p50_seconds",
        "Median serve latency from the latency histogram.",
        serve.latency_p50_seconds,
    );
    p.gauge(
        "exa_serve_latency_p95_seconds",
        "95th-percentile serve latency from the latency histogram.",
        serve.latency_p95_seconds,
    );
    p.gauge(
        "exa_serve_latency_p99_seconds",
        "99th-percentile serve latency from the latency histogram.",
        serve.latency_p99_seconds,
    );
    p.gauge(
        "exa_serve_latency_p999_seconds",
        "99.9th-percentile serve latency from the latency histogram.",
        serve.latency_p999_seconds,
    );
    p.counter(
        "exa_serve_factorizations_during_serving",
        "Cholesky factorizations performed by serve workers (must stay 0).",
        serve.factorizations_during_serving,
    );
    p.counter(
        "exa_serve_observes_applied",
        "Observe batches applied successfully (the write path).",
        serve.observes_applied,
    );
    p.counter(
        "exa_serve_observe_points_ingested",
        "Observation points ingested by successful observes.",
        serve.observe_points_ingested,
    );
    p.counter(
        "exa_serve_observes_failed",
        "Observe batches rejected or failed.",
        serve.observes_failed,
    );
    p.counter(
        "exa_serve_observe_sync_refits",
        "Observes that fell back to a synchronous full refit.",
        serve.observe_sync_refits,
    );
    p.counter(
        "exa_serve_observe_refits_triggered",
        "Background refactorizations scheduled by drift during an observe.",
        serve.observe_refits_triggered,
    );
    p.gauge(
        "exa_serve_observe_p50_seconds",
        "Median observe latency from the observe histogram.",
        serve.observe_p50_seconds,
    );
    p.gauge(
        "exa_serve_observe_p95_seconds",
        "95th-percentile observe latency from the observe histogram.",
        serve.observe_p95_seconds,
    );
    p.gauge(
        "exa_serve_observe_p99_seconds",
        "99th-percentile observe latency from the observe histogram.",
        serve.observe_p99_seconds,
    );
    let drift = shared.handle.drift_totals();
    p.gauge(
        "exa_serve_ingest_updates_since_refactor",
        "Incremental updates applied since the last refactorization (max over resident models).",
        drift.updates_since_refactor as f64,
    );
    p.counter(
        "exa_serve_ingest_updates_total",
        "Lifetime observe/expire calls across resident models.",
        drift.updates_total,
    );
    p.counter(
        "exa_serve_ingest_points_ingested",
        "Lifetime observation points ingested across resident models.",
        drift.points_ingested,
    );
    p.counter(
        "exa_serve_ingest_points_expired",
        "Lifetime observation points expired across resident models.",
        drift.points_expired,
    );
    p.counter(
        "exa_serve_ingest_refits_triggered",
        "Background refactorizations scheduled by drift policy.",
        drift.refits_triggered,
    );
    p.counter(
        "exa_serve_ingest_refits_completed",
        "Refactorizations (background or fallback) completed.",
        drift.refits_completed,
    );
    p.counter(
        "exa_serve_ingest_replayed_updates",
        "Write operations replayed onto freshly refactored models.",
        drift.replayed_updates,
    );
    p.gauge(
        "exa_serve_ingest_condition_growth",
        "Condition-estimate growth since the last refactorization (max over resident models).",
        drift.condition_growth,
    );
    p.gauge(
        "exa_serve_ingest_loglik_drift",
        "Per-point log-likelihood drift since the last refactorization (max over resident models).",
        drift.loglik_drift,
    );
    p.gauge(
        "exa_registry_resident_models",
        "Models currently resident in the registry.",
        registry.resident_models as f64,
    );
    p.gauge(
        "exa_registry_bytes_in_use",
        "Factor bytes currently resident in the registry.",
        registry.bytes_in_use as f64,
    );
    p.counter(
        "exa_registry_insertions",
        "Lifetime registry insertions.",
        registry.insertions,
    );
    p.counter(
        "exa_registry_evictions",
        "Lifetime LRU evictions by the byte budget.",
        registry.evictions,
    );
    p.counter(
        "exa_registry_hits",
        "Lifetime registry lookups that hit.",
        registry.hits,
    );
    p.counter(
        "exa_registry_misses",
        "Lifetime registry lookups that missed.",
        registry.misses,
    );
    p.counter(
        "exa_registry_loads",
        "Lifetime models materialized by the load-on-miss hook.",
        registry.loads,
    );
    p.counter(
        "exa_registry_reaccounts",
        "Byte-ledger recomputations after a model grew or shrank in place.",
        registry.reaccounts,
    );
    p.histogram(
        "exa_serve_latency_seconds",
        "Submit-to-response latency of the prediction server.",
        &shared.handle.latency_histogram(),
    );
    p.histogram(
        "exa_wire_request_seconds",
        "Wire-level predict latency: request carved to response queued.",
        &shared.request_hist.snapshot(),
    );
    p.histogram(
        "exa_serve_observe_seconds",
        "Latency of observe batches (incremental update or fallback refit).",
        &shared.handle.observe_histogram(),
    );
    let parse = shared.parse_hist.snapshot();
    let queue = shared.handle.queue_histogram();
    let solve = shared.handle.solve_histogram();
    let write = shared.write_hist.snapshot();
    let stages: [(&str, &HistogramSnapshot); 4] = [
        ("parse", &parse),
        ("queue", &queue),
        ("solve", &solve),
        ("write", &write),
    ];
    p.histogram_series(
        "exa_request_stage_seconds",
        "Per-stage predict spans on this node.",
        "stage",
        &stages,
    );
    let mut response = Response::ok(p.render());
    response.content_type = "text/plain; version=0.0.4";
    response
}

/// `GET /v1/debug/slow`: the slow ring, slowest first, with per-stage
/// nanosecond breakdowns and the trace id each entry belongs to.
fn debug_slow<K: ParamCovariance>(shared: &Shared<K>) -> Response {
    let entries = shared.slow.snapshot();
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("slow");
    w.begin_array();
    for e in &entries {
        w.begin_object();
        w.field_str("trace", &e.trace.to_string());
        w.field_str("model", &e.model);
        w.field_uint("parse_ns", e.parse_ns);
        w.field_uint("queue_ns", e.queue_ns);
        w.field_uint("solve_ns", e.solve_ns);
        w.field_uint("write_ns", e.write_ns);
        w.field_uint("total_ns", e.total_ns);
        w.field_uint("seq", e.seq);
        w.end_object();
    }
    w.end_array();
    w.field_uint("recorded", shared.slow.recorded());
    w.end_object();
    Response::ok(w.finish())
}

/// The serve-layer stage spans of one answered predict, in nanoseconds.
fn stage_ns(served: &ServedPrediction) -> (u64, u64) {
    (
        (served.queue_seconds * 1e9) as u64,
        (served.solve_seconds * 1e9) as u64,
    )
}

/// Records one finished predict into the wire stage histograms and the
/// slow ring. `queue_ns`/`solve_ns` come from the serve layer's answer (0
/// when the request failed before reaching a solve).
#[allow(clippy::too_many_arguments)]
fn observe_predict<K: ParamCovariance>(
    shared: &Shared<K>,
    trace: TraceId,
    model: &str,
    parse_ns: u64,
    queue_ns: u64,
    solve_ns: u64,
    write_ns: u64,
    total_ns: u64,
) {
    shared.parse_hist.record_ns(parse_ns);
    shared.write_hist.record_ns(write_ns);
    shared.request_hist.record_ns(total_ns);
    shared.slow.record(SlowEntry {
        trace,
        model: model.to_string(),
        parse_ns,
        queue_ns,
        solve_ns,
        write_ns,
        total_ns,
        seq: 0,
    });
}

/// The media type of a `Content-Type`/`Accept` value with any parameters
/// stripped: `application/JSON; charset=utf-8` → `application/JSON`.
fn media_essence(value: &str) -> &str {
    value.split(';').next().unwrap_or("").trim()
}

/// The predict *request* codec from `Content-Type`. Absent (or empty)
/// means JSON — the wire default — and anything but the supported types
/// is a structured `415`. `application/x-www-form-urlencoded` is accepted
/// as JSON on purpose: it is what `curl -d '{...}'` stamps on a body by
/// default, and the documented walkthrough (and any PR 4-era script)
/// relies on that working.
fn request_codec(request: &Request) -> Result<Codec, Response> {
    match request.header("content-type").map(media_essence) {
        None => Ok(Codec::Json),
        Some(t)
            if t.is_empty()
                || t.eq_ignore_ascii_case("application/json")
                || t.eq_ignore_ascii_case("application/x-www-form-urlencoded") =>
        {
            Ok(Codec::Json)
        }
        Some(t) if t.eq_ignore_ascii_case(codec::FRAME_CONTENT_TYPE) => Ok(Codec::Binary),
        Some(t) => Err(Response::error(
            415,
            "unsupported_media_type",
            &format!(
                "unsupported Content-Type {t:?}; use application/json or {}",
                codec::FRAME_CONTENT_TYPE
            ),
        )),
    }
}

/// The predict *response* codec from `Accept`: absent, `*/*` or
/// `application/*` mirrors the request codec (symmetric round trips, and
/// curl's default `Accept: */*` keeps getting JSON for JSON); naming
/// exactly one supported type selects it; naming both mirrors the request;
/// naming neither is a structured `415`.
fn response_codec(request: &Request, request_codec: Codec) -> Result<Codec, Response> {
    let Some(accept) = request.header("accept") else {
        return Ok(request_codec);
    };
    let (mut json_ok, mut binary_ok, mut any_ok) = (false, false, false);
    for item in accept.split(',') {
        let t = media_essence(item);
        if t == "*/*" || t.eq_ignore_ascii_case("application/*") {
            any_ok = true;
        } else if t.eq_ignore_ascii_case("application/json") {
            json_ok = true;
        } else if t.eq_ignore_ascii_case(codec::FRAME_CONTENT_TYPE) {
            binary_ok = true;
        }
    }
    match (binary_ok, json_ok, any_ok) {
        (true, true, _) => Ok(request_codec),
        (true, false, _) => Ok(Codec::Binary),
        (false, true, _) => Ok(Codec::Json),
        (false, false, true) => Ok(request_codec),
        (false, false, false) => Err(Response::error(
            415,
            "unsupported_media_type",
            &format!(
                "no supported media type in Accept {accept:?}; this endpoint answers \
                 application/json or {}",
                codec::FRAME_CONTENT_TYPE
            ),
        )),
    }
}

/// Decodes a JSON predict body into `(targets, want_variance)`.
fn parse_json_predict(body: &[u8]) -> Result<(Vec<Location>, bool), Response> {
    let text = std::str::from_utf8(body)
        .map_err(|_| Response::error(400, "invalid_json", "request body is not valid UTF-8"))?;
    let doc =
        Json::parse(text).map_err(|err| Response::error(400, "invalid_json", &err.to_string()))?;
    let targets =
        parse_targets(&doc).map_err(|message| Response::error(400, "invalid_query", &message))?;
    let want_variance = match doc.get("variance") {
        None => false,
        Some(v) => v.as_bool().ok_or_else(|| {
            Response::error(400, "invalid_query", "\"variance\" must be a boolean")
        })?,
    };
    Ok((targets, want_variance))
}

/// Decodes a binary predict body into `(targets, want_variance)`. Only the
/// *structure* is validated here — empty target sets and non-finite
/// coordinates are rejected by the prediction server itself, so both
/// codecs share one `invalid_query` policy.
fn parse_frame_predict(body: &[u8]) -> Result<(Vec<Location>, bool), Response> {
    let frame = PredictRequestFrame::decode(body)
        .map_err(|err| Response::error(400, "invalid_frame", &err.to_string()))?;
    Ok((frame.to_locations(), frame.variance))
}

/// Content negotiation + body decode for the predict endpoint. The actual
/// prediction is the reactor's call to make (inline vs dispatched).
fn decode_predict(name: &str, request: &Request) -> Routed {
    let req_codec = match request_codec(request) {
        Ok(codec) => codec,
        Err(response) => return Routed::Response(response),
    };
    let resp_codec = match response_codec(request, req_codec) {
        Ok(codec) => codec,
        Err(response) => return Routed::Response(response),
    };
    let decoded = match req_codec {
        Codec::Json => parse_json_predict(request.body()),
        Codec::Binary => parse_frame_predict(request.body()),
    };
    match decoded {
        Ok((targets, want_variance)) => Routed::Predict {
            name: name.to_string(),
            targets,
            want_variance,
            resp_codec,
        },
        Err(response) => Routed::Response(response),
    }
}

/// `POST /v1/models/{name}/observe`: content negotiation, body decode, and
/// the synchronous ingest itself (see the routing comment for why this
/// runs on the reactor thread).
fn observe<K: ParamCovariance>(shared: &Shared<K>, name: &str, request: &Request) -> Response {
    let req_codec = match request_codec(request) {
        Ok(codec) => codec,
        Err(response) => return response,
    };
    let resp_codec = match response_codec(request, req_codec) {
        Ok(codec) => codec,
        Err(response) => return response,
    };
    let decoded = match req_codec {
        Codec::Json => parse_json_observe(request.body()),
        Codec::Binary => parse_frame_observe(request.body()),
    };
    let (points, values) = match decoded {
        Ok(decoded) => decoded,
        Err(response) => return response,
    };
    let started = Instant::now();
    match shared.handle.observe(name, &points, &values) {
        Ok(outcome) => {
            observe_response(name, resp_codec, &outcome, started.elapsed().as_secs_f64())
        }
        Err(err) => serve_error_response(&err),
    }
}

/// `POST /v1/models/{name}/evict`: drop the named model from the registry
/// (idempotent — evicting an absent model reports `"evicted": false`).
fn evict<K: ParamCovariance>(shared: &Shared<K>, name: &str) -> Response {
    let evicted = shared.registry.evict(name);
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("model", name);
    w.key("evicted");
    w.boolean(evicted);
    w.end_object();
    Response::ok(w.finish())
}

/// Decodes a JSON observe body: `{"points": [[x, y], ...], "values":
/// [...]}`. Length mismatches pass through — the serve layer rejects them
/// with the same `invalid_query` policy both codecs share.
fn parse_json_observe(body: &[u8]) -> Result<(Vec<Location>, Vec<f64>), Response> {
    let text = std::str::from_utf8(body)
        .map_err(|_| Response::error(400, "invalid_json", "request body is not valid UTF-8"))?;
    let doc =
        Json::parse(text).map_err(|err| Response::error(400, "invalid_json", &err.to_string()))?;
    let points = parse_pairs(&doc, "points")
        .map_err(|message| Response::error(400, "invalid_query", &message))?;
    let values = doc
        .get("values")
        .ok_or_else(|| Response::error(400, "invalid_query", "missing \"values\" field"))?
        .as_array()
        .ok_or_else(|| Response::error(400, "invalid_query", "\"values\" must be an array"))?
        .iter()
        .enumerate()
        .map(|(i, v)| {
            v.as_f64().ok_or_else(|| {
                Response::error(400, "invalid_query", &format!("value {i} must be a number"))
            })
        })
        .collect::<Result<Vec<f64>, Response>>()?;
    Ok((points, values))
}

/// Decodes a binary observe body (an observe-request frame).
fn parse_frame_observe(body: &[u8]) -> Result<(Vec<Location>, Vec<f64>), Response> {
    let frame = ObserveRequestFrame::decode(body)
        .map_err(|err| Response::error(400, "invalid_frame", &err.to_string()))?;
    Ok(frame.to_points())
}

/// Encodes one applied observe in the negotiated response codec.
fn observe_response(
    name: &str,
    resp_codec: Codec,
    outcome: &exa_geostat::ObserveOutcome,
    latency_seconds: f64,
) -> Response {
    match resp_codec {
        Codec::Binary => Response::ok_frame(
            ObserveResponseFrame {
                accepted: outcome.applied.min(u32::MAX as usize) as u32,
                model_points: outcome.model_points.min(u32::MAX as usize) as u32,
                updates_since_refactor: outcome.updates_since_refactor.min(u32::MAX as u64) as u32,
                used_incremental: outcome.used_incremental,
                refit_triggered: outcome.refit_triggered,
                latency_seconds,
            }
            .encode(),
        ),
        Codec::Json => {
            let mut w = JsonWriter::new();
            w.begin_object();
            w.field_str("model", name);
            w.field_uint("accepted", outcome.applied as u64);
            w.field_uint("model_points", outcome.model_points as u64);
            w.field_uint("updates_since_refactor", outcome.updates_since_refactor);
            w.key("used_incremental");
            w.boolean(outcome.used_incremental);
            w.key("refit_triggered");
            w.boolean(outcome.refit_triggered);
            w.field_num("latency_seconds", latency_seconds);
            w.end_object();
            Response::ok(w.finish())
        }
    }
}

/// Encodes one successful prediction in the negotiated response codec.
fn predict_response(name: &str, resp_codec: Codec, served: &ServedPrediction) -> Response {
    match resp_codec {
        Codec::Binary => Response::ok_frame(codec::encode_predict_response(
            &served.values,
            served.variances.as_deref(),
            served.coalesced_requests.min(u32::MAX as usize) as u32,
            served.batch_points.min(u32::MAX as usize) as u32,
            served.latency_seconds,
        )),
        Codec::Json => {
            let mut w = JsonWriter::new();
            w.begin_object();
            w.field_str("model", name);
            w.key("mean");
            w.begin_array();
            for v in &served.values {
                w.number(*v);
            }
            w.end_array();
            if let Some(variances) = &served.variances {
                w.key("variance");
                w.begin_array();
                for v in variances {
                    w.number(*v);
                }
                w.end_array();
            }
            w.field_uint("points", served.values.len() as u64);
            w.field_uint("coalesced_requests", served.coalesced_requests as u64);
            w.field_uint("batch_points", served.batch_points as u64);
            w.field_num("latency_seconds", served.latency_seconds);
            w.end_object();
            Response::ok(w.finish())
        }
    }
}

/// Decodes `"targets": [[x, y], ...]` with precise error messages.
fn parse_targets(doc: &Json) -> Result<Vec<Location>, String> {
    parse_pairs(doc, "targets")
}

/// Decodes a named field of `[[x, y], ...]` coordinate pairs.
fn parse_pairs(doc: &Json, field: &str) -> Result<Vec<Location>, String> {
    let pairs = doc
        .get(field)
        .ok_or_else(|| format!("missing {field:?} field"))?
        .as_array()
        .ok_or_else(|| format!("{field:?} must be an array of [x, y] pairs"))?;
    let noun = &field[..field.len() - 1]; // "targets" → "target"
    let mut out = Vec::with_capacity(pairs.len());
    for (i, pair) in pairs.iter().enumerate() {
        let pair = pair
            .as_array()
            .ok_or_else(|| format!("{noun} {i} must be an [x, y] pair"))?;
        if pair.len() != 2 {
            return Err(format!(
                "{noun} {i} must have exactly 2 coordinates, got {}",
                pair.len()
            ));
        }
        let x = pair[0]
            .as_f64()
            .ok_or_else(|| format!("{noun} {i} x-coordinate must be a number"))?;
        let y = pair[1]
            .as_f64()
            .ok_or_else(|| format!("{noun} {i} y-coordinate must be a number"))?;
        out.push(Location::new(x, y));
    }
    Ok(out)
}

/// Maps [`ServeError`] onto status + structured body: client mistakes are
/// `4xx`, capacity/lifecycle are `503` — never a dropped connection.
fn serve_error_response(err: &ServeError) -> Response {
    match err {
        ServeError::UnknownModel(name) => Response::error(
            404,
            "unknown_model",
            &format!("no model named {name:?} is registered"),
        ),
        ServeError::Rejected(message) => Response::error(400, "invalid_query", message),
        // A contained worker-side panic is a server fault: 5xx, never a
        // client error.
        ServeError::Panicked(message) => Response::error(
            500,
            "internal",
            &format!("prediction panicked on a serve worker: {message}"),
        ),
        ServeError::Overloaded { queue_depth } => {
            let mut resp = Response::error(
                503,
                "overloaded",
                &format!("server overloaded ({queue_depth} requests queued); retry later"),
            );
            resp.retry_after = Some(RETRY_AFTER_OVERLOADED);
            resp
        }
        ServeError::ShuttingDown => {
            let mut resp = Response::error(503, "shutting_down", "server is shutting down");
            resp.close = true;
            resp.retry_after = Some(RETRY_AFTER_SHUTDOWN);
            resp
        }
    }
}
