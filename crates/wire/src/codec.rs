//! The binary frame codec for the predict hot path.
//!
//! JSON is the wire default and stays fully supported, but profiling showed
//! text encode/decode is a measurable share of per-request cost at
//! single-target sizes: every `f64` is rendered to shortest-round-trip
//! decimal, re-parsed, and carried through an intermediate [`Json`] tree.
//! This module defines `application/x-exa-frame`, a little-endian framed
//! format that puts the raw `f64` bits on the wire — no text round trip at
//! all, so responses are **bit-identical** to in-process
//! [`predict_batch`] by construction.
//!
//! Negotiation happens on the existing `POST /v1/models/{name}/predict`
//! endpoint: a request body with `Content-Type: application/x-exa-frame`
//! is decoded as a [request frame](PredictRequestFrame), and an `Accept`
//! naming the same media type selects a [response
//! frame](PredictResponseFrame). Error responses are always the structured
//! JSON envelope, whatever codec the request used.
//!
//! # Frame layout
//!
//! All multi-byte fields are **little-endian**; coordinate and result
//! arrays are contiguous runs of raw `f64` bits (`f64::to_le_bytes`).
//!
//! Every frame shares an 8-byte preamble: magic, version, flags, a **frame
//! kind** byte at offset 6 (0 = predict, 1 = observe request, 2 = observe
//! response — predict frames predate the kind byte, which is why their kind
//! is the zero the field was reserved as), and a reserved zero byte.
//!
//! **Predict request** (kind `0`, `16 + 16·n` bytes):
//!
//! | offset | size | field |
//! |---|---|---|
//! | 0  | 4    | magic `"EXAF"` |
//! | 4  | 1    | version (`1`) |
//! | 5  | 1    | flags — bit 0: request conditional variances |
//! | 6  | 1    | frame kind (`0`) |
//! | 7  | 1    | reserved, must be zero |
//! | 8  | 4    | `n`: number of targets (`u32`) |
//! | 12 | 4    | reserved, must be zero |
//! | 16 | 8·n  | target x coordinates (`f64`) |
//! | 16 + 8·n | 8·n | target y coordinates (`f64`) |
//!
//! **Predict response** (kind `0`, `32 + 8·n` bytes, `+ 8·n` with
//! variances):
//!
//! | offset | size | field |
//! |---|---|---|
//! | 0  | 4    | magic `"EXAF"` |
//! | 4  | 1    | version (`1`) |
//! | 5  | 1    | flags — bit 0: variance array present |
//! | 6  | 1    | frame kind (`0`) |
//! | 7  | 1    | reserved, must be zero |
//! | 8  | 4    | `n`: number of answered points (`u32`) |
//! | 12 | 4    | `coalesced_requests` (`u32`) |
//! | 16 | 4    | `batch_points` (`u32`) |
//! | 20 | 4    | reserved, must be zero |
//! | 24 | 8    | `latency_seconds` (`f64`) |
//! | 32 | 8·n  | kriging means (`f64`) |
//! | 32 + 8·n | 8·n | conditional variances (`f64`, iff flag bit 0) |
//!
//! **Observe request** (kind `1`, `16 + 24·n` bytes) — the streaming-ingest
//! write path (`POST /v1/models/{name}/observe`):
//!
//! | offset | size | field |
//! |---|---|---|
//! | 0  | 8    | preamble (flags must be zero, kind `1`) |
//! | 8  | 4    | `n`: number of observations (`u32`) |
//! | 12 | 4    | reserved, must be zero |
//! | 16 | 8·n  | observation x coordinates (`f64`) |
//! | 16 + 8·n  | 8·n | observation y coordinates (`f64`) |
//! | 16 + 16·n | 8·n | observed values (`f64`) |
//!
//! **Observe response** (kind `2`, exactly `32` bytes):
//!
//! | offset | size | field |
//! |---|---|---|
//! | 0  | 8    | preamble (flags must be zero, kind `2`) |
//! | 8  | 4    | `accepted`: points absorbed (`u32`) |
//! | 12 | 4    | `model_points`: observations in the model after (`u32`) |
//! | 16 | 4    | `updates_since_refactor` (`u32`, saturating) |
//! | 20 | 4    | observe flags — bit 0: applied incrementally, bit 1: a background refit was triggered (`u32`) |
//! | 24 | 8    | `latency_seconds` (`f64`) |
//!
//! Decoding is bounds-checked and **zero-copy**: a decoded frame borrows
//! the payload byte ranges from the input buffer and reads individual
//! values on demand with `f64::from_le_bytes` — no intermediate tree, no
//! allocation until the caller asks for a `Vec`. Every structural
//! violation (bad magic, wrong version, non-zero reserved bytes, count not
//! matching the byte length, trailing bytes) is a [`FrameError`] carrying
//! the byte offset, mirroring [`JsonError`]'s contract.
//!
//! [`Json`]: crate::json::Json
//! [`JsonError`]: crate::json::JsonError
//! [`predict_batch`]: exa_geostat::FittedModel::predict_batch

use exa_covariance::Location;

/// The media type negotiating this codec.
pub const FRAME_CONTENT_TYPE: &str = "application/x-exa-frame";
/// The four magic bytes opening every frame.
pub const MAGIC: [u8; 4] = *b"EXAF";
/// The frame format version this build speaks.
pub const VERSION: u8 = 1;
/// Flag bit 0: variances requested (request) / present (response).
pub const FLAG_VARIANCE: u8 = 0b0000_0001;

/// Frame kind (preamble byte 6): a predict request or response.
pub const KIND_PREDICT: u8 = 0;
/// Frame kind: an observe (streaming-ingest) request.
pub const KIND_OBSERVE_REQUEST: u8 = 1;
/// Frame kind: an observe response.
pub const KIND_OBSERVE_RESPONSE: u8 = 2;

/// Observe-response flag bit 0: the batch was absorbed by an incremental
/// Cholesky update (as opposed to a synchronous refit fallback).
pub const OBSERVE_FLAG_INCREMENTAL: u32 = 0b0000_0001;
/// Observe-response flag bit 1: the update crossed the drift policy and a
/// background refactorization was scheduled.
pub const OBSERVE_FLAG_REFIT_TRIGGERED: u32 = 0b0000_0010;

const REQUEST_HEADER_BYTES: usize = 16;
const RESPONSE_HEADER_BYTES: usize = 32;
const OBSERVE_REQUEST_HEADER_BYTES: usize = 16;
const OBSERVE_RESPONSE_BYTES: usize = 32;

/// Which predict codec a request/response travels as.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Codec {
    /// `application/json` — the default, human-readable.
    #[default]
    Json,
    /// `application/x-exa-frame` — raw little-endian `f64` frames.
    Binary,
}

impl Codec {
    /// The media type this codec is negotiated with.
    pub fn content_type(self) -> &'static str {
        match self {
            Codec::Json => "application/json",
            Codec::Binary => FRAME_CONTENT_TYPE,
        }
    }
}

impl std::fmt::Display for Codec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Codec::Json => write!(f, "json"),
            Codec::Binary => write!(f, "binary"),
        }
    }
}

/// A frame decode failure: what went wrong and the byte offset it happened
/// at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrameError {
    pub offset: usize,
    pub message: String,
}

impl FrameError {
    fn new(offset: usize, message: impl Into<String>) -> Self {
        FrameError {
            offset,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid frame at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for FrameError {}

/// Reads the shared 8-byte preamble (magic, version, flags, frame kind,
/// reserved pad), requires the expected frame kind, and returns the flags.
fn check_preamble(bytes: &[u8], what: &str, kind: u8) -> Result<u8, FrameError> {
    if bytes.len() < 8 {
        return Err(FrameError::new(
            bytes.len(),
            format!("{what} frame truncated before the 8-byte preamble"),
        ));
    }
    if bytes[..4] != MAGIC {
        return Err(FrameError::new(0, "bad magic (expected \"EXAF\")"));
    }
    if bytes[4] != VERSION {
        return Err(FrameError::new(
            4,
            format!(
                "unsupported frame version {} (expected {VERSION})",
                bytes[4]
            ),
        ));
    }
    let flags = bytes[5];
    let allowed = if kind == KIND_PREDICT {
        FLAG_VARIANCE
    } else {
        0
    };
    if flags & !allowed != 0 {
        return Err(FrameError::new(
            5,
            format!("unknown flag bits {flags:#04x}"),
        ));
    }
    if bytes[6] != kind {
        return Err(FrameError::new(
            6,
            format!(
                "frame kind {} where a {what} (kind {kind}) was expected",
                bytes[6]
            ),
        ));
    }
    if bytes[7] != 0 {
        return Err(FrameError::new(7, "reserved preamble byte must be zero"));
    }
    Ok(flags)
}

fn read_u32(bytes: &[u8], offset: usize) -> u32 {
    u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes"))
}

fn read_f64(bytes: &[u8], offset: usize) -> f64 {
    f64::from_le_bytes(bytes[offset..offset + 8].try_into().expect("8 bytes"))
}

/// Iterates a contiguous little-endian `f64` run without copying it first.
fn f64_iter(bytes: &[u8]) -> impl ExactSizeIterator<Item = f64> + '_ {
    bytes
        .chunks_exact(8)
        .map(|chunk| f64::from_le_bytes(chunk.try_into().expect("8-byte chunk")))
}

/// A decoded predict request, borrowing its coordinate arrays from the
/// request body (see the [module docs](self) for the byte layout).
#[derive(Debug)]
pub struct PredictRequestFrame<'a> {
    /// Whether conditional variances were requested (flag bit 0).
    pub variance: bool,
    xs: &'a [u8],
    ys: &'a [u8],
}

impl<'a> PredictRequestFrame<'a> {
    /// Bounds-checked zero-copy decode of one request frame. The body must
    /// be exactly one frame: trailing bytes are an error (the HTTP layer
    /// already framed the body with `Content-Length`).
    pub fn decode(bytes: &'a [u8]) -> Result<Self, FrameError> {
        let flags = check_preamble(bytes, "predict-request", KIND_PREDICT)?;
        if bytes.len() < REQUEST_HEADER_BYTES {
            return Err(FrameError::new(
                bytes.len(),
                "predict-request frame truncated inside the 16-byte header",
            ));
        }
        let count = read_u32(bytes, 8) as usize;
        if read_u32(bytes, 12) != 0 {
            return Err(FrameError::new(12, "reserved header bytes must be zero"));
        }
        let expected = REQUEST_HEADER_BYTES
            .checked_add(count.checked_mul(16).ok_or_else(|| {
                FrameError::new(8, format!("target count {count} overflows the frame size"))
            })?)
            .ok_or_else(|| {
                FrameError::new(8, format!("target count {count} overflows the frame size"))
            })?;
        if bytes.len() != expected {
            return Err(FrameError::new(
                bytes.len().min(expected),
                format!(
                    "frame length {} does not match {expected} bytes implied by {count} targets",
                    bytes.len()
                ),
            ));
        }
        let xs = &bytes[REQUEST_HEADER_BYTES..REQUEST_HEADER_BYTES + 8 * count];
        let ys = &bytes[REQUEST_HEADER_BYTES + 8 * count..];
        Ok(PredictRequestFrame {
            variance: flags & FLAG_VARIANCE != 0,
            xs,
            ys,
        })
    }

    /// Number of targets carried.
    pub fn len(&self) -> usize {
        self.xs.len() / 8
    }

    /// True when the frame carries no targets (the server rejects such
    /// requests as `invalid_query`, exactly like the JSON path).
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Copies the coordinate arrays out into the [`Location`] list the
    /// prediction server consumes.
    pub fn to_locations(&self) -> Vec<Location> {
        f64_iter(self.xs)
            .zip(f64_iter(self.ys))
            .map(|(x, y)| Location::new(x, y))
            .collect()
    }
}

/// Encodes one predict request frame into `buf` (cleared first), reusing
/// its allocation across keep-alive requests.
pub fn encode_predict_request_into(buf: &mut Vec<u8>, targets: &[Location], variance: bool) {
    buf.clear();
    buf.reserve(REQUEST_HEADER_BYTES + 16 * targets.len());
    buf.extend_from_slice(&MAGIC);
    buf.push(VERSION);
    buf.push(if variance { FLAG_VARIANCE } else { 0 });
    buf.extend_from_slice(&[0, 0]);
    buf.extend_from_slice(&(targets.len() as u32).to_le_bytes());
    buf.extend_from_slice(&[0, 0, 0, 0]);
    for t in targets {
        buf.extend_from_slice(&t.x.to_le_bytes());
    }
    for t in targets {
        buf.extend_from_slice(&t.y.to_le_bytes());
    }
}

/// One-shot convenience over [`encode_predict_request_into`].
pub fn encode_predict_request(targets: &[Location], variance: bool) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_predict_request_into(&mut buf, targets, variance);
    buf
}

/// A decoded predict response, borrowing its result arrays from the
/// response body (see the [module docs](self) for the byte layout).
#[derive(Debug)]
pub struct PredictResponseFrame<'a> {
    /// Requests that shared the server-side coalesced batch (≥ 1).
    pub coalesced_requests: u32,
    /// Total prediction points in that batch.
    pub batch_points: u32,
    /// Server-side submit → response latency, seconds.
    pub latency_seconds: f64,
    mean: &'a [u8],
    variance: Option<&'a [u8]>,
}

impl<'a> PredictResponseFrame<'a> {
    /// Bounds-checked zero-copy decode of one response frame.
    pub fn decode(bytes: &'a [u8]) -> Result<Self, FrameError> {
        let flags = check_preamble(bytes, "predict-response", KIND_PREDICT)?;
        if bytes.len() < RESPONSE_HEADER_BYTES {
            return Err(FrameError::new(
                bytes.len(),
                "predict-response frame truncated inside the 32-byte header",
            ));
        }
        let count = read_u32(bytes, 8) as usize;
        let coalesced_requests = read_u32(bytes, 12);
        let batch_points = read_u32(bytes, 16);
        if read_u32(bytes, 20) != 0 {
            return Err(FrameError::new(20, "reserved header bytes must be zero"));
        }
        let latency_seconds = read_f64(bytes, 24);
        let with_variance = flags & FLAG_VARIANCE != 0;
        let arrays = if with_variance { 2 } else { 1 };
        let expected = RESPONSE_HEADER_BYTES
            .checked_add(count.checked_mul(8 * arrays).ok_or_else(|| {
                FrameError::new(8, format!("point count {count} overflows the frame size"))
            })?)
            .ok_or_else(|| {
                FrameError::new(8, format!("point count {count} overflows the frame size"))
            })?;
        if bytes.len() != expected {
            return Err(FrameError::new(
                bytes.len().min(expected),
                format!(
                    "frame length {} does not match {expected} bytes implied by {count} points",
                    bytes.len()
                ),
            ));
        }
        let mean = &bytes[RESPONSE_HEADER_BYTES..RESPONSE_HEADER_BYTES + 8 * count];
        let variance = with_variance.then(|| &bytes[RESPONSE_HEADER_BYTES + 8 * count..]);
        Ok(PredictResponseFrame {
            coalesced_requests,
            batch_points,
            latency_seconds,
            mean,
            variance,
        })
    }

    /// Number of answered points.
    pub fn len(&self) -> usize {
        self.mean.len() / 8
    }

    /// True when the frame answers zero points (never produced by the
    /// server — empty queries are rejected before prediction).
    pub fn is_empty(&self) -> bool {
        self.mean.is_empty()
    }

    /// The kriging means, copied out of the borrowed payload.
    pub fn mean_vec(&self) -> Vec<f64> {
        f64_iter(self.mean).collect()
    }

    /// The conditional variances when present.
    pub fn variance_vec(&self) -> Option<Vec<f64>> {
        self.variance.map(|bytes| f64_iter(bytes).collect())
    }
}

/// Encodes one predict response frame into `buf` (cleared first). `mean`
/// and `variance` go onto the wire as raw `f64` bits — the bit-identity
/// guarantee needs no further argument than this function.
pub fn encode_predict_response_into(
    buf: &mut Vec<u8>,
    mean: &[f64],
    variance: Option<&[f64]>,
    coalesced_requests: u32,
    batch_points: u32,
    latency_seconds: f64,
) {
    debug_assert!(variance.is_none_or(|v| v.len() == mean.len()));
    buf.clear();
    let arrays = 1 + usize::from(variance.is_some());
    buf.reserve(RESPONSE_HEADER_BYTES + 8 * arrays * mean.len());
    buf.extend_from_slice(&MAGIC);
    buf.push(VERSION);
    buf.push(if variance.is_some() { FLAG_VARIANCE } else { 0 });
    buf.extend_from_slice(&[0, 0]);
    buf.extend_from_slice(&(mean.len() as u32).to_le_bytes());
    buf.extend_from_slice(&coalesced_requests.to_le_bytes());
    buf.extend_from_slice(&batch_points.to_le_bytes());
    buf.extend_from_slice(&[0, 0, 0, 0]);
    buf.extend_from_slice(&latency_seconds.to_le_bytes());
    for v in mean {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    if let Some(variance) = variance {
        for v in variance {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// One-shot convenience over [`encode_predict_response_into`].
pub fn encode_predict_response(
    mean: &[f64],
    variance: Option<&[f64]>,
    coalesced_requests: u32,
    batch_points: u32,
    latency_seconds: f64,
) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_predict_response_into(
        &mut buf,
        mean,
        variance,
        coalesced_requests,
        batch_points,
        latency_seconds,
    );
    buf
}

/// A decoded observe (streaming-ingest) request, borrowing its coordinate
/// and value arrays from the request body (see the [module docs](self) for
/// the byte layout).
#[derive(Debug)]
pub struct ObserveRequestFrame<'a> {
    xs: &'a [u8],
    ys: &'a [u8],
    values: &'a [u8],
}

impl<'a> ObserveRequestFrame<'a> {
    /// Bounds-checked zero-copy decode of one observe request frame.
    pub fn decode(bytes: &'a [u8]) -> Result<Self, FrameError> {
        check_preamble(bytes, "observe-request", KIND_OBSERVE_REQUEST)?;
        if bytes.len() < OBSERVE_REQUEST_HEADER_BYTES {
            return Err(FrameError::new(
                bytes.len(),
                "observe-request frame truncated inside the 16-byte header",
            ));
        }
        let count = read_u32(bytes, 8) as usize;
        if read_u32(bytes, 12) != 0 {
            return Err(FrameError::new(12, "reserved header bytes must be zero"));
        }
        let expected = OBSERVE_REQUEST_HEADER_BYTES
            .checked_add(count.checked_mul(24).ok_or_else(|| {
                FrameError::new(
                    8,
                    format!("observation count {count} overflows the frame size"),
                )
            })?)
            .ok_or_else(|| {
                FrameError::new(
                    8,
                    format!("observation count {count} overflows the frame size"),
                )
            })?;
        if bytes.len() != expected {
            return Err(FrameError::new(
                bytes.len().min(expected),
                format!(
                    "frame length {} does not match {expected} bytes implied by {count} observations",
                    bytes.len()
                ),
            ));
        }
        let xs = &bytes[OBSERVE_REQUEST_HEADER_BYTES..OBSERVE_REQUEST_HEADER_BYTES + 8 * count];
        let ys = &bytes
            [OBSERVE_REQUEST_HEADER_BYTES + 8 * count..OBSERVE_REQUEST_HEADER_BYTES + 16 * count];
        let values = &bytes[OBSERVE_REQUEST_HEADER_BYTES + 16 * count..];
        Ok(ObserveRequestFrame { xs, ys, values })
    }

    /// Number of observations carried.
    pub fn len(&self) -> usize {
        self.xs.len() / 8
    }

    /// True when the frame carries no observations (rejected by the server
    /// as `invalid_query`, like the JSON path).
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Copies the payload out into the location/value lists the ingestion
    /// path consumes.
    pub fn to_points(&self) -> (Vec<Location>, Vec<f64>) {
        let locations = f64_iter(self.xs)
            .zip(f64_iter(self.ys))
            .map(|(x, y)| Location::new(x, y))
            .collect();
        (locations, f64_iter(self.values).collect())
    }
}

/// Encodes one observe request frame into `buf` (cleared first). Panics if
/// `points` and `values` disagree on length — the client validates before
/// it encodes.
pub fn encode_observe_request_into(buf: &mut Vec<u8>, points: &[Location], values: &[f64]) {
    assert_eq!(points.len(), values.len(), "one value per observed point");
    buf.clear();
    buf.reserve(OBSERVE_REQUEST_HEADER_BYTES + 24 * points.len());
    buf.extend_from_slice(&MAGIC);
    buf.push(VERSION);
    buf.push(0);
    buf.push(KIND_OBSERVE_REQUEST);
    buf.push(0);
    buf.extend_from_slice(&(points.len() as u32).to_le_bytes());
    buf.extend_from_slice(&[0, 0, 0, 0]);
    for p in points {
        buf.extend_from_slice(&p.x.to_le_bytes());
    }
    for p in points {
        buf.extend_from_slice(&p.y.to_le_bytes());
    }
    for v in values {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// One-shot convenience over [`encode_observe_request_into`].
pub fn encode_observe_request(points: &[Location], values: &[f64]) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_observe_request_into(&mut buf, points, values);
    buf
}

/// A decoded observe response — all scalars, nothing borrowed (see the
/// [module docs](self) for the byte layout).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ObserveResponseFrame {
    /// Observation points absorbed by this batch.
    pub accepted: u32,
    /// Observations in the model after the batch.
    pub model_points: u32,
    /// Incremental updates applied since the factor was last rebuilt
    /// (saturating; 0 right after a refit).
    pub updates_since_refactor: u32,
    /// Whether the batch was absorbed incrementally (vs. a sync refit).
    pub used_incremental: bool,
    /// Whether this batch crossed the drift policy and scheduled a
    /// background refactorization.
    pub refit_triggered: bool,
    /// Server-side ingest latency, seconds.
    pub latency_seconds: f64,
}

impl ObserveResponseFrame {
    /// Bounds-checked decode of one observe response frame.
    pub fn decode(bytes: &[u8]) -> Result<Self, FrameError> {
        check_preamble(bytes, "observe-response", KIND_OBSERVE_RESPONSE)?;
        if bytes.len() != OBSERVE_RESPONSE_BYTES {
            return Err(FrameError::new(
                bytes.len().min(OBSERVE_RESPONSE_BYTES),
                format!(
                    "observe-response frame is {} bytes (expected exactly {OBSERVE_RESPONSE_BYTES})",
                    bytes.len()
                ),
            ));
        }
        let observe_flags = read_u32(bytes, 20);
        if observe_flags & !(OBSERVE_FLAG_INCREMENTAL | OBSERVE_FLAG_REFIT_TRIGGERED) != 0 {
            return Err(FrameError::new(
                20,
                format!("unknown observe flag bits {observe_flags:#010x}"),
            ));
        }
        Ok(ObserveResponseFrame {
            accepted: read_u32(bytes, 8),
            model_points: read_u32(bytes, 12),
            updates_since_refactor: read_u32(bytes, 16),
            used_incremental: observe_flags & OBSERVE_FLAG_INCREMENTAL != 0,
            refit_triggered: observe_flags & OBSERVE_FLAG_REFIT_TRIGGERED != 0,
            latency_seconds: read_f64(bytes, 24),
        })
    }

    /// Encodes this response into `buf` (cleared first).
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.clear();
        buf.reserve(OBSERVE_RESPONSE_BYTES);
        buf.extend_from_slice(&MAGIC);
        buf.push(VERSION);
        buf.push(0);
        buf.push(KIND_OBSERVE_RESPONSE);
        buf.push(0);
        buf.extend_from_slice(&self.accepted.to_le_bytes());
        buf.extend_from_slice(&self.model_points.to_le_bytes());
        buf.extend_from_slice(&self.updates_since_refactor.to_le_bytes());
        let mut flags = 0u32;
        if self.used_incremental {
            flags |= OBSERVE_FLAG_INCREMENTAL;
        }
        if self.refit_triggered {
            flags |= OBSERVE_FLAG_REFIT_TRIGGERED;
        }
        buf.extend_from_slice(&flags.to_le_bytes());
        buf.extend_from_slice(&self.latency_seconds.to_le_bytes());
    }

    /// One-shot convenience over [`ObserveResponseFrame::encode_into`].
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode_into(&mut buf);
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_bit_for_bit() {
        let targets = [
            Location::new(0.25, 0.75),
            Location::new(-0.0, f64::MIN_POSITIVE),
            Location::new(1.7976931348623157e308, 5e-324),
        ];
        for variance in [false, true] {
            let bytes = encode_predict_request(&targets, variance);
            assert_eq!(bytes.len(), 16 + 16 * targets.len());
            let frame = PredictRequestFrame::decode(&bytes).unwrap();
            assert_eq!(frame.variance, variance);
            assert_eq!(frame.len(), targets.len());
            for (orig, got) in targets.iter().zip(frame.to_locations()) {
                assert_eq!(orig.x.to_bits(), got.x.to_bits());
                assert_eq!(orig.y.to_bits(), got.y.to_bits());
            }
        }
    }

    #[test]
    fn response_round_trips_bit_for_bit() {
        let mean = [0.1 + 0.2, -1.0 / 3.0, f64::MAX];
        let variance = [0.5, f64::MIN_POSITIVE, 0.0];
        let bytes = encode_predict_response(&mean, Some(&variance), 4, 12, 0.0021);
        let frame = PredictResponseFrame::decode(&bytes).unwrap();
        assert_eq!(frame.coalesced_requests, 4);
        assert_eq!(frame.batch_points, 12);
        assert_eq!(frame.latency_seconds, 0.0021);
        for (orig, got) in mean.iter().zip(frame.mean_vec()) {
            assert_eq!(orig.to_bits(), got.to_bits());
        }
        for (orig, got) in variance.iter().zip(frame.variance_vec().unwrap()) {
            assert_eq!(orig.to_bits(), got.to_bits());
        }
        let no_var = encode_predict_response(&mean, None, 1, 3, 0.0);
        let frame = PredictResponseFrame::decode(&no_var).unwrap();
        assert!(frame.variance_vec().is_none());
        assert_eq!(frame.len(), 3);
    }

    #[test]
    fn non_finite_payloads_survive_the_frame() {
        // The *codec* is bit-transparent even for NaN/∞ — rejecting
        // non-finite coordinates is the server's job, not the frame's.
        let weird = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY];
        let bytes = encode_predict_response(&weird, None, 1, 3, f64::NAN);
        let frame = PredictResponseFrame::decode(&bytes).unwrap();
        for (orig, got) in weird.iter().zip(frame.mean_vec()) {
            assert_eq!(orig.to_bits(), got.to_bits());
        }
    }

    #[test]
    fn malformed_frames_are_rejected_with_offsets() {
        let good = encode_predict_request(&[Location::new(0.5, 0.5)], false);

        // Truncations at every boundary.
        for cut in [0, 3, 7, 12, 15, good.len() - 1] {
            let err = PredictRequestFrame::decode(&good[..cut]).unwrap_err();
            assert!(err.offset <= cut, "cut at {cut}: {err}");
        }
        // Trailing bytes are an error, not silently ignored.
        let mut long = good.clone();
        long.push(0);
        assert!(PredictRequestFrame::decode(&long).is_err());

        // Bad magic / version / flags / reserved bytes.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert_eq!(PredictRequestFrame::decode(&bad).unwrap_err().offset, 0);
        let mut bad = good.clone();
        bad[4] = 9;
        assert_eq!(PredictRequestFrame::decode(&bad).unwrap_err().offset, 4);
        let mut bad = good.clone();
        bad[5] = 0x80;
        assert_eq!(PredictRequestFrame::decode(&bad).unwrap_err().offset, 5);
        let mut bad = good.clone();
        bad[6] = 1;
        assert_eq!(PredictRequestFrame::decode(&bad).unwrap_err().offset, 6);
        let mut bad = good.clone();
        bad[12] = 1;
        assert_eq!(PredictRequestFrame::decode(&bad).unwrap_err().offset, 12);

        // A count that lies about the payload size (and one that would
        // overflow the size arithmetic) must not panic or over-read.
        let mut lying = good.clone();
        lying[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(PredictRequestFrame::decode(&lying).is_err());
        let mut lying = good;
        lying[8..12].copy_from_slice(&2u32.to_le_bytes());
        assert!(PredictRequestFrame::decode(&lying).is_err());

        // Same for responses.
        let good = encode_predict_response(&[1.0], Some(&[2.0]), 1, 1, 0.1);
        for cut in [0, 7, 23, 31, good.len() - 1] {
            assert!(PredictResponseFrame::decode(&good[..cut]).is_err());
        }
        let mut bad = good.clone();
        bad[20] = 7;
        assert_eq!(PredictResponseFrame::decode(&bad).unwrap_err().offset, 20);
        // Claiming variances without carrying them shrinks no bounds check.
        let mut bad = good;
        bad[5] = 0; // drop the flag: length no longer matches
        assert!(PredictResponseFrame::decode(&bad).is_err());
    }

    #[test]
    fn empty_request_frames_decode_but_flag_empty() {
        let bytes = encode_predict_request(&[], true);
        assert_eq!(bytes.len(), 16);
        let frame = PredictRequestFrame::decode(&bytes).unwrap();
        assert!(frame.is_empty());
        assert!(frame.variance);
        assert!(frame.to_locations().is_empty());
    }

    #[test]
    fn observe_request_round_trips_bit_for_bit() {
        let points = [
            Location::new(0.125, -3.5),
            Location::new(f64::MIN_POSITIVE, 1.7976931348623157e308),
        ];
        let values = [0.1 + 0.2, -0.0];
        let bytes = encode_observe_request(&points, &values);
        assert_eq!(bytes.len(), 16 + 24 * points.len());
        assert_eq!(bytes[6], KIND_OBSERVE_REQUEST);
        let frame = ObserveRequestFrame::decode(&bytes).unwrap();
        assert_eq!(frame.len(), 2);
        assert!(!frame.is_empty());
        let (locs, vals) = frame.to_points();
        for (orig, got) in points.iter().zip(&locs) {
            assert_eq!(orig.x.to_bits(), got.x.to_bits());
            assert_eq!(orig.y.to_bits(), got.y.to_bits());
        }
        for (orig, got) in values.iter().zip(&vals) {
            assert_eq!(orig.to_bits(), got.to_bits());
        }
    }

    #[test]
    fn observe_response_round_trips_all_fields() {
        for (incremental, refit) in [(false, false), (true, false), (true, true)] {
            let orig = ObserveResponseFrame {
                accepted: 7,
                model_points: 4103,
                updates_since_refactor: 96,
                used_incremental: incremental,
                refit_triggered: refit,
                latency_seconds: 0.00375,
            };
            let bytes = orig.encode();
            assert_eq!(bytes.len(), 32);
            assert_eq!(bytes[6], KIND_OBSERVE_RESPONSE);
            assert_eq!(ObserveResponseFrame::decode(&bytes).unwrap(), orig);
        }
    }

    #[test]
    fn frame_kinds_do_not_cross_decode() {
        // An observe request is not a predict request, and vice versa —
        // the kind byte at offset 6 keeps the paths apart.
        let observe = encode_observe_request(&[Location::new(0.5, 0.5)], &[1.0]);
        assert_eq!(PredictRequestFrame::decode(&observe).unwrap_err().offset, 6);
        let predict = encode_predict_request(&[Location::new(0.5, 0.5)], false);
        assert_eq!(ObserveRequestFrame::decode(&predict).unwrap_err().offset, 6);
        let response = ObserveResponseFrame {
            accepted: 1,
            model_points: 2,
            updates_since_refactor: 1,
            used_incremental: true,
            refit_triggered: false,
            latency_seconds: 0.0,
        }
        .encode();
        assert_eq!(
            ObserveRequestFrame::decode(&response).unwrap_err().offset,
            6
        );
    }

    #[test]
    fn malformed_observe_frames_are_rejected_with_offsets() {
        let good = encode_observe_request(&[Location::new(0.25, 0.75)], &[0.5]);
        for cut in [0, 3, 7, 12, 15, good.len() - 1] {
            let err = ObserveRequestFrame::decode(&good[..cut]).unwrap_err();
            assert!(err.offset <= cut, "cut at {cut}: {err}");
        }
        let mut long = good.clone();
        long.push(0);
        assert!(ObserveRequestFrame::decode(&long).is_err());
        // Observe requests carry no flags at all.
        let mut bad = good.clone();
        bad[5] = FLAG_VARIANCE;
        assert_eq!(ObserveRequestFrame::decode(&bad).unwrap_err().offset, 5);
        let mut bad = good.clone();
        bad[7] = 1;
        assert_eq!(ObserveRequestFrame::decode(&bad).unwrap_err().offset, 7);
        let mut bad = good.clone();
        bad[12] = 1;
        assert_eq!(ObserveRequestFrame::decode(&bad).unwrap_err().offset, 12);
        let mut lying = good.clone();
        lying[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(ObserveRequestFrame::decode(&lying).is_err());
        let mut lying = good;
        lying[8..12].copy_from_slice(&3u32.to_le_bytes());
        assert!(ObserveRequestFrame::decode(&lying).is_err());

        let good = ObserveResponseFrame {
            accepted: 1,
            model_points: 2,
            updates_since_refactor: 1,
            used_incremental: true,
            refit_triggered: true,
            latency_seconds: 0.5,
        }
        .encode();
        assert!(ObserveResponseFrame::decode(&good[..31]).is_err());
        let mut long = good.clone();
        long.push(0);
        assert!(ObserveResponseFrame::decode(&long).is_err());
        let mut bad = good;
        bad[20] = 0xf0; // unknown observe flag bits
        assert_eq!(ObserveResponseFrame::decode(&bad).unwrap_err().offset, 20);
    }

    #[test]
    fn empty_observe_request_frames_decode_but_flag_empty() {
        let bytes = encode_observe_request(&[], &[]);
        assert_eq!(bytes.len(), 16);
        let frame = ObserveRequestFrame::decode(&bytes).unwrap();
        assert!(frame.is_empty());
        let (locs, vals) = frame.to_points();
        assert!(locs.is_empty() && vals.is_empty());
    }

    #[test]
    fn codec_labels_and_content_types() {
        assert_eq!(Codec::Json.content_type(), "application/json");
        assert_eq!(Codec::Binary.content_type(), FRAME_CONTENT_TYPE);
        assert_eq!(Codec::Json.to_string(), "json");
        assert_eq!(Codec::Binary.to_string(), "binary");
        assert_eq!(Codec::default(), Codec::Json);
    }
}
