//! **exa-wire** — a zero-dependency HTTP/1.1 wire front-end for the
//! `exa-serve` prediction server.
//!
//! PR 3 made the paper's fit-once/predict-many workflow a real serving
//! subsystem, but an in-process one: every client had to link the crate.
//! This crate puts that subsystem on a socket — the surface ExaGeoStatR
//! exposes to remote consumers — with **no external dependencies**: an
//! incremental HTTP/1.1 implementation over [`std::net`] ([`http`]), a
//! small JSON codec ([`json`]), a single-threaded readiness reactor over
//! a hand-rolled `epoll`/`poll` wrapper ([`reactor`]) with a connection
//! cap and graceful shutdown ([`WireServer`]), and a blocking keep-alive
//! client ([`WireClient`]).
//!
//! ```text
//!  clients (curl, WireClient, wire_loadgen)
//!      │ HTTP/1.1 keep-alive, JSON bodies
//!      ▼
//!  reactor thread — epoll/poll readiness loop (one thread, any #conns)
//!      │  accept ▸ non-blocking Connection state machines
//!      │          ReadingHead → ReadingBody → Dispatch → Writing ⟲
//!      │  parse → route → inline predict  (idle queue: zero handoffs)
//!      │               └─ submit + on_ready (under load: coalesce)
//!      ▼                       ▼
//!  WireStats        PredictionServer (micro-batching workers)
//!                        │
//!                   ModelRegistry (LRU, byte budget)
//! ```
//!
//! Connection count and thread count are decoupled: a thousand idle
//! keep-alive sockets cost the reactor a slab entry and a readiness
//! registration each, not a thread. Per-request panics are contained
//! (`catch_unwind`) and abuse is bounded exactly as before — header/body
//! caps, slow-loris and idle deadlines, drain-then-close shutdown.
//!
//! One wire request maps onto **one** [`ServerHandle`] submission, so all
//! of a request's targets share one coalesced `predict_batch` membership —
//! and concurrent wire requests against the same model coalesce with each
//! other exactly like in-process submitters do.
//!
//! # Endpoints
//!
//! | method & path | body | answer |
//! |---|---|---|
//! | `POST /v1/models/{name}/predict` | predict request | predict response |
//! | `POST /v1/models/{name}/observe` | observe request | observe response (streaming ingestion) |
//! | `POST /v1/models/{name}/evict` | — | `{"model": name, "evicted": bool}` (admin; next miss reloads) |
//! | `GET /v1/models` | — | residency + registry counters |
//! | `GET /v1/stats` | — | wire + serving statistics, histogram percentiles, `uptime_seconds`, `stats_epoch` |
//! | `GET /v1/debug/slow` | — | the slowest recent requests with per-stage breakdowns |
//! | `GET /metrics` | — | Prometheus text exposition of every counter and latency histogram |
//! | `GET /healthz` | — | `{"status":"ok","models":N}` |
//!
//! Every predict response carries an `x-exa-trace-id` header: the id the
//! caller sent on the request (the fleet router mints one per routed
//! predict), or one minted here. The same id tags the request's slow-ring
//! entry, so a slow response is joinable to its node-side stage breakdown
//! from the client's echo alone — see `exa-telemetry` for the id format,
//! the histogram design, and the slow-ring admission rule.
//!
//! # Wire schema
//!
//! Requests and responses are `Content-Length`-framed documents (chunked
//! transfer encoding is rejected with `501`). The predict endpoint speaks
//! two codecs, negotiated per request:
//!
//! * **JSON** (`application/json`) — the default when no `Content-Type` is
//!   sent; documented below.
//! * **Binary frames** (`application/x-exa-frame`) — raw little-endian
//!   `f64` arrays for the predict hot path; byte-level layout in the
//!   [`codec`] module docs.
//!
//! `Content-Type` picks the *request* codec; `Accept` picks the *response*
//! codec (absent or `*/*` mirrors the request, so plain `curl` keeps
//! getting JSON, and `curl -d`'s default
//! `application/x-www-form-urlencoded` label is accepted as JSON). Any
//! other media type on either header is a structured `415` (used for the
//! `Accept` side too, by design — one code for both halves of the
//! negotiation). Error responses are **always** the JSON envelope,
//! whichever codec was negotiated. [`WireClient::set_codec`] switches a
//! keep-alive connection between the two.
//!
//! **Predict request** — `targets` is an array of `[x, y]` coordinate
//! pairs; `variance` (optional, default `false`) additionally requests
//! conditional variances:
//!
//! ```json
//! {"targets": [[0.25, 0.75], [0.5, 0.5]], "variance": true}
//! ```
//!
//! **Predict response** — `mean[i]` (and `variance[i]` when requested)
//! answers `targets[i]`; the remaining fields surface the micro-batching
//! this request took part in:
//!
//! ```json
//! {"model": "soil", "mean": [1.25, -0.5], "variance": [0.8, 0.9],
//!  "points": 2, "coalesced_requests": 4, "batch_points": 12,
//!  "latency_seconds": 0.0021}
//! ```
//!
//! Numbers are encoded in Rust's shortest-round-trip form and decoded with
//! full precision, so means fetched over the wire are **bit-identical** to
//! in-process [`FittedModel::predict_batch`] results.
//!
//! **Observe request** (`POST /v1/models/{name}/observe`) — the streaming
//! write path: appends observations to a live model through an incremental
//! Cholesky update (see `exa-geostat`'s `LiveModel`). Both codecs are
//! supported with the same negotiation rules as predict; the binary layout
//! is in the [`codec`] module docs. Observes are applied synchronously on
//! the reactor thread, which serializes them per model:
//!
//! ```json
//! {"points": [[1.6, 0.3], [1.7, 0.4]], "values": [0.25, -0.5]}
//! ```
//!
//! **Observe response** — what the update did and how the factor is
//! drifting:
//!
//! ```json
//! {"model": "soil", "accepted": 2, "model_points": 4098,
//!  "updates_since_refactor": 3, "used_incremental": true,
//!  "refit_triggered": false, "latency_seconds": 0.0009}
//! ```
//!
//! **Models response** — residency plus the registry's lifetime counters
//! (`evictions` makes insert-over-budget LRU churn observable remotely):
//!
//! ```json
//! {"models": [{"name": "soil", "factor_bytes": 524288}],
//!  "resident_models": 1, "bytes_in_use": 524288, "byte_budget": null,
//!  "insertions": 3, "evictions": 2, "hits": 41, "misses": 0}
//! ```
//!
//! **Stats response** — `{"wire": {...}, "serve": {...}}` mirroring
//! [`WireStats`] and [`ServerStats`] field for field (plus the live
//! `queue_depth` and derived `mean_latency_seconds`).
//!
//! **Errors** — every failure is a status code plus a structured body,
//! never a silently dropped connection:
//!
//! ```json
//! {"error": {"code": "unknown_model", "message": "no model named \"x\" is registered"}}
//! ```
//!
//! | status | `code` | meaning |
//! |---|---|---|
//! | 400 | `invalid_json` / `invalid_frame` / `invalid_query` | undecodable body (per codec), malformed targets, rejected query |
//! | 400/413/431/501/505 | `bad_request` | HTTP-level violation (bad preamble, bad `Content-Length`, oversized body/headers, chunked encoding, bad version) |
//! | 404 | `unknown_model` / `unknown_path` | unregistered model, unrouted path |
//! | 405 | `method_not_allowed` | right path, wrong verb |
//! | 415 | `unsupported_media_type` | `Content-Type`/`Accept` naming neither JSON nor `application/x-exa-frame` |
//! | 503 | `overloaded` / `shutting_down` | connection/queue caps, graceful shutdown |
//! | 500 | `internal` | contained handler panic ([`WireStats::panics_contained`]) |
//!
//! `503` responses carry a `Retry-After` header (seconds): `1` for
//! transient overload, `5` when the server is shutting down and a client
//! should find another node. [`WireError::Api`] surfaces it as
//! `retry_after` so callers can back off without parsing headers.
//!
//! # Example
//!
//! ```
//! use exa_covariance::{Location, MaternKernel};
//! use exa_geostat::{Backend, GeoModel};
//! use exa_runtime::Runtime;
//! use exa_serve::ModelRegistry;
//! use exa_util::Rng;
//! use exa_wire::{WireClient, WireConfig, WireServer};
//! use std::sync::Arc;
//!
//! // Fit once (the only factorization anywhere in this example)...
//! let rt = Runtime::new(2);
//! let mut rng = Rng::seed_from_u64(7);
//! let locations = Arc::new(exa_geostat::synthetic_locations(8, &mut rng));
//! let truth = GeoModel::<MaternKernel>::builder()
//!     .locations(locations.clone())
//!     .tile_size(32)
//!     .build()
//!     .unwrap()
//!     .at_params(&[1.0, 0.1, 0.5], &rt)
//!     .unwrap();
//! let z = truth.simulate(&mut rng, &rt);
//! let fitted = GeoModel::<MaternKernel>::builder()
//!     .locations(locations)
//!     .data(z)
//!     .backend(Backend::tlr(1e-9))
//!     .tile_size(32)
//!     .build()
//!     .unwrap()
//!     .at_params(&[1.0, 0.1, 0.5], &rt)
//!     .unwrap();
//!
//! // ...register, serve on an ephemeral port, query over TCP.
//! let registry = Arc::new(ModelRegistry::new());
//! registry.insert("soil", Arc::new(fitted));
//! let server = WireServer::start(registry, WireConfig::default()).unwrap();
//! let mut client = WireClient::connect(server.local_addr()).unwrap();
//! client.health().unwrap();
//! let served = client
//!     .predict("soil", &[Location::new(0.4, 0.6)])
//!     .unwrap();
//! assert!(served.mean[0].is_finite());
//! let (wire, serve) = server.shutdown();
//! assert_eq!(wire.requests_ok, 2);
//! assert_eq!(serve.factorizations_during_serving, 0);
//! ```
//!
//! [`ServerHandle`]: exa_serve::ServerHandle
//! [`ServerStats`]: exa_serve::ServerStats
//! [`FittedModel::predict_batch`]: exa_geostat::FittedModel::predict_batch

pub mod client;
pub mod codec;
pub mod http;
pub mod json;
pub mod reactor;
pub mod server;

pub use client::{
    WireClient, WireError, WireModelInfo, WireModels, WireObserve, WirePrediction, WireResponse,
};
pub use codec::Codec;
pub use server::{WireConfig, WireServer, WireStats};
