//! A blocking keep-alive client for the wire protocol.
//!
//! [`WireClient`] owns one TCP connection and reuses it across requests
//! (HTTP/1.1 keep-alive) — the shape the load generator and the benches
//! drive concurrency with: one client per thread, many requests per
//! connection. Typed helpers cover every endpoint; the raw JSON of a
//! response is always reachable through [`WireClient::get_json`].
//!
//! Predict traffic speaks either codec: [`WireClient::set_codec`] switches
//! the connection between JSON bodies and `application/x-exa-frame` binary
//! frames (see [`crate::codec`]); both decode into the same
//! [`WirePrediction`], and error envelopes are JSON either way.

use crate::codec::{self, Codec, ObserveResponseFrame, PredictResponseFrame};
use crate::http::status_reason;
use crate::json::{Json, JsonWriter};
use exa_covariance::Location;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a client call failed.
#[derive(Clone, Debug)]
pub enum WireError {
    /// Socket-level failure (connect, read, write, unexpected close).
    Io(String),
    /// The server spoke something this client could not parse.
    Protocol(String),
    /// A structured error response from the server.
    Api {
        status: u16,
        code: String,
        message: String,
        /// Server-suggested back-off (the `Retry-After` header, seconds) on
        /// refusals such as 503 `overloaded`.
        retry_after: Option<u64>,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(msg) => write!(f, "socket error: {msg}"),
            WireError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            WireError::Api {
                status,
                code,
                message,
                ..
            } => {
                write!(f, "{status} {} [{code}]: {message}", status_reason(*status))
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(err: std::io::Error) -> Self {
        WireError::Io(err.to_string())
    }
}

/// One answered prediction request, decoded.
#[derive(Clone, Debug)]
pub struct WirePrediction {
    /// Kriging means, one per requested target.
    pub mean: Vec<f64>,
    /// Conditional variances when requested.
    pub variance: Option<Vec<f64>>,
    /// Requests that shared the server-side coalesced batch (≥ 1).
    pub coalesced_requests: u64,
    /// Total prediction points in that batch.
    pub batch_points: u64,
    /// Server-side submit → response latency, seconds.
    pub latency_seconds: f64,
}

/// One applied observe batch, decoded (either codec).
#[derive(Clone, Copy, Debug)]
pub struct WireObserve {
    /// Observation points absorbed by this batch.
    pub accepted: u64,
    /// Observations in the model after the batch.
    pub model_points: u64,
    /// Incremental updates applied since the factor was last rebuilt.
    pub updates_since_refactor: u64,
    /// Whether the batch was absorbed incrementally (vs. a sync refit).
    pub used_incremental: bool,
    /// Whether this batch crossed the drift policy and scheduled a
    /// background refactorization.
    pub refit_triggered: bool,
    /// Server-side ingest latency, seconds.
    pub latency_seconds: f64,
}

/// One resident model from `GET /v1/models`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireModelInfo {
    pub name: String,
    pub factor_bytes: u64,
}

/// The decoded `GET /v1/models` payload: residency plus the registry's
/// lifetime counters (insertions/evictions make LRU churn observable over
/// the wire).
#[derive(Clone, Debug)]
pub struct WireModels {
    pub models: Vec<WireModelInfo>,
    pub bytes_in_use: u64,
    pub byte_budget: Option<u64>,
    pub insertions: u64,
    pub evictions: u64,
    pub hits: u64,
    pub misses: u64,
}

/// A blocking keep-alive connection to a [`WireServer`](crate::WireServer).
pub struct WireClient {
    stream: TcpStream,
    /// Peer address the stream was dialed to — kept so a stale keep-alive
    /// connection can be transparently redialed.
    peer: SocketAddr,
    /// Dial timeout used at connect time, reused for redials.
    dial_timeout: Option<Duration>,
    /// Whether at least one complete response has been read on the current
    /// stream. Only a *proven* connection is redialed on failure: a dial
    /// that never worked is a real error, not staleness.
    reused: bool,
    /// `ErrorKind` of the most recent socket failure within one attempt —
    /// lets the retry logic tell connection death (EOF/EPIPE/reset) from
    /// timeouts, which must not be retried (the request may be executing).
    last_io_kind: Option<ErrorKind>,
    /// Transparent redials of a stale keep-alive connection.
    reconnects: u64,
    /// Bytes read but not yet consumed (the tail of a previous fill).
    buf: Vec<u8>,
    pos: usize,
    /// Predict codec for this connection (JSON unless switched).
    codec: Codec,
    /// Reusable request-frame scratch for the binary predict path.
    frame_buf: Vec<u8>,
    /// Cached request head for the binary predict path (the head is fully
    /// determined by model name and frame size, which a closed-loop caller
    /// repeats request after request).
    head_cache: String,
    /// `(model, frame_len)` the cached head was built for.
    head_key: (String, usize),
}

impl WireClient {
    /// Connects; requests issued through this client share the one
    /// connection.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<WireClient, WireError> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream, None)
    }

    /// Connects with a dial timeout — a connection pool fronting possibly
    /// dead nodes wants a bounded wait, not the OS connect timeout. The
    /// timeout also governs any transparent redial of this connection.
    pub fn connect_timeout(addr: SocketAddr, timeout: Duration) -> Result<WireClient, WireError> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        Self::from_stream(stream, Some(timeout))
    }

    fn from_stream(
        stream: TcpStream,
        dial_timeout: Option<Duration>,
    ) -> Result<WireClient, WireError> {
        let peer = stream.peer_addr()?;
        Self::prepare(&stream)?;
        Ok(WireClient {
            stream,
            peer,
            dial_timeout,
            reused: false,
            last_io_kind: None,
            reconnects: 0,
            buf: Vec::with_capacity(4096),
            pos: 0,
            codec: Codec::Json,
            frame_buf: Vec::new(),
            head_cache: String::new(),
            head_key: (String::new(), usize::MAX),
        })
    }

    fn prepare(stream: &TcpStream) -> Result<(), WireError> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        Ok(())
    }

    /// How many times a stale keep-alive connection was transparently
    /// redialed (see [`WireClient::request_raw`]).
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// The predict codec this connection currently speaks.
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// Switches predict traffic between JSON and the binary frame codec —
    /// takes effect on the next request, on the same keep-alive connection.
    pub fn set_codec(&mut self, codec: Codec) {
        self.codec = codec;
    }

    /// `POST /v1/models/{name}/predict` for kriging means.
    pub fn predict(
        &mut self,
        model: &str,
        targets: &[Location],
    ) -> Result<WirePrediction, WireError> {
        self.predict_inner(model, targets, false)
    }

    /// `POST /v1/models/{name}/predict` with conditional variances.
    pub fn predict_with_variance(
        &mut self,
        model: &str,
        targets: &[Location],
    ) -> Result<WirePrediction, WireError> {
        self.predict_inner(model, targets, true)
    }

    /// `POST /v1/models/{name}/observe` — streams a batch of observations
    /// into the model over whichever codec the connection speaks.
    pub fn observe(
        &mut self,
        model: &str,
        points: &[Location],
        values: &[f64],
    ) -> Result<WireObserve, WireError> {
        match self.codec {
            Codec::Json => self.observe_json(model, points, values),
            Codec::Binary => self.observe_frame(model, points, values),
        }
    }

    /// `POST /v1/models/{name}/evict` — drops the model from the node's
    /// registry so the next miss reloads it. Returns whether it was
    /// resident.
    pub fn evict(&mut self, model: &str) -> Result<bool, WireError> {
        let path = format!("/v1/models/{model}/evict");
        let (status, retry_after, doc) = self.roundtrip("POST", &path, Some(b"{}"))?;
        let doc = expect_ok(status, retry_after, doc)?;
        doc.get("evicted")
            .and_then(Json::as_bool)
            .ok_or_else(|| protocol("evict response missing \"evicted\""))
    }

    fn observe_json(
        &mut self,
        model: &str,
        points: &[Location],
        values: &[f64],
    ) -> Result<WireObserve, WireError> {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("points");
        w.begin_array();
        for p in points {
            w.begin_array();
            w.number(p.x);
            w.number(p.y);
            w.end_array();
        }
        w.end_array();
        w.key("values");
        w.begin_array();
        for v in values {
            w.number(*v);
        }
        w.end_array();
        w.end_object();
        let body = w.finish();
        let path = format!("/v1/models/{model}/observe");
        let (status, retry_after, doc) = self.roundtrip("POST", &path, Some(body.as_bytes()))?;
        let doc = expect_ok(status, retry_after, doc)?;
        Ok(WireObserve {
            accepted: field_u64(&doc, "accepted")?,
            model_points: field_u64(&doc, "model_points")?,
            updates_since_refactor: field_u64(&doc, "updates_since_refactor")?,
            used_incremental: doc
                .get("used_incremental")
                .and_then(Json::as_bool)
                .ok_or_else(|| protocol("observe response missing \"used_incremental\""))?,
            refit_triggered: doc
                .get("refit_triggered")
                .and_then(Json::as_bool)
                .ok_or_else(|| protocol("observe response missing \"refit_triggered\""))?,
            latency_seconds: doc
                .get("latency_seconds")
                .and_then(Json::as_f64)
                .ok_or_else(|| protocol("observe response missing \"latency_seconds\""))?,
        })
    }

    fn observe_frame(
        &mut self,
        model: &str,
        points: &[Location],
        values: &[f64],
    ) -> Result<WireObserve, WireError> {
        let frame = codec::encode_observe_request(points, values);
        let path = format!("/v1/models/{model}/observe");
        let response = self.request_raw(
            "POST",
            &path,
            codec::FRAME_CONTENT_TYPE,
            codec::FRAME_CONTENT_TYPE,
            &frame,
        )?;
        if !(200..300).contains(&response.status) {
            return Err(api_error(&response));
        }
        if !response
            .content_type
            .eq_ignore_ascii_case(codec::FRAME_CONTENT_TYPE)
        {
            return Err(protocol(&format!(
                "negotiated a binary observe response but got Content-Type {:?}",
                response.content_type
            )));
        }
        let frame = ObserveResponseFrame::decode(&response.body)
            .map_err(|e| protocol(&format!("undecodable observe response frame: {e}")))?;
        Ok(WireObserve {
            accepted: u64::from(frame.accepted),
            model_points: u64::from(frame.model_points),
            updates_since_refactor: u64::from(frame.updates_since_refactor),
            used_incremental: frame.used_incremental,
            refit_triggered: frame.refit_triggered,
            latency_seconds: frame.latency_seconds,
        })
    }

    /// `GET /v1/models`, decoded.
    pub fn models(&mut self) -> Result<WireModels, WireError> {
        let doc = self.get_json("/v1/models")?;
        let entries = doc
            .get("models")
            .and_then(Json::as_array)
            .ok_or_else(|| protocol("models response missing \"models\" array"))?;
        let mut models = Vec::with_capacity(entries.len());
        for entry in entries {
            models.push(WireModelInfo {
                name: entry
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| protocol("model entry missing \"name\""))?
                    .to_string(),
                factor_bytes: entry
                    .get("factor_bytes")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| protocol("model entry missing \"factor_bytes\""))?,
            });
        }
        let byte_budget = match doc.get("byte_budget") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or_else(|| protocol("\"byte_budget\" must be an integer or null"))?,
            ),
        };
        Ok(WireModels {
            models,
            bytes_in_use: field_u64(&doc, "bytes_in_use")?,
            byte_budget,
            insertions: field_u64(&doc, "insertions")?,
            evictions: field_u64(&doc, "evictions")?,
            hits: field_u64(&doc, "hits")?,
            misses: field_u64(&doc, "misses")?,
        })
    }

    /// `GET /v1/stats` as raw JSON (`{"wire": {...}, "serve": {...}}`); the
    /// counter set grows over time, so the client stays schema-agnostic.
    pub fn stats(&mut self) -> Result<Json, WireError> {
        self.get_json("/v1/stats")
    }

    /// `GET /healthz`; `Ok` exactly when the server answers healthy.
    pub fn health(&mut self) -> Result<(), WireError> {
        let doc = self.get_json("/healthz")?;
        match doc.get("status").and_then(Json::as_str) {
            Some("ok") => Ok(()),
            other => Err(protocol(&format!("unexpected health status {other:?}"))),
        }
    }

    /// `GET` any endpoint, returning the decoded JSON body of a `200`.
    pub fn get_json(&mut self, path: &str) -> Result<Json, WireError> {
        let (status, retry_after, doc) = self.roundtrip("GET", path, None)?;
        expect_ok(status, retry_after, doc)
    }

    fn predict_inner(
        &mut self,
        model: &str,
        targets: &[Location],
        variance: bool,
    ) -> Result<WirePrediction, WireError> {
        match self.codec {
            Codec::Json => self.predict_json(model, targets, variance),
            Codec::Binary => self.predict_frame(model, targets, variance),
        }
    }

    /// Binary predict round trip: one `x-exa-frame` request, one
    /// `x-exa-frame` response, raw `f64` bits both ways. Error responses
    /// stay JSON envelopes and decode exactly like the JSON path's.
    fn predict_frame(
        &mut self,
        model: &str,
        targets: &[Location],
        variance: bool,
    ) -> Result<WirePrediction, WireError> {
        let mut frame = std::mem::take(&mut self.frame_buf);
        codec::encode_predict_request_into(&mut frame, targets, variance);
        if self.head_key.0 != model || self.head_key.1 != frame.len() {
            self.head_cache = format!(
                "POST /v1/models/{model}/predict HTTP/1.1\r\nHost: exa-wire\r\nContent-Type: {ct}\r\nAccept: {ct}\r\nContent-Length: {}\r\n\r\n",
                frame.len(),
                ct = codec::FRAME_CONTENT_TYPE,
            );
            self.head_key = (model.to_string(), frame.len());
        }
        let head = std::mem::take(&mut self.head_cache);
        let result = self.send_then_read(head.as_bytes(), &frame);
        self.head_cache = head;
        self.frame_buf = frame;
        let response = result?;
        if !(200..300).contains(&response.status) {
            return Err(api_error(&response));
        }
        if !response
            .content_type
            .eq_ignore_ascii_case(codec::FRAME_CONTENT_TYPE)
        {
            return Err(protocol(&format!(
                "negotiated a binary response but got Content-Type {:?}",
                response.content_type
            )));
        }
        let frame = PredictResponseFrame::decode(&response.body)
            .map_err(|e| protocol(&format!("undecodable response frame: {e}")))?;
        Ok(WirePrediction {
            mean: frame.mean_vec(),
            variance: frame.variance_vec(),
            coalesced_requests: u64::from(frame.coalesced_requests),
            batch_points: u64::from(frame.batch_points),
            latency_seconds: frame.latency_seconds,
        })
    }

    fn predict_json(
        &mut self,
        model: &str,
        targets: &[Location],
        variance: bool,
    ) -> Result<WirePrediction, WireError> {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("targets");
        w.begin_array();
        for t in targets {
            w.begin_array();
            w.number(t.x);
            w.number(t.y);
            w.end_array();
        }
        w.end_array();
        if variance {
            w.key("variance");
            w.boolean(true);
        }
        w.end_object();
        let body = w.finish();
        let path = format!("/v1/models/{model}/predict");
        let (status, retry_after, doc) = self.roundtrip("POST", &path, Some(body.as_bytes()))?;
        let doc = expect_ok(status, retry_after, doc)?;
        let mean = doc
            .get("mean")
            .and_then(Json::as_array)
            .ok_or_else(|| protocol("predict response missing \"mean\" array"))?
            .iter()
            .map(|v| v.as_f64().ok_or_else(|| protocol("non-numeric mean")))
            .collect::<Result<Vec<f64>, WireError>>()?;
        let variance = match doc.get("variance") {
            None => None,
            Some(v) => Some(
                v.as_array()
                    .ok_or_else(|| protocol("\"variance\" must be an array"))?
                    .iter()
                    .map(|v| v.as_f64().ok_or_else(|| protocol("non-numeric variance")))
                    .collect::<Result<Vec<f64>, WireError>>()?,
            ),
        };
        Ok(WirePrediction {
            mean,
            variance,
            coalesced_requests: field_u64(&doc, "coalesced_requests")?,
            batch_points: field_u64(&doc, "batch_points")?,
            latency_seconds: doc
                .get("latency_seconds")
                .and_then(Json::as_f64)
                .ok_or_else(|| protocol("predict response missing \"latency_seconds\""))?,
        })
    }

    /// Sends one JSON request and decodes the JSON response off the shared
    /// connection.
    fn roundtrip(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> Result<(u16, Option<u64>, Json), WireError> {
        let response = self.request_raw(
            method,
            path,
            "application/json",
            "application/json",
            body.unwrap_or(b""),
        )?;
        let text =
            std::str::from_utf8(&response.body).map_err(|_| protocol("response is not UTF-8"))?;
        let doc =
            Json::parse(text).map_err(|e| protocol(&format!("undecodable response body: {e}")))?;
        Ok((response.status, response.retry_after, doc))
    }

    /// Sends one request and reads one response off the shared connection,
    /// codec-agnostic: the body goes out and comes back verbatim, so a
    /// proxy can forward either predict codec without re-encoding it.
    ///
    /// A keep-alive connection the server closed between requests
    /// (EOF/EPIPE/reset before any response byte) is redialed once,
    /// transparently; [`WireClient::reconnects`] counts those. Failures
    /// after response bytes arrived — and timeouts — are never retried,
    /// because the request may have executed.
    pub fn request_raw(
        &mut self,
        method: &str,
        path: &str,
        content_type: &str,
        accept: &str,
        body: &[u8],
    ) -> Result<WireResponse, WireError> {
        self.request_raw_with_headers(method, path, content_type, accept, body, &[])
    }

    /// [`WireClient::request_raw`] with extra request headers — how the
    /// fleet router stamps `x-exa-trace-id` onto relayed predicts. Header
    /// values must be CR/LF-free.
    pub fn request_raw_with_headers(
        &mut self,
        method: &str,
        path: &str,
        content_type: &str,
        accept: &str,
        body: &[u8],
        extra_headers: &[(&str, &str)],
    ) -> Result<WireResponse, WireError> {
        let mut extra = String::new();
        for (name, value) in extra_headers {
            extra.push_str(name);
            extra.push_str(": ");
            extra.push_str(value);
            extra.push_str("\r\n");
        }
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: exa-wire\r\nContent-Type: {content_type}\r\nAccept: {accept}\r\n{extra}Content-Length: {}\r\n\r\n",
            body.len(),
        );
        self.send_then_read(head.as_bytes(), body)
    }

    /// One framed write (head + body in a single `write_all`) followed by
    /// one response read, with a single transparent redial when a
    /// previously-working keep-alive connection turns out to be dead.
    fn send_then_read(&mut self, head: &[u8], body: &[u8]) -> Result<WireResponse, WireError> {
        let mut message = Vec::with_capacity(head.len() + body.len());
        message.extend_from_slice(head);
        message.extend_from_slice(body);
        match self.attempt(&message) {
            Err(_) if self.stale_death() => {
                self.redial()?;
                self.attempt(&message)
            }
            other => other,
        }
    }

    /// One write + read attempt on the current stream.
    fn attempt(&mut self, message: &[u8]) -> Result<WireResponse, WireError> {
        self.last_io_kind = None;
        self.stream.write_all(message).map_err(|e| {
            self.last_io_kind = Some(e.kind());
            WireError::from(e)
        })?;
        let response = self.read_response()?;
        self.reused = true;
        Ok(response)
    }

    /// Whether the last attempt's failure is safely retryable: the
    /// connection had served a response before (so the server dropping it
    /// between requests is ordinary keep-alive expiry), it died with a
    /// close/reset rather than a timeout, and not a single byte of the
    /// response arrived (so the server cannot have started answering).
    fn stale_death(&self) -> bool {
        self.reused
            && self.buf.is_empty()
            && matches!(
                self.last_io_kind,
                Some(
                    ErrorKind::UnexpectedEof
                        | ErrorKind::BrokenPipe
                        | ErrorKind::ConnectionReset
                        | ErrorKind::ConnectionAborted
                        | ErrorKind::NotConnected
                )
            )
    }

    /// Replaces the dead stream with a fresh dial to the same peer.
    fn redial(&mut self) -> Result<(), WireError> {
        let stream = match self.dial_timeout {
            Some(timeout) => TcpStream::connect_timeout(&self.peer, timeout)?,
            None => TcpStream::connect(self.peer)?,
        };
        Self::prepare(&stream)?;
        self.stream = stream;
        self.reused = false;
        self.buf.clear();
        self.pos = 0;
        self.reconnects += 1;
        Ok(())
    }

    fn read_response(&mut self) -> Result<WireResponse, WireError> {
        // Status line + headers, terminated by a blank line.
        let status = self.with_line(|line| {
            let mut parts = line.split_ascii_whitespace();
            let (Some(version), Some(code)) = (parts.next(), parts.next()) else {
                return Err(protocol(&format!("bad status line {line:?}")));
            };
            if !version.starts_with("HTTP/1.") {
                return Err(protocol(&format!("bad HTTP version {version:?}")));
            }
            code.parse::<u16>()
                .map_err(|_| protocol(&format!("bad status code {code:?}")))
        })?;
        enum Header {
            End,
            Length(usize),
            Type(String),
            Retry(u64),
            Trace(String),
            Other,
        }
        let mut content_length: Option<usize> = None;
        let mut content_type = String::new();
        let mut retry_after: Option<u64> = None;
        let mut trace: Option<String> = None;
        loop {
            let header = self.with_line(|line| {
                if line.is_empty() {
                    return Ok(Header::End);
                }
                if let Some((name, value)) = line.split_once(':') {
                    if name.eq_ignore_ascii_case("content-length") {
                        return value
                            .trim()
                            .parse()
                            .map(Header::Length)
                            .map_err(|_| protocol("bad Content-Length"));
                    }
                    if name.eq_ignore_ascii_case("content-type") {
                        return Ok(Header::Type(value.trim().to_string()));
                    }
                    if name.eq_ignore_ascii_case("retry-after") {
                        // Seconds form only; a date form is ignored.
                        if let Ok(seconds) = value.trim().parse() {
                            return Ok(Header::Retry(seconds));
                        }
                    }
                    if name.eq_ignore_ascii_case(exa_telemetry::TRACE_HEADER) {
                        return Ok(Header::Trace(value.trim().to_string()));
                    }
                }
                Ok(Header::Other)
            })?;
            match header {
                Header::End => break,
                Header::Length(length) => content_length = Some(length),
                Header::Type(value) => content_type = value,
                Header::Retry(seconds) => retry_after = Some(seconds),
                Header::Trace(value) => trace = Some(value),
                Header::Other => {}
            }
        }
        let length = content_length.ok_or_else(|| protocol("response missing Content-Length"))?;
        let body = self.read_exact_bytes(length)?;
        Ok(WireResponse {
            status,
            content_type,
            body,
            retry_after,
            trace,
        })
    }

    /// Reads one CRLF/LF-terminated preamble line in place and hands it to
    /// `take` — no per-line `String` on the hot path.
    fn with_line<T>(
        &mut self,
        take: impl FnOnce(&str) -> Result<T, WireError>,
    ) -> Result<T, WireError> {
        loop {
            if let Some(nl) = self.buf[self.pos..].iter().position(|&b| b == b'\n') {
                let raw = &self.buf[self.pos..self.pos + nl];
                let line = std::str::from_utf8(raw)
                    .map_err(|_| protocol("response preamble is not UTF-8"))?
                    .trim_end_matches('\r');
                let value = take(line)?;
                self.pos += nl + 1;
                return Ok(value);
            }
            self.fill()?;
        }
    }

    fn read_exact_bytes(&mut self, length: usize) -> Result<Vec<u8>, WireError> {
        while self.buf.len() - self.pos < length {
            self.fill()?;
        }
        let body = self.buf[self.pos..self.pos + length].to_vec();
        self.pos += length;
        // Keep the scratch buffer bounded across many keep-alive requests.
        self.buf.drain(..self.pos);
        self.pos = 0;
        Ok(body)
    }

    fn fill(&mut self) -> Result<(), WireError> {
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(0) => {
                self.last_io_kind = Some(ErrorKind::UnexpectedEof);
                Err(WireError::Io("server closed the connection".into()))
            }
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(())
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => Ok(()),
            Err(e) => {
                self.last_io_kind = Some(e.kind());
                Err(e.into())
            }
        }
    }
}

/// One undecoded response off the wire — what [`WireClient::request_raw`]
/// returns: status, `Content-Type` and the body bytes exactly as sent, so a
/// router can relay them without touching the codec.
#[derive(Clone, Debug)]
pub struct WireResponse {
    pub status: u16,
    /// `Content-Type` value, parameters included, possibly empty.
    pub content_type: String,
    pub body: Vec<u8>,
    /// `Retry-After` header (seconds form) when the server sent one.
    pub retry_after: Option<u64>,
    /// `x-exa-trace-id` header when the server echoed one — the request's
    /// cross-node trace id, as served.
    pub trace: Option<String>,
}

fn protocol(message: &str) -> WireError {
    WireError::Protocol(message.to_string())
}

/// Decodes the JSON error envelope of a non-2xx response (error bodies are
/// JSON under either predict codec).
fn api_error(response: &WireResponse) -> WireError {
    let doc = std::str::from_utf8(&response.body)
        .ok()
        .and_then(|text| Json::parse(text).ok())
        .unwrap_or(Json::Null);
    match expect_ok(response.status, response.retry_after, doc) {
        Err(err) => err,
        Ok(_) => protocol("api_error called on a success status"),
    }
}

fn field_u64(doc: &Json, key: &str) -> Result<u64, WireError> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| protocol(&format!("response missing numeric {key:?}")))
}

/// `200` passes the document through; anything else becomes a structured
/// [`WireError::Api`] (decoding the server's error envelope when present).
fn expect_ok(status: u16, retry_after: Option<u64>, doc: Json) -> Result<Json, WireError> {
    if (200..300).contains(&status) {
        return Ok(doc);
    }
    let (code, message) = match doc.get("error") {
        Some(err) => (
            err.get("code")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string(),
            err.get("message")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
        ),
        None => ("unknown".to_string(), String::new()),
    };
    Err(WireError::Api {
        status,
        code,
        message,
        retry_after,
    })
}
