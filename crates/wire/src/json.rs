//! A small JSON codec: a recursive-descent parser and a streaming encoder.
//!
//! No serde in an offline build environment, and the wire schema is small
//! (see the [crate docs](crate)), so this module implements exactly what
//! the front-end needs:
//!
//! * [`Json::parse`] — strict RFC 8259 parsing into a [`Json`] tree, with a
//!   recursion-depth cap and byte offsets in every error;
//! * [`JsonWriter`] — an append-only streaming encoder that writes straight
//!   into a `String` (no intermediate tree when *building* responses).
//!
//! # Number fidelity
//!
//! `f64` values are encoded with Rust's shortest-round-trip `Display` and
//! decoded with `str::parse::<f64>`, so a finite double survives an
//! encode/decode round trip **bit for bit** — that is what lets the wire
//! integration tests demand bit-identical kriging means against the
//! in-process `predict_batch` path. Non-finite values encode as `null`
//! (JSON has no representation for them).

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

const MAX_DEPTH: usize = 32;

impl Json {
    /// Parses one complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for missing keys and non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric field as an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", byte as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of document")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            return Err(self.err(format!("bad escape \\{}", other as char)));
                        }
                    }
                }
                c if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                _ => {
                    // Multi-byte UTF-8: the input is a &str, so the sequence
                    // is valid — copy it through byte-wise.
                    let start = self.pos - 1;
                    while self
                        .peek()
                        .map(|b| b >= 0x80 && (b & 0xC0) == 0x80)
                        .unwrap_or(false)
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input was a valid &str"),
                    );
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let unit = self.hex4()?;
        // Surrogate pairs: a high surrogate must be followed by \uDC00..DFFF.
        if (0xD800..0xDC00).contains(&unit) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let low = self.hex4()?;
                if (0xDC00..0xE000).contains(&low) {
                    let c = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| self.err("bad surrogate pair"));
                }
            }
            return Err(self.err("unpaired high surrogate"));
        }
        if (0xDC00..0xE000).contains(&unit) {
            return Err(self.err("unpaired low surrogate"));
        }
        char::from_u32(unit).ok_or_else(|| self.err("bad \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let unit = u32::from_str_radix(hex, 16)
            .map_err(|_| self.err(format!("bad \\u escape {hex:?}")))?;
        self.pos = end;
        Ok(unit)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        let int_digits = self.digits();
        if int_digits == 0 {
            return Err(self.err("expected digits"));
        }
        if int_digits > 1 && self.bytes[int_start] == b'0' {
            return Err(JsonError {
                offset: int_start,
                message: "leading zeros are not allowed".into(),
            });
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if self.digits() == 0 {
                return Err(self.err("expected digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.digits() == 0 {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        let value: f64 = text
            .parse()
            .map_err(|_| self.err(format!("bad number {text:?}")))?;
        if !value.is_finite() {
            return Err(self.err(format!("number {text:?} overflows f64")));
        }
        Ok(Json::Num(value))
    }

    fn digits(&mut self) -> usize {
        let start = self.pos;
        while self.peek().map(|b| b.is_ascii_digit()).unwrap_or(false) {
            self.pos += 1;
        }
        self.pos - start
    }
}

/// Streaming JSON encoder: values are appended in document order and the
/// writer tracks commas/nesting, so response bodies are built in one pass
/// with no intermediate tree.
///
/// ```
/// use exa_wire::json::JsonWriter;
/// let mut w = JsonWriter::new();
/// w.begin_object();
/// w.key("mean");
/// w.begin_array();
/// for v in [1.0, 0.5] {
///     w.number(v);
/// }
/// w.end_array();
/// w.key("model");
/// w.string("soil");
/// w.end_object();
/// assert_eq!(w.finish(), r#"{"mean":[1,0.5],"model":"soil"}"#);
/// ```
#[derive(Default)]
pub struct JsonWriter {
    out: String,
    /// One entry per open container: `true` once it holds a value (so the
    /// next entry needs a comma).
    stack: Vec<bool>,
    /// Set between a `key()` and its value.
    pending_key: bool,
}

impl JsonWriter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Separator bookkeeping before any value (or key) is appended.
    fn prelude(&mut self) {
        if self.pending_key {
            self.pending_key = false;
            return;
        }
        if let Some(has_values) = self.stack.last_mut() {
            if *has_values {
                self.out.push(',');
            }
            *has_values = true;
        }
    }

    pub fn begin_object(&mut self) {
        self.prelude();
        self.out.push('{');
        self.stack.push(false);
    }

    pub fn end_object(&mut self) {
        debug_assert!(self.stack.pop().is_some(), "unbalanced end_object");
        self.out.push('}');
    }

    pub fn begin_array(&mut self) {
        self.prelude();
        self.out.push('[');
        self.stack.push(false);
    }

    pub fn end_array(&mut self) {
        debug_assert!(self.stack.pop().is_some(), "unbalanced end_array");
        self.out.push(']');
    }

    /// Starts an object member; the next appended value becomes its value.
    pub fn key(&mut self, key: &str) {
        self.prelude();
        self.push_escaped(key);
        self.out.push(':');
        self.pending_key = true;
    }

    pub fn string(&mut self, value: &str) {
        self.prelude();
        self.push_escaped(value);
    }

    /// A finite `f64` in shortest-round-trip form; non-finite → `null`.
    pub fn number(&mut self, value: f64) {
        self.prelude();
        if value.is_finite() {
            // Rust's Display for f64 is shortest-round-trip and never uses
            // exponent notation, both of which keep the output valid JSON.
            std::fmt::Write::write_fmt(&mut self.out, format_args!("{value}"))
                .expect("fmt to string");
        } else {
            self.out.push_str("null");
        }
    }

    pub fn uint(&mut self, value: u64) {
        self.prelude();
        std::fmt::Write::write_fmt(&mut self.out, format_args!("{value}")).expect("fmt to string");
    }

    pub fn boolean(&mut self, value: bool) {
        self.prelude();
        self.out.push_str(if value { "true" } else { "false" });
    }

    pub fn null(&mut self) {
        self.prelude();
        self.out.push_str("null");
    }

    /// Splices a pre-encoded JSON value in verbatim — the writer handles
    /// only the surrounding separators. The caller vouches that `fragment`
    /// is one well-formed JSON value (an aggregator embedding a backend's
    /// already-encoded document should not decode and re-encode it).
    pub fn raw(&mut self, fragment: &str) {
        self.prelude();
        self.out.push_str(fragment);
    }

    /// Whole-field helpers for the common scalar shapes.
    pub fn field_str(&mut self, key: &str, value: &str) {
        self.key(key);
        self.string(value);
    }

    pub fn field_num(&mut self, key: &str, value: f64) {
        self.key(key);
        self.number(value);
    }

    pub fn field_uint(&mut self, key: &str, value: u64) {
        self.key(key);
        self.uint(value);
    }

    /// The finished document.
    pub fn finish(self) -> String {
        debug_assert!(self.stack.is_empty(), "unbalanced JSON document");
        self.out
    }

    fn push_escaped(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    std::fmt::Write::write_fmt(&mut self.out, format_args!("\\u{:04x}", c as u32))
                        .expect("fmt to string");
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_wire_request_shape() {
        let doc = Json::parse(r#"{"targets":[[0.25,0.75],[0.5,0.5]],"variance":true}"#).unwrap();
        let targets = doc.get("targets").unwrap().as_array().unwrap();
        assert_eq!(targets.len(), 2);
        assert_eq!(targets[0].as_array().unwrap()[0].as_f64(), Some(0.25));
        assert_eq!(doc.get("variance").unwrap().as_bool(), Some(true));
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn floats_round_trip_bit_for_bit() {
        // The values a kriging response actually carries: products of many
        // irrational factors, spanning signs and magnitudes.
        let values = [
            0.1 + 0.2,
            -1.0 / 3.0,
            6.02214076e23_f64.recip(),
            f64::MIN_POSITIVE,
            1.7976931348623157e308,
            -0.0,
            123_456_789.123_456_79,
        ];
        let mut w = JsonWriter::new();
        w.begin_array();
        for v in values {
            w.number(v);
        }
        w.end_array();
        let encoded = w.finish();
        let parsed = Json::parse(&encoded).unwrap();
        let arr = parsed.as_array().unwrap();
        for (orig, got) in values.iter().zip(arr) {
            let got = got.as_f64().unwrap();
            assert_eq!(
                orig.to_bits(),
                got.to_bits(),
                "{orig:e} lost bits through JSON"
            );
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("name", "a\"b\\c\nd\te\u{1}é∞");
        w.end_object();
        let encoded = w.finish();
        let parsed = Json::parse(&encoded).unwrap();
        assert_eq!(
            parsed.get("name").unwrap().as_str(),
            Some("a\"b\\c\nd\te\u{1}é∞")
        );
        // Escapes produced by other encoders parse too.
        let doc = Json::parse(r#"{"s":"é∑😀\/"}"#).unwrap();
        assert_eq!(doc.get("s").unwrap().as_str(), Some("é∑😀/"));
    }

    #[test]
    fn rejects_malformed_documents_with_offsets() {
        for (text, expect_offset) in [
            ("", 0),
            ("{", 1),
            ("[1,", 3),
            ("[1 2]", 3),
            (r#"{"a" 1}"#, 5),
            ("tru", 0),
            ("01", 0),
            ("1.", 2),
            ("1e", 2),
            ("-", 1),
            ("\"unterminated", 13),
            (r#""bad \x escape""#, 7),
            (r#""\ud800 unpaired""#, 7),
            ("[1] trailing", 4),
            ("1e999", 5),
            ("+1", 0),
            ("NaN", 0),
            ("Infinity", 0),
        ] {
            let err = Json::parse(text).unwrap_err();
            assert_eq!(err.offset, expect_offset, "{text:?}: {err}");
        }
    }

    #[test]
    fn depth_cap_stops_recursion_bombs() {
        let bomb = "[".repeat(40_000);
        let err = Json::parse(&bomb).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
    }

    #[test]
    fn scalar_accessors_and_uint_semantics() {
        let doc = Json::parse(r#"{"n":42,"x":4.5,"neg":-1,"b":false,"z":null}"#).unwrap();
        assert_eq!(doc.get("n").unwrap().as_u64(), Some(42));
        assert_eq!(doc.get("x").unwrap().as_u64(), None);
        assert_eq!(doc.get("neg").unwrap().as_u64(), None);
        assert_eq!(doc.get("x").unwrap().as_f64(), Some(4.5));
        assert_eq!(doc.get("b").unwrap().as_bool(), Some(false));
        assert!(doc.get("z").unwrap().is_null());
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_uint("big", u64::MAX);
        w.key("nan");
        w.number(f64::NAN);
        w.end_object();
        let enc = w.finish();
        assert_eq!(enc, format!(r#"{{"big":{},"nan":null}}"#, u64::MAX));
    }
}
