//! HiCMA-style Tile Low-Rank (TLR) linear algebra.
//!
//! This crate is the workspace's substitute for the
//! [HiCMA](https://github.com/ecrc/hicma) library — the paper's central
//! addition to ExaGeoStat. It provides:
//!
//! * [`LrTile`] — the `U·Vᵀ` low-rank tile with growable rank.
//! * [`compress_dense`]/[`compress_kernel_block`] — fixed-accuracy tile
//!   compression by exact SVD, randomized SVD, or ACA
//!   ([`CompressionMethod`]).
//! * [`TlrMatrix`] — symmetric TLR storage (dense diagonal + compressed
//!   lower tiles) with rank statistics and memory accounting (Figure 1).
//! * [`lr_trsm`]/[`lr_syrk`]/[`lr_gemm`]/[`recompress`] — the rank-aware
//!   update kernels of the TLR Cholesky.
//! * [`tlr_potrf`] — the TLR Cholesky task graph; [`tlr_trsm`]/[`tlr_potrs`]
//!   — TLR triangular/SPD solves; [`tlr_logdet`] — `ln|Σ|`.
//!
//! The accuracy threshold `eps` is the paper's central tuning knob: looser
//! thresholds give smaller ranks, less memory, and less arithmetic — at the
//! cost of approximation error the geostatistics application must tolerate
//! (Figures 6–7 and Tables I–II quantify that trade-off).

pub mod arith;
pub mod chol;
pub mod compress;
pub mod lr;
pub mod solve;
pub mod tlrmat;

pub use arith::{lr_gemm, lr_syrk, lr_trsm, recompress};
pub use chol::{tlr_factor_to_dense, tlr_logdet, tlr_potrf};
pub use compress::{aca, compress_dense, compress_kernel_block, CompressionMethod};
pub use lr::LrTile;
pub use solve::{tlr_potrs, tlr_trsm};
pub use tlrmat::{RankStats, TlrMatrix};
