//! The TLR matrix: dense diagonal tiles + low-rank off-diagonal tiles.
//!
//! This is HiCMA's symmetric TLR storage for `Σ(θ)` (paper Figure 1): the
//! matrix is cut into `nb × nb` tiles; diagonal tiles stay dense (they carry
//! the non-compressible near-field), and every strictly-lower tile is
//! compressed to `U·Vᵀ` at the user's accuracy threshold. Ranks vary per tile
//! with the distance between the tile's location clusters — the rank
//! statistics and memory accounting here regenerate Figure 1's narrative and
//! the memory-footprint claims of §VIII.

use crate::compress::{compress_kernel_block, CompressionMethod};
use crate::lr::LrTile;
use exa_covariance::CovarianceKernel;
use exa_linalg::{LinalgError, Mat};
use exa_runtime::parallel_for;
use exa_tile::Tile;

/// Symmetric TLR matrix (lower storage).
#[derive(Clone, Debug)]
pub struct TlrMatrix {
    /// Matrix order.
    pub n: usize,
    /// Tile size.
    pub nb: usize,
    /// Tile-grid order `⌈n/nb⌉`.
    pub nt: usize,
    /// Accuracy threshold the off-diagonal tiles were compressed to (and the
    /// threshold the factorization's recompressions keep using).
    pub eps: f64,
    /// Dense diagonal tiles.
    diag: Vec<Tile>,
    /// Strictly-lower low-rank tiles, `low[j * nt + i]` for `i > j`; other
    /// slots hold default (empty) tiles and are never touched.
    low: Vec<LrTile>,
}

/// Summary of the off-diagonal rank distribution (Figure 1's annotation).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankStats {
    pub min: usize,
    pub max: usize,
    pub mean: f64,
    /// Number of off-diagonal (strictly lower) tiles.
    pub tiles: usize,
}

impl TlrMatrix {
    /// Assembles the TLR covariance matrix from a kernel: dense diagonal
    /// tiles, compressed strictly-lower tiles, tiles processed in parallel.
    ///
    /// `seed` fixes the randomized compressor streams (one split per tile),
    /// so assembly is deterministic for any `num_workers`.
    pub fn from_kernel<K: CovarianceKernel>(
        kernel: &K,
        nb: usize,
        eps: f64,
        method: CompressionMethod,
        num_workers: usize,
        seed: u64,
    ) -> Result<Self, LinalgError> {
        assert!(nb > 0, "tile size must be positive");
        assert!(eps > 0.0, "accuracy threshold must be positive");
        let n = kernel.len();
        let nt = n.div_ceil(nb);
        let ext = |idx: usize| nb.min(n - idx * nb);

        // Diagonal tiles (dense, parallel fill).
        let mut diag: Vec<Tile> = (0..nt).map(|k| Tile::zeros(ext(k), ext(k))).collect();
        {
            struct DiagPtrs(Vec<(*mut f64, usize)>);
            // SAFETY: shared only so each worker can fill its own diagonal
            // tiles; tiles are separate allocations and each index k is
            // visited by exactly one chunk.
            unsafe impl Sync for DiagPtrs {}
            let ptrs = DiagPtrs(
                diag.iter_mut()
                    .map(|t| (t.data.as_mut_ptr(), t.rows))
                    .collect(),
            );
            let pref = &ptrs;
            parallel_for(num_workers, nt, 1, move |a, b| {
                for k in a..b {
                    let (ptr, rows) = pref.0[k];
                    // SAFETY: each diagonal tile is owned by exactly one k.
                    let buf = unsafe { std::slice::from_raw_parts_mut(ptr, rows * rows) };
                    kernel.fill_tile(k * nb, rows, k * nb, rows, buf, rows);
                }
            });
        }

        // Strictly-lower tiles (compress in parallel, deterministic seeds).
        let coords: Vec<(usize, usize)> = (0..nt)
            .flat_map(|j| (j + 1..nt).map(move |i| (i, j)))
            .collect();
        let mut low: Vec<LrTile> = vec![LrTile::default(); nt * nt];
        let results: Vec<Result<LrTile, LinalgError>> = {
            let coords_ref = &coords;
            let slots: std::sync::Mutex<Vec<Option<Result<LrTile, LinalgError>>>> =
                std::sync::Mutex::new((0..coords.len()).map(|_| None).collect());
            let slots_ref = &slots;
            parallel_for(num_workers, coords.len(), 1, move |a, b| {
                for (idx, &(i, j)) in coords_ref.iter().enumerate().take(b).skip(a) {
                    let mut rng =
                        exa_util::Rng::seed_from_u64(seed ^ ((i as u64) << 32 | j as u64));
                    let r = compress_kernel_block(
                        kernel,
                        i * nb,
                        ext(i),
                        j * nb,
                        ext(j),
                        eps,
                        method,
                        &mut rng,
                    );
                    slots_ref.lock().unwrap()[idx] = Some(r);
                }
            });
            slots
                .into_inner()
                .unwrap()
                .into_iter()
                .map(|o| o.expect("every tile compressed"))
                .collect()
        };
        for ((i, j), r) in coords.into_iter().zip(results) {
            low[j * nt + i] = r?;
        }

        Ok(TlrMatrix {
            n,
            nb,
            nt,
            eps,
            diag,
            low,
        })
    }

    /// Rows (== columns) of tile index `k`.
    #[inline]
    pub fn tile_extent(&self, k: usize) -> usize {
        self.nb.min(self.n - k * self.nb)
    }

    /// Dense diagonal tile `k`.
    #[inline]
    pub fn diag(&self, k: usize) -> &Tile {
        &self.diag[k]
    }

    #[inline]
    pub fn diag_mut(&mut self, k: usize) -> &mut Tile {
        &mut self.diag[k]
    }

    /// Low-rank tile `(i, j)`, `i > j`.
    #[inline]
    pub fn lr(&self, i: usize, j: usize) -> &LrTile {
        debug_assert!(i > j, "low-rank tiles are strictly lower");
        &self.low[j * self.nt + i]
    }

    #[inline]
    pub fn lr_mut(&mut self, i: usize, j: usize) -> &mut LrTile {
        debug_assert!(i > j, "low-rank tiles are strictly lower");
        &mut self.low[j * self.nt + i]
    }

    /// Raw pointers for the task layer (see `chol.rs`).
    pub(crate) fn diag_ptr(&mut self, k: usize) -> *mut Tile {
        &mut self.diag[k] as *mut Tile
    }

    pub(crate) fn lr_ptr(&mut self, i: usize, j: usize) -> *mut LrTile {
        debug_assert!(i > j);
        &mut self.low[j * self.nt + i] as *mut LrTile
    }

    /// Rank statistics over the strictly-lower tiles.
    pub fn rank_stats(&self) -> RankStats {
        let mut min = usize::MAX;
        let mut max = 0usize;
        let mut sum = 0usize;
        let mut tiles = 0usize;
        for j in 0..self.nt {
            for i in j + 1..self.nt {
                let k = self.lr(i, j).rank();
                min = min.min(k);
                max = max.max(k);
                sum += k;
                tiles += 1;
            }
        }
        if tiles == 0 {
            return RankStats {
                min: 0,
                max: 0,
                mean: 0.0,
                tiles: 0,
            };
        }
        RankStats {
            min,
            max,
            mean: sum as f64 / tiles as f64,
            tiles,
        }
    }

    /// Bytes held by the TLR representation (dense diagonals + LR factors).
    pub fn bytes(&self) -> usize {
        let d: usize = self.diag.iter().map(|t| t.data.len() * 8).sum();
        let l: usize = self.low.iter().map(|t| t.bytes()).sum::<usize>();
        d + l
    }

    /// Bytes the dense symmetric-lower storage of the same matrix would need.
    pub fn dense_bytes(&self) -> usize {
        let mut total = 0usize;
        for j in 0..self.nt {
            for i in j..self.nt {
                total += self.tile_extent(i) * self.tile_extent(j) * 8;
            }
        }
        total
    }

    /// `dense_bytes / bytes` — how much smaller the TLR format is.
    pub fn compression_ratio(&self) -> f64 {
        self.dense_bytes() as f64 / self.bytes() as f64
    }

    /// Dense symmetric reconstruction (tests and small-problem reference).
    pub fn to_dense_symmetric(&self) -> Mat {
        let mut out = Mat::zeros(self.n, self.n);
        for k in 0..self.nt {
            let t = &self.diag[k];
            for j in 0..t.cols {
                for i in 0..t.rows {
                    out[(k * self.nb + i, k * self.nb + j)] = t.at(i, j);
                }
            }
        }
        for j in 0..self.nt {
            for i in j + 1..self.nt {
                let d = self.lr(i, j).to_dense();
                let rows = self.tile_extent(i);
                for (jj, col) in d.chunks_exact(rows).enumerate() {
                    for (ii, &v) in col.iter().enumerate() {
                        out[(i * self.nb + ii, j * self.nb + jj)] = v;
                        out[(j * self.nb + jj, i * self.nb + ii)] = v;
                    }
                }
            }
        }
        out
    }

    /// `y = Σ · x` through the TLR representation (`O(n·nb + Σ k·nb)`).
    ///
    /// Valid on the *assembled* matrix (before factorization): diagonal tiles
    /// are symmetric and off-diagonal tiles contribute both `U Vᵀ x` and its
    /// transpose.
    pub fn symm_matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        let mut y = vec![0.0; self.n];
        for k in 0..self.nt {
            let t = &self.diag[k];
            let off = k * self.nb;
            exa_linalg::gemv(
                exa_linalg::Trans::No,
                t.rows,
                t.cols,
                1.0,
                &t.data,
                t.rows,
                &x[off..off + t.cols],
                1.0,
                &mut y[off..off + t.rows],
            );
        }
        for j in 0..self.nt {
            for i in j + 1..self.nt {
                let t = self.lr(i, j);
                if t.rank() == 0 {
                    continue;
                }
                let (ro, co) = (i * self.nb, j * self.nb);
                // y_i += A_ij x_j.
                let mut yi = vec![0.0; t.rows];
                t.matvec_acc(1.0, &x[co..co + t.cols], &mut yi);
                for (dst, s) in y[ro..ro + t.rows].iter_mut().zip(&yi) {
                    *dst += s;
                }
                // y_j += A_ijᵀ x_i.
                let mut yj = vec![0.0; t.cols];
                t.gemm_trans_acc(1.0, &x[ro..ro + t.rows], t.rows, 1, 0.0, &mut yj, t.cols);
                for (dst, s) in y[co..co + t.cols].iter_mut().zip(&yj) {
                    *dst += s;
                }
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exa_covariance::{DistanceMetric, Location, MaternKernel, MaternParams};
    use exa_util::Rng;
    use std::sync::Arc;

    fn kernel(n: usize, range: f64, seed: u64) -> MaternKernel {
        let mut rng = Rng::seed_from_u64(seed);
        let mut locs: Vec<Location> = (0..n)
            .map(|_| Location::new(rng.next_f64(), rng.next_f64()))
            .collect();
        exa_covariance::sort_morton(&mut locs);
        MaternKernel::new(
            Arc::new(locs),
            MaternParams::new(1.0, range, 0.5),
            DistanceMetric::Euclidean,
            0.0,
        )
    }

    #[test]
    fn reconstruction_error_within_threshold() {
        let k = kernel(96, 0.1, 1);
        for eps in [1e-5, 1e-9] {
            let tlr = TlrMatrix::from_kernel(&k, 24, eps, CompressionMethod::Svd, 2, 7).unwrap();
            let dense = tlr.to_dense_symmetric();
            for j in 0..96 {
                for i in 0..96 {
                    let want = k.entry(i, j);
                    let got = dense[(i, j)];
                    // Per-entry error is bounded by the tile-wise 2-norm cut;
                    // allow a modest constant times eps (σ₀ ≲ nb here).
                    assert!(
                        (got - want).abs() <= 100.0 * eps,
                        "eps={eps} ({i},{j}): {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn ranks_grow_with_accuracy() {
        let k = kernel(120, 0.3, 2);
        let loose = TlrMatrix::from_kernel(&k, 30, 1e-3, CompressionMethod::Svd, 2, 3).unwrap();
        let tight = TlrMatrix::from_kernel(&k, 30, 1e-12, CompressionMethod::Svd, 2, 3).unwrap();
        assert!(loose.rank_stats().mean <= tight.rank_stats().mean);
        assert!(loose.bytes() <= tight.bytes());
    }

    #[test]
    fn compression_beats_dense_storage() {
        let k = kernel(200, 0.03, 3);
        let tlr = TlrMatrix::from_kernel(&k, 25, 1e-7, CompressionMethod::Rsvd, 4, 5).unwrap();
        assert!(
            tlr.compression_ratio() > 1.2,
            "ratio {}",
            tlr.compression_ratio()
        );
        let stats = tlr.rank_stats();
        assert_eq!(stats.tiles, 8 * 7 / 2);
        assert!(stats.max <= 25);
        // Weak correlation (θ₂ = 0.03): far-field tiles fall below the
        // absolute threshold entirely and collapse to rank 0.
        assert_eq!(stats.min, 0);
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let k = kernel(80, 0.1, 4);
        let a = TlrMatrix::from_kernel(&k, 20, 1e-7, CompressionMethod::Rsvd, 1, 11).unwrap();
        let b = TlrMatrix::from_kernel(&k, 20, 1e-7, CompressionMethod::Rsvd, 4, 11).unwrap();
        let (da, db) = (a.to_dense_symmetric(), b.to_dense_symmetric());
        assert_eq!(da.as_slice(), db.as_slice());
    }

    #[test]
    fn symm_matvec_matches_dense() {
        let k = kernel(70, 0.1, 5);
        let tlr = TlrMatrix::from_kernel(&k, 16, 1e-10, CompressionMethod::Svd, 2, 13).unwrap();
        let dense = tlr.to_dense_symmetric();
        let mut rng = Rng::seed_from_u64(6);
        let mut x = vec![0.0; 70];
        rng.fill_gaussian(&mut x);
        let y = tlr.symm_matvec(&x);
        let want = dense.matvec(&x);
        for (a, b) in y.iter().zip(&want) {
            assert!((a - b).abs() < 1e-10 * b.abs().max(1.0));
        }
    }

    #[test]
    fn single_tile_matrix_has_no_lr_tiles() {
        let k = kernel(10, 0.1, 7);
        let tlr = TlrMatrix::from_kernel(&k, 16, 1e-7, CompressionMethod::Svd, 1, 1).unwrap();
        assert_eq!(tlr.nt, 1);
        assert_eq!(tlr.rank_stats().tiles, 0);
        let dense = tlr.to_dense_symmetric();
        for j in 0..10 {
            for i in 0..10 {
                assert_eq!(dense[(i, j)], k.entry(i, j));
            }
        }
    }
}
