//! The low-rank tile: `A ≈ U · Vᵀ`.
//!
//! Off-diagonal tiles of the TLR covariance matrix are stored as a pair of
//! skinny factors (`U`: `rows × k`, `V`: `cols × k`), where the rank `k` is
//! chosen per tile by the compression threshold (paper Figure 1). The rank
//! changes during factorization — TRSM keeps it, GEMM updates grow it and the
//! recompression rounds it back down — so `LrTile` owns growable buffers.

use exa_linalg::{dgemm, SvdResult, Trans};

/// One low-rank tile `U · Vᵀ`.
#[derive(Clone, Debug, Default)]
pub struct LrTile {
    /// Left factor, `rows × rank`, column-major.
    pub u: Vec<f64>,
    /// Right factor, `cols × rank`, column-major (not transposed).
    pub v: Vec<f64>,
    pub rows: usize,
    pub cols: usize,
    rank: usize,
}

impl LrTile {
    /// Rank-0 (exactly zero) tile.
    pub fn zero(rows: usize, cols: usize) -> Self {
        LrTile {
            u: Vec::new(),
            v: Vec::new(),
            rows,
            cols,
            rank: 0,
        }
    }

    /// Builds from explicit factors (`u.len() == rows·k`, `v.len() == cols·k`).
    pub fn from_factors(rows: usize, cols: usize, rank: usize, u: Vec<f64>, v: Vec<f64>) -> Self {
        assert_eq!(u.len(), rows * rank, "U factor size mismatch");
        assert_eq!(v.len(), cols * rank, "V factor size mismatch");
        LrTile {
            u,
            v,
            rows,
            cols,
            rank,
        }
    }

    /// Builds from a truncated SVD, absorbing the singular values into `U`.
    pub fn from_svd(svd: &SvdResult) -> Self {
        let k = svd.rank();
        let (m, n) = (svd.m, svd.n);
        let mut u = svd.u.clone();
        for (c, &s) in svd.s.iter().enumerate() {
            for x in u[c * m..(c + 1) * m].iter_mut() {
                *x *= s;
            }
        }
        LrTile {
            u,
            v: svd.v.clone(),
            rows: m,
            cols: n,
            rank: k,
        }
    }

    /// Current rank `k`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Replaces the factors (used by TRSM/recompression kernels).
    pub fn set_factors(&mut self, rank: usize, u: Vec<f64>, v: Vec<f64>) {
        assert_eq!(u.len(), self.rows * rank, "U factor size mismatch");
        assert_eq!(v.len(), self.cols * rank, "V factor size mismatch");
        self.u = u;
        self.v = v;
        self.rank = rank;
    }

    /// Dense reconstruction `U · Vᵀ` (column-major `rows × cols`).
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.rows * self.cols];
        if self.rank > 0 {
            dgemm(
                Trans::No,
                Trans::Yes,
                self.rows,
                self.cols,
                self.rank,
                1.0,
                &self.u,
                self.rows,
                &self.v,
                self.cols,
                0.0,
                &mut out,
                self.rows,
            );
        }
        out
    }

    /// `y ← alpha · (U Vᵀ) · x + y` — matvec through the factors,
    /// `O((rows+cols)·k)` instead of `O(rows·cols)`.
    pub fn matvec_acc(&self, alpha: f64, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols);
        assert_eq!(y.len(), self.rows);
        if self.rank == 0 {
            return;
        }
        // t = Vᵀ x (k), then y += alpha · U t.
        let k = self.rank;
        let mut t = vec![0.0; k];
        for (c, tc) in t.iter_mut().enumerate() {
            *tc = exa_linalg::dot(&self.v[c * self.cols..(c + 1) * self.cols], x);
        }
        for (c, &tc) in t.iter().enumerate() {
            exa_linalg::axpy(alpha * tc, &self.u[c * self.rows..(c + 1) * self.rows], y);
        }
    }

    /// `C ← alpha · (U Vᵀ) · B + beta·C` on a dense RHS block
    /// (`B`: `cols × nrhs`, `C`: `rows × nrhs`), via two skinny GEMMs.
    #[allow(clippy::too_many_arguments)]
    pub fn gemm_acc(
        &self,
        alpha: f64,
        b: &[f64],
        ldb: usize,
        nrhs: usize,
        beta: f64,
        c: &mut [f64],
        ldc: usize,
    ) {
        if self.rank == 0 {
            if beta != 1.0 {
                for j in 0..nrhs {
                    for x in c[j * ldc..j * ldc + self.rows].iter_mut() {
                        *x *= beta;
                    }
                }
            }
            return;
        }
        // T = Vᵀ B (k × nrhs), C = alpha U T + beta C.
        let k = self.rank;
        let mut t = vec![0.0; k * nrhs];
        dgemm(
            Trans::Yes,
            Trans::No,
            k,
            nrhs,
            self.cols,
            1.0,
            &self.v,
            self.cols,
            b,
            ldb,
            0.0,
            &mut t,
            k,
        );
        dgemm(
            Trans::No,
            Trans::No,
            self.rows,
            nrhs,
            k,
            alpha,
            &self.u,
            self.rows,
            &t,
            k,
            beta,
            c,
            ldc,
        );
    }

    /// Like [`LrTile::gemm_acc`] but applies the transpose `(U Vᵀ)ᵀ = V Uᵀ`
    /// (`B`: `rows × nrhs`, `C`: `cols × nrhs`).
    #[allow(clippy::too_many_arguments)]
    pub fn gemm_trans_acc(
        &self,
        alpha: f64,
        b: &[f64],
        ldb: usize,
        nrhs: usize,
        beta: f64,
        c: &mut [f64],
        ldc: usize,
    ) {
        if self.rank == 0 {
            if beta != 1.0 {
                for j in 0..nrhs {
                    for x in c[j * ldc..j * ldc + self.cols].iter_mut() {
                        *x *= beta;
                    }
                }
            }
            return;
        }
        let k = self.rank;
        let mut t = vec![0.0; k * nrhs];
        dgemm(
            Trans::Yes,
            Trans::No,
            k,
            nrhs,
            self.rows,
            1.0,
            &self.u,
            self.rows,
            b,
            ldb,
            0.0,
            &mut t,
            k,
        );
        dgemm(
            Trans::No,
            Trans::No,
            self.cols,
            nrhs,
            k,
            alpha,
            &self.v,
            self.cols,
            &t,
            k,
            beta,
            c,
            ldc,
        );
    }

    /// Bytes held by the two factors (the TLR memory-footprint metric).
    pub fn bytes(&self) -> usize {
        (self.u.len() + self.v.len()) * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exa_linalg::{jacobi_svd, Mat};
    use exa_util::Rng;

    fn rank2_tile(m: usize, n: usize, seed: u64) -> (LrTile, Mat) {
        let mut rng = Rng::seed_from_u64(seed);
        let u = Mat::gaussian(m, 2, &mut rng);
        let v = Mat::gaussian(n, 2, &mut rng);
        let dense = u.matmul(&v.transposed());
        (
            LrTile::from_factors(m, n, 2, u.as_slice().to_vec(), v.as_slice().to_vec()),
            dense,
        )
    }

    #[test]
    fn to_dense_reconstructs_product() {
        let (t, dense) = rank2_tile(7, 5, 1);
        let d = t.to_dense();
        for (a, b) in d.iter().zip(dense.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn from_svd_absorbs_singular_values() {
        let mut rng = Rng::seed_from_u64(2);
        let a = Mat::gaussian(8, 6, &mut rng);
        let svd = jacobi_svd(8, 6, a.as_slice(), 8).unwrap();
        let t = LrTile::from_svd(&svd);
        assert_eq!(t.rank(), 6);
        for (x, y) in t.to_dense().iter().zip(a.as_slice()) {
            assert!((x - y).abs() < 1e-10, "{x} vs {y}");
        }
    }

    #[test]
    fn matvec_matches_dense() {
        let (t, dense) = rank2_tile(9, 4, 3);
        let mut rng = Rng::seed_from_u64(4);
        let mut x = vec![0.0; 4];
        rng.fill_gaussian(&mut x);
        let mut y = vec![1.0; 9];
        t.matvec_acc(2.0, &x, &mut y);
        let want: Vec<f64> = dense.matvec(&x).iter().map(|v| 1.0 + 2.0 * v).collect();
        for (a, b) in y.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn gemm_acc_and_trans_match_dense() {
        let (t, dense) = rank2_tile(6, 8, 5);
        let mut rng = Rng::seed_from_u64(6);
        let b = Mat::gaussian(8, 3, &mut rng);
        let mut c = vec![0.0; 6 * 3];
        t.gemm_acc(1.0, b.as_slice(), 8, 3, 0.0, &mut c, 6);
        let want = dense.matmul(&b);
        for (a, w) in c.iter().zip(want.as_slice()) {
            assert!((a - w).abs() < 1e-12);
        }

        let bt = Mat::gaussian(6, 2, &mut rng);
        let mut ct = vec![0.0; 8 * 2];
        t.gemm_trans_acc(1.0, bt.as_slice(), 6, 2, 0.0, &mut ct, 8);
        let want_t = dense.transposed().matmul(&bt);
        for (a, w) in ct.iter().zip(want_t.as_slice()) {
            assert!((a - w).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_tile_behaves_like_zero_matrix() {
        let t = LrTile::zero(5, 3);
        assert_eq!(t.rank(), 0);
        assert_eq!(t.bytes(), 0);
        assert!(t.to_dense().iter().all(|&v| v == 0.0));
        let mut y = vec![2.0; 5];
        t.matvec_acc(1.0, &[1.0, 1.0, 1.0], &mut y);
        assert!(y.iter().all(|&v| v == 2.0));
        let mut c = vec![3.0; 5 * 2];
        t.gemm_acc(1.0, &[0.0; 6], 3, 2, 0.5, &mut c, 5);
        assert!(c.iter().all(|&v| v == 1.5));
    }

    #[test]
    #[should_panic(expected = "U factor size mismatch")]
    fn factor_size_validated() {
        LrTile::from_factors(4, 4, 2, vec![0.0; 7], vec![0.0; 8]);
    }
}
