//! Low-rank tile arithmetic: the TLR Cholesky update kernels.
//!
//! HiCMA's TLR POTRF is built from four tile kernels (§V, and Akbudak et al.
//! ISC'17); the three low-rank ones live here:
//!
//! * [`lr_trsm`] — `A_ik ← A_ik · L_kk⁻ᵀ`, which only touches the `V` factor
//!   (`U (Vᵀ L⁻ᵀ) = U (L⁻¹V)ᵀ`), keeping the rank unchanged.
//! * [`lr_syrk`] — `D_j ← D_j − A_jk A_jkᵀ` on the dense diagonal tile, via
//!   the small Gram matrix `W = VᵀV`.
//! * [`lr_gemm`] — `C_ij ← C_ij − A_ik A_jkᵀ`, which concatenates factors and
//!   then rounds the rank back down with [`recompress`] (QR of both factors +
//!   a small SVD at the same accuracy threshold).

use crate::lr::LrTile;
use exa_linalg::{
    dgemm, dgeqrf, dorgqr, dtrsm, jacobi_svd, truncation_rank_cut, Cutoff, LinalgError, Side, Trans,
};

/// `A ← A · L⁻ᵀ` for a low-rank tile and the dense Cholesky factor `L`
/// (`lkk`: `cols × cols` lower triangular, leading dimension `ldl`).
pub fn lr_trsm(lkk: &[f64], ldl: usize, a: &mut LrTile) {
    if a.rank() == 0 {
        return;
    }
    // V ← L⁻¹ V.
    dtrsm(
        Side::Left,
        Trans::No,
        a.cols,
        a.rank(),
        1.0,
        lkk,
        ldl,
        &mut a.v,
        a.cols,
    );
}

/// `D ← D − A Aᵀ` where `A = U Vᵀ` is low-rank and `D` is the dense
/// `rows × rows` diagonal tile (leading dimension `ldd`).
///
/// Uses the Gram trick: `A Aᵀ = U (VᵀV) Uᵀ`, costing `O(nb²k)` instead of
/// `O(nb³)`.
pub fn lr_syrk(a: &LrTile, d: &mut [f64], ldd: usize) {
    let k = a.rank();
    if k == 0 {
        return;
    }
    let m = a.rows;
    // W = VᵀV (k × k).
    let mut w = vec![0.0; k * k];
    dgemm(
        Trans::Yes,
        Trans::No,
        k,
        k,
        a.cols,
        1.0,
        &a.v,
        a.cols,
        &a.v,
        a.cols,
        0.0,
        &mut w,
        k,
    );
    // T = U W (m × k).
    let mut t = vec![0.0; m * k];
    dgemm(
        Trans::No,
        Trans::No,
        m,
        k,
        k,
        1.0,
        &a.u,
        m,
        &w,
        k,
        0.0,
        &mut t,
        m,
    );
    // D ← D − T Uᵀ.
    dgemm(
        Trans::No,
        Trans::Yes,
        m,
        m,
        k,
        -1.0,
        &t,
        m,
        &a.u,
        m,
        1.0,
        d,
        ldd,
    );
}

/// `C ← C − A Bᵀ` for three low-rank tiles, rounding `C` back to accuracy
/// `eps` afterwards.
///
/// The product `A Bᵀ = U_a (V_aᵀ V_b) U_bᵀ` is itself low rank; whichever of
/// `rank(A)`/`rank(B)` is smaller determines the added rank. The result is
/// appended to `C`'s factors and [`recompress`] rounds the concatenation.
pub fn lr_gemm(c: &mut LrTile, a: &LrTile, b: &LrTile, eps: f64) -> Result<(), LinalgError> {
    let (ka, kb) = (a.rank(), b.rank());
    if ka == 0 || kb == 0 {
        return Ok(());
    }
    debug_assert_eq!(a.cols, b.cols, "inner (compressed) dimension mismatch");
    debug_assert_eq!(c.rows, a.rows);
    debug_assert_eq!(c.cols, b.rows);
    // W = V_aᵀ V_b (ka × kb).
    let mut w = vec![0.0; ka * kb];
    dgemm(
        Trans::Yes,
        Trans::No,
        ka,
        kb,
        a.cols,
        1.0,
        &a.v,
        a.cols,
        &b.v,
        b.cols,
        0.0,
        &mut w,
        ka,
    );
    let kc = c.rank();
    // Append the product with the smaller added rank:
    //   ka ≤ kb: (−U_a) · (U_b Wᵀ)ᵀ  adds rank ka;
    //   else:    (−U_a W) · U_bᵀ     adds rank kb.
    let add = ka.min(kb);
    let mut u_new = Vec::with_capacity(c.rows * (kc + add));
    let mut v_new = Vec::with_capacity(c.cols * (kc + add));
    u_new.extend_from_slice(&c.u);
    v_new.extend_from_slice(&c.v);
    if ka <= kb {
        u_new.extend(a.u.iter().map(|x| -x));
        let mut vb = vec![0.0; b.rows * ka];
        dgemm(
            Trans::No,
            Trans::Yes,
            b.rows,
            ka,
            kb,
            1.0,
            &b.u,
            b.rows,
            &w,
            ka,
            0.0,
            &mut vb,
            b.rows,
        );
        v_new.extend_from_slice(&vb);
    } else {
        let mut ua = vec![0.0; a.rows * kb];
        dgemm(
            Trans::No,
            Trans::No,
            a.rows,
            kb,
            ka,
            -1.0,
            &a.u,
            a.rows,
            &w,
            ka,
            0.0,
            &mut ua,
            a.rows,
        );
        u_new.extend_from_slice(&ua);
        v_new.extend_from_slice(&b.u);
    }
    c.set_factors(kc + add, u_new, v_new);
    recompress(c, eps)
}

/// Rounds a low-rank tile down to the smallest rank meeting the absolute
/// accuracy `eps` (same fixed-accuracy semantics as the compressors).
///
/// QR-factors both skinny sides, then SVD-truncates the small `r × r` core:
/// `U Vᵀ = Q_u (R_u R_vᵀ) Q_vᵀ`. Falls back to a dense SVD when the current
/// rank is no longer "skinny" (`r ≥ min(m,n)`), which can happen after many
/// concatenations.
pub fn recompress(t: &mut LrTile, eps: f64) -> Result<(), LinalgError> {
    let r = t.rank();
    if r == 0 {
        return Ok(());
    }
    let (m, n) = (t.rows, t.cols);
    if r >= m.min(n) {
        // Dense fallback: materialize and re-compress exactly.
        let dense = t.to_dense();
        let mut svd = jacobi_svd(m, n, &dense, m)?;
        let k = truncation_rank_cut(&svd.s, Cutoff::Absolute(eps));
        svd.truncate(k);
        *t = LrTile::from_svd(&svd);
        return Ok(());
    }
    // QR of U: U = Q_u R_u.
    let mut qu = t.u.clone();
    let mut tau_u = vec![0.0; r];
    dgeqrf(m, r, &mut qu, m, &mut tau_u);
    let mut ru = vec![0.0; r * r];
    for j in 0..r {
        for i in 0..=j {
            ru[i + j * r] = qu[i + j * m];
        }
    }
    dorgqr(m, r, r, &mut qu, m, &tau_u);
    // QR of V: V = Q_v R_v.
    let mut qv = t.v.clone();
    let mut tau_v = vec![0.0; r];
    dgeqrf(n, r, &mut qv, n, &mut tau_v);
    let mut rv = vec![0.0; r * r];
    for j in 0..r {
        for i in 0..=j {
            rv[i + j * r] = qv[i + j * n];
        }
    }
    dorgqr(n, r, r, &mut qv, n, &tau_v);
    // Core = R_u R_vᵀ (r × r), SVD + truncate.
    let mut core = vec![0.0; r * r];
    dgemm(
        Trans::No,
        Trans::Yes,
        r,
        r,
        r,
        1.0,
        &ru,
        r,
        &rv,
        r,
        0.0,
        &mut core,
        r,
    );
    let mut svd = jacobi_svd(r, r, &core, r)?;
    let k = truncation_rank_cut(&svd.s, Cutoff::Absolute(eps));
    svd.truncate(k);
    if k == 0 {
        *t = LrTile::zero(m, n);
        return Ok(());
    }
    // U ← Q_u (u_core · diag(s)), V ← Q_v v_core.
    let mut us = svd.u.clone();
    for (c, &s) in svd.s.iter().enumerate() {
        for x in us[c * r..(c + 1) * r].iter_mut() {
            *x *= s;
        }
    }
    let mut u_new = vec![0.0; m * k];
    dgemm(
        Trans::No,
        Trans::No,
        m,
        k,
        r,
        1.0,
        &qu,
        m,
        &us,
        r,
        0.0,
        &mut u_new,
        m,
    );
    let mut v_new = vec![0.0; n * k];
    dgemm(
        Trans::No,
        Trans::No,
        n,
        k,
        r,
        1.0,
        &qv,
        n,
        &svd.v,
        r,
        0.0,
        &mut v_new,
        n,
    );
    t.set_factors(k, u_new, v_new);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use exa_linalg::{dpotrf, frobenius_norm, Mat};
    use exa_util::Rng;

    fn lr_random(m: usize, n: usize, k: usize, seed: u64) -> LrTile {
        let mut rng = Rng::seed_from_u64(seed);
        let u = Mat::gaussian(m, k, &mut rng);
        let v = Mat::gaussian(n, k, &mut rng);
        LrTile::from_factors(m, n, k, u.as_slice().to_vec(), v.as_slice().to_vec())
    }

    fn dense_of(t: &LrTile) -> Mat {
        Mat::from_vec(t.rows, t.cols, t.to_dense())
    }

    fn rel_diff(a: &Mat, b: &Mat) -> f64 {
        let mut d = vec![0.0; a.as_slice().len()];
        for (x, (p, q)) in d.iter_mut().zip(a.as_slice().iter().zip(b.as_slice())) {
            *x = p - q;
        }
        frobenius_norm(a.nrows(), a.ncols(), &d, a.nrows())
            / frobenius_norm(a.nrows(), a.ncols(), a.as_slice(), a.nrows()).max(1e-300)
    }

    #[test]
    fn trsm_matches_dense() {
        let mut rng = Rng::seed_from_u64(1);
        let nb = 12;
        let mut l = Mat::random_spd(nb, &mut rng);
        dpotrf(nb, l.as_mut_slice(), nb).unwrap();
        l.zero_strict_upper();
        let mut a = lr_random(10, nb, 3, 2);
        let a_dense = dense_of(&a);
        lr_trsm(l.as_slice(), nb, &mut a);
        // Reference: X = A · L⁻ᵀ densely.
        let mut x_ref = a_dense.clone();
        dtrsm(
            Side::Right,
            Trans::Yes,
            10,
            nb,
            1.0,
            l.as_slice(),
            nb,
            x_ref.as_mut_slice(),
            10,
        );
        assert!(rel_diff(&dense_of(&a), &x_ref) < 1e-12);
        assert_eq!(a.rank(), 3, "TRSM must not change the rank");
    }

    #[test]
    fn syrk_matches_dense() {
        let a = lr_random(9, 7, 2, 3);
        let mut rng = Rng::seed_from_u64(4);
        let d0 = Mat::random_spd(9, &mut rng);
        let mut d = d0.clone();
        lr_syrk(&a, d.as_mut_slice(), 9);
        let ad = dense_of(&a);
        let want = {
            let mut w = d0.clone();
            let p = ad.matmul(&ad.transposed());
            for (x, y) in w.as_mut_slice().iter_mut().zip(p.as_slice()) {
                *x -= y;
            }
            w
        };
        assert!(rel_diff(&d, &want) < 1e-12);
    }

    #[test]
    fn gemm_matches_dense_and_rounds_rank() {
        let mut c = lr_random(14, 12, 3, 5);
        let a = lr_random(14, 10, 2, 6);
        let b = lr_random(12, 10, 4, 7);
        let want = {
            let mut w = dense_of(&c);
            let p = dense_of(&a).matmul(&dense_of(&b).transposed());
            for (x, y) in w.as_mut_slice().iter_mut().zip(p.as_slice()) {
                *x -= y;
            }
            w
        };
        lr_gemm(&mut c, &a, &b, 1e-12).unwrap();
        assert!(rel_diff(&dense_of(&c), &want) < 1e-10);
        // Concatenated rank is 3 + min(2,4) = 5; exact value after rounding
        // stays ≤ 5 and the recompression must not have grown it.
        assert!(c.rank() <= 5);
    }

    #[test]
    fn gemm_with_rank_zero_inputs_is_noop() {
        let mut c = lr_random(8, 8, 2, 8);
        let before = dense_of(&c);
        let z = LrTile::zero(8, 5);
        let b = lr_random(8, 5, 2, 9);
        lr_gemm(&mut c, &z, &b, 1e-9).unwrap();
        lr_gemm(&mut c, &b, &z, 1e-9).unwrap();
        assert_eq!(dense_of(&c).as_slice(), before.as_slice());
    }

    #[test]
    fn recompress_reduces_redundant_rank() {
        // Build a rank-2 matrix stored with rank 6 (duplicated columns).
        let base = lr_random(10, 8, 2, 10);
        let mut u = base.u.clone();
        let mut v = base.v.clone();
        u.extend_from_slice(&base.u);
        v.extend_from_slice(&base.v);
        u.extend_from_slice(&base.u);
        v.extend_from_slice(&base.v);
        // Thirds must cancel: scale the third copy by -1 on U.
        for x in u[10 * 4..].iter_mut() {
            *x = -*x;
        }
        let mut t = LrTile::from_factors(10, 8, 6, u, v);
        let want = dense_of(&t);
        recompress(&mut t, 1e-12).unwrap();
        assert!(t.rank() <= 2, "rank {} after recompression", t.rank());
        assert!(rel_diff(&dense_of(&t), &want) < 1e-10);
    }

    #[test]
    fn recompress_dense_fallback_when_overfull() {
        // rank == min(m, n): falls back to a dense SVD.
        let t0 = lr_random(6, 9, 6, 11);
        let want = dense_of(&t0);
        let mut t = t0.clone();
        recompress(&mut t, 1e-13).unwrap();
        assert!(t.rank() <= 6);
        assert!(rel_diff(&dense_of(&t), &want) < 1e-10);
    }

    #[test]
    fn recompress_annihilates_cancelling_sum() {
        let base = lr_random(7, 7, 3, 12);
        let mut u = base.u.clone();
        u.extend(base.u.iter().map(|x| -x));
        let mut v = base.v.clone();
        v.extend_from_slice(&base.v);
        let mut t = LrTile::from_factors(7, 7, 6, u, v);
        recompress(&mut t, 1e-10).unwrap();
        assert_eq!(t.rank(), 0, "U Vᵀ − U Vᵀ must round to zero");
    }
}
