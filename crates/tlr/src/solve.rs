//! TLR triangular solves on block right-hand sides.
//!
//! After [`crate::tlr_potrf`] the matrix holds `L` in TLR form; the
//! likelihood needs `L⁻¹Z` and the predictor `L⁻ᵀL⁻¹Z` (Eq. 4). Off-diagonal
//! updates go through the factors (`U(VᵀB)`), so a solve costs
//! `O(Σ_tiles k·nb·nrhs)` instead of the dense `O(n²·nrhs)`.

use crate::chol::{DiagView, LrView};
use crate::tlrmat::TlrMatrix;
use exa_linalg::{dtrsm, Mat, Side, Trans};
use exa_runtime::{Access, ExecStats, Runtime, TaskGraph};
pub use exa_tile::TriangularSide;

/// Raw view of one `nb`-row block of the RHS (same contract as the tile
/// solver's views: one handle per block, accesses mediated by the runtime).
#[derive(Clone, Copy)]
struct RhsView {
    ptr: *mut f64,
    ld: usize,
    rows: usize,
    cols: usize,
}

// SAFETY: RhsView is a plain pointer/shape bundle; dereferencing goes through
// the unsafe accessors whose contracts require runtime-granted access, and
// the STF DAG serializes writers of each block handle.
unsafe impl Send for RhsView {}
// SAFETY: as above — sharing the view grants nothing without the accessors.
unsafe impl Sync for RhsView {}

impl RhsView {
    /// # Safety
    /// Runtime-granted access required; owner outlives the run.
    #[inline]
    unsafe fn as_mut_slice<'a>(self) -> &'a mut [f64] {
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.ld * (self.cols - 1) + self.rows) }
    }

    /// # Safety
    /// Runtime-granted `Read` access required; owner outlives the run.
    #[inline]
    unsafe fn as_slice<'a>(self) -> &'a [f64] {
        unsafe { std::slice::from_raw_parts(self.ptr, self.ld * (self.cols - 1) + self.rows) }
    }
}

fn rhs_views(b: &mut Mat, nb: usize) -> Vec<RhsView> {
    let (n, nrhs) = (b.nrows(), b.ncols());
    let ld = b.ld();
    let base = b.as_mut_slice().as_mut_ptr();
    (0..n.div_ceil(nb))
        .map(|k| RhsView {
            // SAFETY: k·nb < n keeps the offset in bounds.
            ptr: unsafe { base.add(k * nb) },
            ld,
            rows: nb.min(n - k * nb),
            cols: nrhs,
        })
        .collect()
}

/// Solves `L X = B` (forward) or `Lᵀ X = B` (backward) in place on `b`,
/// where `l` holds the TLR Cholesky factor.
pub fn tlr_trsm(l: &mut TlrMatrix, side: TriangularSide, b: &mut Mat, rt: &Runtime) -> ExecStats {
    assert_eq!(l.n, b.nrows(), "RHS row count mismatch");
    if b.ncols() == 0 || l.n == 0 {
        return ExecStats::empty(rt.num_workers());
    }
    let nt = l.nt;
    let mut graph = TaskGraph::new();
    let bh = graph.register_many(nt);
    let dh = graph.register_many(nt);
    let lh: Vec<Vec<exa_runtime::Handle>> = (0..nt).map(|_| graph.register_many(nt)).collect();
    let views = rhs_views(b, l.nb);

    match side {
        TriangularSide::Forward => {
            for k in 0..nt {
                let dk = DiagView(l.diag_ptr(k));
                let bk = views[k];
                graph.submit(
                    "trsm-rhs",
                    2,
                    &[(dh[k], Access::Read), (bh[k], Access::ReadWrite)],
                    move || {
                        // SAFETY: declared Read on the diagonal and ReadWrite
                        // on B[k]; the DAG serializes this task accordingly.
                        let t = unsafe { dk.get() };
                        let bbuf = unsafe { bk.as_mut_slice() };
                        dtrsm(
                            Side::Left,
                            Trans::No,
                            bk.rows,
                            bk.cols,
                            1.0,
                            &t.data,
                            t.rows,
                            bbuf,
                            bk.ld,
                        );
                    },
                );
                for i in k + 1..nt {
                    let lik = LrView(l.lr_ptr(i, k));
                    let bk = views[k];
                    let bi = views[i];
                    graph.submit(
                        "lr-gemm-rhs",
                        1,
                        &[
                            (lh[k][i], Access::Read),
                            (bh[k], Access::Read),
                            (bh[i], Access::ReadWrite),
                        ],
                        move || {
                            // SAFETY: declared Read on L(i,k)/B[k] and
                            // ReadWrite on B[i]; serialized by the DAG.
                            let t = unsafe { lik.get() };
                            let src = unsafe { bk.as_slice() };
                            let dst = unsafe { bi.as_mut_slice() };
                            t.gemm_acc(-1.0, src, bk.ld, bk.cols, 1.0, dst, bi.ld);
                        },
                    );
                }
            }
        }
        TriangularSide::Backward => {
            for k in (0..nt).rev() {
                let dk = DiagView(l.diag_ptr(k));
                let bk = views[k];
                graph.submit(
                    "trsm-rhs-t",
                    2,
                    &[(dh[k], Access::Read), (bh[k], Access::ReadWrite)],
                    move || {
                        // SAFETY: declared Read on the diagonal and ReadWrite
                        // on B[k]; the DAG serializes this task accordingly.
                        let t = unsafe { dk.get() };
                        let bbuf = unsafe { bk.as_mut_slice() };
                        dtrsm(
                            Side::Left,
                            Trans::Yes,
                            bk.rows,
                            bk.cols,
                            1.0,
                            &t.data,
                            t.rows,
                            bbuf,
                            bk.ld,
                        );
                    },
                );
                for i in 0..k {
                    // B_i -= L(k,i)ᵀ B_k through the factors (V Uᵀ B_k).
                    let lki = LrView(l.lr_ptr(k, i));
                    let bk = views[k];
                    let bi = views[i];
                    graph.submit(
                        "lr-gemm-rhs-t",
                        1,
                        &[
                            (lh[i][k], Access::Read),
                            (bh[k], Access::Read),
                            (bh[i], Access::ReadWrite),
                        ],
                        move || {
                            // SAFETY: declared Read on L(k,i)/B[k] and
                            // ReadWrite on B[i]; serialized by the DAG.
                            let t = unsafe { lki.get() };
                            let src = unsafe { bk.as_slice() };
                            let dst = unsafe { bi.as_mut_slice() };
                            t.gemm_trans_acc(-1.0, src, bk.ld, bk.cols, 1.0, dst, bi.ld);
                        },
                    );
                }
            }
        }
    }
    rt.run(graph)
}

/// Full SPD solve `A X = B` through the TLR factor (`L Lᵀ X = B`).
pub fn tlr_potrs(l: &mut TlrMatrix, b: &mut Mat, rt: &Runtime) {
    tlr_trsm(l, TriangularSide::Forward, b, rt);
    tlr_trsm(l, TriangularSide::Backward, b, rt);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chol::tlr_potrf;
    use crate::compress::CompressionMethod;
    use exa_covariance::{DistanceMetric, Location, MaternKernel, MaternParams};
    use exa_linalg::frobenius_norm;
    use exa_util::Rng;
    use std::sync::Arc;

    fn factored(n: usize, nb: usize, eps: f64, seed: u64) -> (TlrMatrix, Mat) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut locs: Vec<Location> = (0..n)
            .map(|_| Location::new(rng.next_f64(), rng.next_f64()))
            .collect();
        exa_covariance::sort_morton(&mut locs);
        let kernel = MaternKernel::new(
            Arc::new(locs),
            MaternParams::new(1.0, 0.1, 0.5),
            DistanceMetric::Euclidean,
            1e-6,
        );
        let mut a =
            TlrMatrix::from_kernel(&kernel, nb, eps, CompressionMethod::Svd, 2, seed).unwrap();
        let dense = a.to_dense_symmetric();
        tlr_potrf(&mut a, &Runtime::new(4)).unwrap();
        (a, dense)
    }

    fn rel_residual(a: &Mat, x: &Mat, b: &Mat) -> f64 {
        let ax = a.matmul(x);
        let mut d = vec![0.0; b.as_slice().len()];
        for (v, (p, q)) in d.iter_mut().zip(ax.as_slice().iter().zip(b.as_slice())) {
            *v = p - q;
        }
        frobenius_norm(b.nrows(), b.ncols(), &d, b.nrows())
            / frobenius_norm(b.nrows(), b.ncols(), b.as_slice(), b.nrows())
    }

    #[test]
    fn solve_residual_tracks_accuracy() {
        for (eps, tol) in [(1e-11, 1e-8), (1e-6, 1e-3)] {
            let (mut l, dense) = factored(80, 16, eps, 1);
            let mut rng = Rng::seed_from_u64(2);
            let b = Mat::gaussian(80, 4, &mut rng);
            let mut x = b.clone();
            tlr_potrs(&mut l, &mut x, &Runtime::new(4));
            let r = rel_residual(&dense, &x, &b);
            assert!(r < tol, "eps={eps}: residual {r}");
        }
    }

    #[test]
    fn forward_then_backward_equals_full_solve() {
        let (mut l, _) = factored(60, 12, 1e-10, 3);
        let mut rng = Rng::seed_from_u64(4);
        let b = Mat::gaussian(60, 2, &mut rng);
        let rt = Runtime::new(2);
        let mut x_split = b.clone();
        tlr_trsm(&mut l, TriangularSide::Forward, &mut x_split, &rt);
        tlr_trsm(&mut l, TriangularSide::Backward, &mut x_split, &rt);
        let mut x_full = b.clone();
        tlr_potrs(&mut l, &mut x_full, &rt);
        assert_eq!(x_split.as_slice(), x_full.as_slice());
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let (mut l, _) = factored(70, 14, 1e-9, 5);
        let mut rng = Rng::seed_from_u64(6);
        let b = Mat::gaussian(70, 3, &mut rng);
        let mut x1 = b.clone();
        let mut x8 = b.clone();
        tlr_potrs(&mut l, &mut x1, &Runtime::new(1));
        tlr_potrs(&mut l, &mut x8, &Runtime::new(8));
        assert_eq!(x1.as_slice(), x8.as_slice());
    }

    #[test]
    fn quadratic_form_matches_dense_route() {
        // ‖L⁻¹Z‖² (the MLE quadratic term) via TLR vs dense Cholesky.
        let (mut l, dense) = factored(64, 16, 1e-11, 7);
        let mut rng = Rng::seed_from_u64(8);
        let z = Mat::gaussian(64, 1, &mut rng);
        let mut w = z.clone();
        tlr_trsm(&mut l, TriangularSide::Forward, &mut w, &Runtime::new(2));
        let got: f64 = w.as_slice().iter().map(|v| v * v).sum();
        let mut lref = dense.clone();
        exa_linalg::dpotrf(64, lref.as_mut_slice(), 64).unwrap();
        let mut wref = z.clone();
        dtrsm(
            Side::Left,
            Trans::No,
            64,
            1,
            1.0,
            lref.as_slice(),
            64,
            wref.as_mut_slice(),
            64,
        );
        let want: f64 = wref.as_slice().iter().map(|v| v * v).sum();
        assert!((got - want).abs() < 1e-6 * want.abs(), "{got} vs {want}");
    }

    #[test]
    fn empty_rhs_is_noop() {
        let (mut l, _) = factored(30, 10, 1e-9, 9);
        let mut x = Mat::zeros(30, 0);
        let stats = tlr_trsm(&mut l, TriangularSide::Forward, &mut x, &Runtime::new(2));
        assert_eq!(stats.tasks_executed, 0);
    }
}
