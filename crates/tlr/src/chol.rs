//! TLR Cholesky factorization (HiCMA's `hicma_dpotrf`).
//!
//! The same right-looking loop nest as the dense tile Cholesky, with the
//! three off-diagonal kernels swapped for their low-rank counterparts:
//!
//! ```text
//! for k in 0..nt:
//!     POTRF(D_k)                                   # dense diagonal tile
//!     for i in k+1..nt:  LR-TRSM(D_k → A[i][k])    # V ← L⁻¹V, rank kept
//!     for j in k+1..nt:  LR-SYRK(A[j][k] → D_j)    # Gram trick, O(nb²k)
//!         for i in j+1..nt:
//!             LR-GEMM(A[i][k], A[j][k] → A[i][j])  # concat + recompress
//! ```
//!
//! Every flop count is rank-dependent, which is where the arithmetic savings
//! of the paper's Figures 3–4 come from; the recompression threshold equals
//! the assembly threshold `a.eps`, as in HiCMA's fixed-accuracy mode.

use crate::arith::{lr_gemm, lr_syrk, lr_trsm};
use crate::lr::LrTile;
use crate::tlrmat::TlrMatrix;
use exa_linalg::{dpotrf, LinalgError};
use exa_runtime::{Access, ExecStats, Runtime, TaskGraph};
use exa_tile::Tile;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// First-failure latch shared by all tasks of one factorization.
#[derive(Default)]
struct Poison {
    failed: AtomicBool,
    info: Mutex<Option<LinalgError>>,
}

impl Poison {
    fn poisoned(&self) -> bool {
        self.failed.load(Ordering::Acquire)
    }

    fn set(&self, err: LinalgError) {
        let mut slot = self.info.lock().unwrap();
        if slot.is_none() {
            *slot = Some(err);
        }
        self.failed.store(true, Ordering::Release);
    }

    fn take(&self) -> Option<LinalgError> {
        *self.info.lock().unwrap()
    }
}

/// Raw view of a dense diagonal tile.
#[derive(Clone, Copy)]
pub(crate) struct DiagView(pub(crate) *mut Tile);
// SAFETY: DiagView is a bare pointer; dereferencing goes through the unsafe
// `get`, whose contract requires runtime-granted access, and the STF DAG
// serializes writers of each tile handle.
unsafe impl Send for DiagView {}
// SAFETY: as above — sharing the view grants nothing without `get`.
unsafe impl Sync for DiagView {}

impl DiagView {
    /// # Safety
    /// Caller must hold runtime-granted access to the corresponding handle
    /// and the owning `TlrMatrix` must outlive the synchronous run.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn get<'a>(self) -> &'a mut Tile {
        unsafe { &mut *self.0 }
    }
}

/// Raw view of a low-rank tile.
#[derive(Clone, Copy)]
pub(crate) struct LrView(pub(crate) *mut LrTile);
// SAFETY: same argument as DiagView — a bare pointer whose dereference is
// gated behind the unsafe `get` and the runtime's declared access modes.
unsafe impl Send for LrView {}
// SAFETY: as above.
unsafe impl Sync for LrView {}

impl LrView {
    /// # Safety
    /// Same contract as [`DiagView::get`].
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn get<'a>(self) -> &'a mut LrTile {
        unsafe { &mut *self.0 }
    }
}

/// In-place TLR Cholesky: on success the diagonal tiles hold dense factors
/// `L_kk` (lower triangle) and the strictly-lower tiles hold the compressed
/// off-diagonal factor blocks.
///
/// Fails with [`LinalgError::NotPositiveDefinite`] when a diagonal tile loses
/// positive definiteness — at loose accuracy thresholds this is a real
/// phenomenon the paper works around by tightening `eps` (§VIII-D).
pub fn tlr_potrf(a: &mut TlrMatrix, rt: &Runtime) -> Result<ExecStats, LinalgError> {
    let nt = a.nt;
    let nb = a.nb;
    let eps = a.eps;
    let mut graph = TaskGraph::new();
    let dh = graph.register_many(nt);
    let lh: Vec<Vec<exa_runtime::Handle>> = (0..nt).map(|_| graph.register_many(nt)).collect();
    // lh[j][i] guards lr tile (i, j), i > j.
    let poison = Arc::new(Poison::default());

    for k in 0..nt {
        let dk = DiagView(a.diag_ptr(k));
        let p = poison.clone();
        let off = k * nb;
        graph.submit("potrf", 2, &[(dh[k], Access::ReadWrite)], move || {
            if p.poisoned() {
                return;
            }
            // SAFETY: declared ReadWrite on diagonal handle k — the DAG
            // grants this task exclusive access to the tile.
            let t = unsafe { dk.get() };
            if let Err(LinalgError::NotPositiveDefinite { index }) =
                dpotrf(t.rows, &mut t.data, t.rows)
            {
                p.set(LinalgError::NotPositiveDefinite { index: off + index });
            }
        });
        for (i, &lhki) in lh[k].iter().enumerate().skip(k + 1) {
            let dk = DiagView(a.diag_ptr(k));
            let aik = LrView(a.lr_ptr(i, k));
            let p = poison.clone();
            graph.submit(
                "lr-trsm",
                1,
                &[(dh[k], Access::Read), (lhki, Access::ReadWrite)],
                move || {
                    if p.poisoned() {
                        return;
                    }
                    // SAFETY: declared Read on the diagonal and ReadWrite on
                    // (i,k); the DAG serializes against writers of both.
                    let l = unsafe { dk.get() };
                    let t = unsafe { aik.get() };
                    lr_trsm(&l.data, l.rows, t);
                },
            );
        }
        for j in k + 1..nt {
            let ajk = LrView(a.lr_ptr(j, k));
            let dj = DiagView(a.diag_ptr(j));
            let p = poison.clone();
            graph.submit(
                "lr-syrk",
                0,
                &[(lh[k][j], Access::Read), (dh[j], Access::ReadWrite)],
                move || {
                    if p.poisoned() {
                        return;
                    }
                    // SAFETY: declared Read on (j,k) and ReadWrite on the
                    // diagonal j; the DAG serializes against both tiles'
                    // writers.
                    let src = unsafe { ajk.get() };
                    let dst = unsafe { dj.get() };
                    lr_syrk(src, &mut dst.data, dst.rows);
                },
            );
            for i in j + 1..nt {
                let aik = LrView(a.lr_ptr(i, k));
                let ajk = LrView(a.lr_ptr(j, k));
                let aij = LrView(a.lr_ptr(i, j));
                let p = poison.clone();
                graph.submit(
                    "lr-gemm",
                    0,
                    &[
                        (lh[k][i], Access::Read),
                        (lh[k][j], Access::Read),
                        (lh[j][i], Access::ReadWrite),
                    ],
                    move || {
                        if p.poisoned() {
                            return;
                        }
                        // SAFETY: declared Read on (i,k)/(j,k) and ReadWrite
                        // on (i,j); the DAG orders this after the panel
                        // writers and serializes the (i,j) update.
                        let x = unsafe { aik.get() };
                        let y = unsafe { ajk.get() };
                        let c = unsafe { aij.get() };
                        if let Err(e) = lr_gemm(c, x, y, eps) {
                            p.set(e);
                        }
                    },
                );
            }
        }
    }
    let stats = rt.run(graph);
    match poison.take() {
        Some(err) => Err(err),
        None => Ok(stats),
    }
}

/// `ln|A|` from the factored TLR matrix: `2·Σ_k Σ_i ln (L_kk)_ii`.
pub fn tlr_logdet(a: &TlrMatrix) -> f64 {
    let mut acc = 0.0;
    for k in 0..a.nt {
        let t = a.diag(k);
        for i in 0..t.rows {
            acc += t.at(i, i).ln();
        }
    }
    2.0 * acc
}

/// Reconstructs the dense lower-triangular factor `L` from a factored TLR
/// matrix (diagnostics/tests; zeroes the diagonal tiles' upper triangles).
pub fn tlr_factor_to_dense(a: &TlrMatrix) -> exa_linalg::Mat {
    let mut out = exa_linalg::Mat::zeros(a.n, a.n);
    for k in 0..a.nt {
        let t = a.diag(k);
        for j in 0..t.cols {
            for i in j..t.rows {
                out[(k * a.nb + i, k * a.nb + j)] = t.at(i, j);
            }
        }
    }
    for j in 0..a.nt {
        for i in j + 1..a.nt {
            let d = a.lr(i, j).to_dense();
            let rows = a.tile_extent(i);
            for (jj, col) in d.chunks_exact(rows).enumerate() {
                for (ii, &v) in col.iter().enumerate() {
                    out[(i * a.nb + ii, j * a.nb + jj)] = v;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::CompressionMethod;
    use exa_covariance::{DistanceMetric, Location, MaternKernel, MaternParams};
    use exa_linalg::frobenius_norm;
    use exa_util::Rng;
    use std::sync::Arc as StdArc;

    fn kernel(n: usize, range: f64, seed: u64) -> MaternKernel {
        let mut rng = Rng::seed_from_u64(seed);
        let mut locs: Vec<Location> = (0..n)
            .map(|_| Location::new(rng.next_f64(), rng.next_f64()))
            .collect();
        exa_covariance::sort_morton(&mut locs);
        MaternKernel::new(
            StdArc::new(locs),
            MaternParams::new(1.0, range, 0.5),
            DistanceMetric::Euclidean,
            1e-6,
        )
    }

    fn factor_error(n: usize, nb: usize, eps: f64, seed: u64) -> f64 {
        let k = kernel(n, 0.1, seed);
        let mut a = TlrMatrix::from_kernel(&k, nb, eps, CompressionMethod::Svd, 2, seed).unwrap();
        let reference = a.to_dense_symmetric();
        tlr_potrf(&mut a, &Runtime::new(4)).unwrap();
        let l = tlr_factor_to_dense(&a);
        let llt = l.matmul(&l.transposed());
        let mut diff = vec![0.0; n * n];
        for (d, (x, y)) in diff
            .iter_mut()
            .zip(llt.as_slice().iter().zip(reference.as_slice()))
        {
            *d = x - y;
        }
        frobenius_norm(n, n, &diff, n) / frobenius_norm(n, n, reference.as_slice(), n)
    }

    #[test]
    fn tight_accuracy_reproduces_matrix() {
        let err = factor_error(90, 20, 1e-12, 1);
        assert!(err < 1e-9, "LLᵀ relative error {err}");
    }

    #[test]
    fn error_tracks_threshold() {
        let loose = factor_error(90, 20, 1e-4, 2);
        let tight = factor_error(90, 20, 1e-10, 2);
        assert!(tight < loose, "tight {tight} loose {loose}");
        assert!(loose < 1e-2, "loose accuracy unexpectedly bad: {loose}");
    }

    #[test]
    fn logdet_matches_dense_reference() {
        let n = 80;
        let k = kernel(n, 0.1, 3);
        let mut a = TlrMatrix::from_kernel(&k, 16, 1e-11, CompressionMethod::Svd, 2, 3).unwrap();
        let dense = a.to_dense_symmetric();
        tlr_potrf(&mut a, &Runtime::new(2)).unwrap();
        let mut lref = dense.clone();
        exa_linalg::dpotrf(n, lref.as_mut_slice(), n).unwrap();
        let want = exa_linalg::chol::logdet_from_cholesky(n, lref.as_slice(), n);
        let got = tlr_logdet(&a);
        assert!(
            (got - want).abs() < 1e-6 * want.abs(),
            "logdet {got} vs {want}"
        );
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let k = kernel(64, 0.1, 4);
        let base = TlrMatrix::from_kernel(&k, 16, 1e-9, CompressionMethod::Svd, 1, 4).unwrap();
        let mut a1 = base.clone();
        let mut a4 = base.clone();
        tlr_potrf(&mut a1, &Runtime::new(1)).unwrap();
        tlr_potrf(&mut a4, &Runtime::new(4)).unwrap();
        // Same task set ⇒ same arithmetic ⇒ identical factors.
        let (d1, d4) = (tlr_factor_to_dense(&a1), tlr_factor_to_dense(&a4));
        assert_eq!(d1.as_slice(), d4.as_slice());
    }

    #[test]
    fn task_count_matches_dense_tile_formula() {
        let k = kernel(100, 0.1, 5);
        let mut a = TlrMatrix::from_kernel(&k, 20, 1e-9, CompressionMethod::Svd, 1, 5).unwrap();
        let stats = tlr_potrf(&mut a, &Runtime::new(2)).unwrap();
        let nt = 5usize;
        let expected = nt + nt * (nt - 1) / 2 * 2 + nt * (nt - 1) * (nt - 2) / 6;
        assert_eq!(stats.tasks_executed, expected);
    }

    #[test]
    fn indefinite_matrix_reports_failure() {
        // Assemble a valid TLR matrix, then corrupt a diagonal tile.
        let k = kernel(60, 0.1, 6);
        let mut a = TlrMatrix::from_kernel(&k, 16, 1e-9, CompressionMethod::Svd, 1, 6).unwrap();
        let t = a.diag_mut(1);
        for i in 0..t.rows {
            *t.at_mut(i, i) = -1.0;
        }
        let err = tlr_potrf(&mut a, &Runtime::new(2)).unwrap_err();
        match err {
            LinalgError::NotPositiveDefinite { index } => {
                assert!(index > 16, "failure must be localized to tile 1+: {index}")
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn ranks_stay_bounded_during_factorization() {
        let n = 120;
        let k = kernel(n, 0.1, 7);
        let mut a = TlrMatrix::from_kernel(&k, 24, 1e-7, CompressionMethod::Svd, 2, 7).unwrap();
        let before = a.rank_stats();
        tlr_potrf(&mut a, &Runtime::new(4)).unwrap();
        let after = a.rank_stats();
        // Recompression keeps ranks in the same regime (they may grow
        // somewhat as Schur updates add detail, but must not explode to nb).
        assert!(
            after.max <= 3 * before.max.max(4),
            "before {before:?} after {after:?}"
        );
        assert!(after.max < 24);
    }

    #[test]
    fn single_tile_factorization_is_dense_cholesky() {
        let k = kernel(12, 0.1, 8);
        let mut a = TlrMatrix::from_kernel(&k, 16, 1e-9, CompressionMethod::Svd, 1, 8).unwrap();
        let dense = a.to_dense_symmetric();
        tlr_potrf(&mut a, &Runtime::new(1)).unwrap();
        let mut lref = dense.clone();
        exa_linalg::dpotrf(12, lref.as_mut_slice(), 12).unwrap();
        let l = tlr_factor_to_dense(&a);
        for j in 0..12 {
            for i in j..12 {
                assert!((l[(i, j)] - lref[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn strong_correlation_needs_tight_accuracy() {
        // Mirrors the paper's §VIII-D finding: strongly correlated fields
        // (θ₂ = 0.3) factored at loose accuracy either fail or lose fidelity.
        let n = 100;
        let k = kernel(n, 0.3, 9);
        let mut tight =
            TlrMatrix::from_kernel(&k, 20, 1e-12, CompressionMethod::Svd, 2, 9).unwrap();
        let reference = tight.to_dense_symmetric();
        tlr_potrf(&mut tight, &Runtime::new(2)).unwrap();
        let l = tlr_factor_to_dense(&tight);
        let llt = l.matmul(&l.transposed());
        let mut diff = vec![0.0; n * n];
        for (d, (x, y)) in diff
            .iter_mut()
            .zip(llt.as_slice().iter().zip(reference.as_slice()))
        {
            *d = x - y;
        }
        let err = frobenius_norm(n, n, &diff, n) / frobenius_norm(n, n, reference.as_slice(), n);
        assert!(err < 1e-8, "strong-correlation tight-accuracy error {err}");
    }
}
