//! Fixed-accuracy tile compression: SVD, randomized SVD, and ACA.
//!
//! The paper (§V) lists the three compressors HiCMA supports; all three are
//! provided here with the same contract: given a tile and a threshold `eps`,
//! return `U·Vᵀ` with relative 2-norm error `≲ eps` and the smallest rank the
//! method can find.
//!
//! * [`CompressionMethod::Svd`] — exact Jacobi SVD, the reference truth.
//! * [`CompressionMethod::Rsvd`] — adaptive randomized SVD (default; this is
//!   what large dense tiles use).
//! * [`CompressionMethod::Aca`] — adaptive cross approximation with partial
//!   pivoting; needs only `O((m+n)·k)` *entry evaluations*, so the TLR
//!   assembly can skip materializing dense off-diagonal tiles entirely.

use crate::lr::LrTile;
use exa_covariance::CovarianceKernel;
use exa_linalg::{jacobi_svd, rsvd_cut, truncation_rank_cut, Cutoff, LinalgError, RsvdOptions};
use exa_util::Rng;

/// Which algorithm compresses a tile to the accuracy threshold.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CompressionMethod {
    /// Exact one-sided Jacobi SVD (most accurate, `O(m n²)`).
    Svd,
    /// Adaptive randomized SVD (Halko et al.), the default.
    #[default]
    Rsvd,
    /// Adaptive cross approximation with partial pivoting.
    Aca,
}

impl std::fmt::Display for CompressionMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressionMethod::Svd => write!(f, "SVD"),
            CompressionMethod::Rsvd => write!(f, "RSVD"),
            CompressionMethod::Aca => write!(f, "ACA"),
        }
    }
}

/// Compresses a dense column-major `m × n` tile to relative accuracy `eps`.
pub fn compress_dense(
    m: usize,
    n: usize,
    a: &[f64],
    lda: usize,
    eps: f64,
    method: CompressionMethod,
    rng: &mut Rng,
) -> Result<LrTile, LinalgError> {
    assert!(eps > 0.0, "accuracy threshold must be positive");
    match method {
        CompressionMethod::Svd => {
            let mut svd = jacobi_svd(m, n, a, lda)?;
            let k = truncation_rank_cut(&svd.s, Cutoff::Absolute(eps));
            svd.truncate(k);
            Ok(LrTile::from_svd(&svd))
        }
        CompressionMethod::Rsvd => {
            let svd = rsvd_cut(
                m,
                n,
                a,
                lda,
                Cutoff::Absolute(eps),
                RsvdOptions::default(),
                rng,
            )?;
            Ok(LrTile::from_svd(&svd))
        }
        CompressionMethod::Aca => {
            let entry = |i: usize, j: usize| a[i + j * lda];
            Ok(aca(m, n, entry, eps))
        }
    }
}

/// Compresses the `nrows × ncols` block `Σ[row_off.., col_off..]` of a
/// covariance kernel without materializing it densely (ACA), or through a
/// dense scratch tile (SVD/RSVD).
#[allow(clippy::too_many_arguments)]
pub fn compress_kernel_block<K: CovarianceKernel>(
    kernel: &K,
    row_off: usize,
    nrows: usize,
    col_off: usize,
    ncols: usize,
    eps: f64,
    method: CompressionMethod,
    rng: &mut Rng,
) -> Result<LrTile, LinalgError> {
    match method {
        CompressionMethod::Aca => {
            let entry = |i: usize, j: usize| kernel.entry(row_off + i, col_off + j);
            Ok(aca(nrows, ncols, entry, eps))
        }
        _ => {
            let mut dense = vec![0.0; nrows * ncols];
            kernel.fill_tile(row_off, nrows, col_off, ncols, &mut dense, nrows);
            compress_dense(nrows, ncols, &dense, nrows, eps, method, rng)
        }
    }
}

/// Adaptive cross approximation with partial pivoting (Bebendorf).
///
/// Builds rank-1 cross updates `A ← A − u vᵀ` until the increment's 2-norm
/// (`‖u‖·‖v‖`, the singular value of the rank-1 term) drops below the
/// absolute threshold `eps` — the same fixed-accuracy semantics as the
/// SVD-based compressors.
pub fn aca(m: usize, n: usize, entry: impl Fn(usize, usize) -> f64, eps: f64) -> LrTile {
    let max_rank = m.min(n);
    let mut us: Vec<Vec<f64>> = Vec::new();
    let mut vs: Vec<Vec<f64>> = Vec::new();
    let mut used_rows = vec![false; m];
    let mut used_cols = vec![false; n];
    let mut i_star = 0usize;

    while us.len() < max_rank {
        used_rows[i_star] = true;
        // Residual row i*: A[i*,:] − Σ_k u_k[i*] v_k.
        let mut row: Vec<f64> = (0..n).map(|j| entry(i_star, j)).collect();
        for (u, v) in us.iter().zip(&vs) {
            let c = u[i_star];
            if c != 0.0 {
                for (r, &vv) in row.iter_mut().zip(v.iter()) {
                    *r -= c * vv;
                }
            }
        }
        // Pivot column: largest residual entry among unused columns.
        let mut j_star = usize::MAX;
        let mut best = 0.0f64;
        for (j, &r) in row.iter().enumerate() {
            if !used_cols[j] && r.abs() > best {
                best = r.abs();
                j_star = j;
            }
        }
        if j_star == usize::MAX || best == 0.0 {
            // Residual row is exactly zero: try another unused row, or stop.
            match next_unused(&used_rows) {
                Some(next) => {
                    i_star = next;
                    continue;
                }
                None => break,
            }
        }
        used_cols[j_star] = true;
        let pivot = row[j_star];
        let v_new: Vec<f64> = row.iter().map(|&r| r / pivot).collect();
        // Residual column j*: A[:,j*] − Σ_k u_k v_k[j*].
        let mut col: Vec<f64> = (0..m).map(|i| entry(i, j_star)).collect();
        for (u, v) in us.iter().zip(&vs) {
            let c = v[j_star];
            if c != 0.0 {
                for (cc, &uu) in col.iter_mut().zip(u.iter()) {
                    *cc -= c * uu;
                }
            }
        }
        let u_new = col;

        let u_norm2: f64 = u_new.iter().map(|x| x * x).sum();
        let v_norm2: f64 = v_new.iter().map(|x| x * x).sum();

        // Next row pivot: largest entry of u_new among unused rows (pick
        // before moving u_new).
        let mut next_i = usize::MAX;
        let mut best_u = -1.0f64;
        for (i, &u) in u_new.iter().enumerate() {
            if !used_rows[i] && u.abs() > best_u {
                best_u = u.abs();
                next_i = i;
            }
        }

        us.push(u_new);
        vs.push(v_new);

        // Convergence: the rank-1 increment's singular value fell under the
        // absolute threshold.
        if (u_norm2 * v_norm2).sqrt() <= eps {
            break;
        }
        match next_i {
            usize::MAX => break,
            i => i_star = i,
        }
    }

    let k = us.len();
    let mut u = Vec::with_capacity(m * k);
    let mut v = Vec::with_capacity(n * k);
    for uc in &us {
        u.extend_from_slice(uc);
    }
    for vc in &vs {
        v.extend_from_slice(vc);
    }
    LrTile::from_factors(m, n, k, u, v)
}

fn next_unused(used: &[bool]) -> Option<usize> {
    used.iter().position(|&u| !u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exa_covariance::{DistanceMetric, Location, MaternKernel, MaternParams};
    use exa_linalg::{frobenius_norm, Mat};
    use std::sync::Arc;

    /// A tile of a Matérn covariance between two well-separated clusters —
    /// numerically low rank, the exact structure TLR exploits.
    fn separated_covariance_tile(m: usize, n: usize, seed: u64) -> Mat {
        let mut rng = Rng::seed_from_u64(seed);
        let mut locs = Vec::with_capacity(m + n);
        for _ in 0..m {
            locs.push(Location::new(rng.uniform(0.0, 0.3), rng.uniform(0.0, 0.3)));
        }
        for _ in 0..n {
            locs.push(Location::new(rng.uniform(0.7, 1.0), rng.uniform(0.7, 1.0)));
        }
        let kernel = MaternKernel::new(
            Arc::new(locs),
            MaternParams::new(1.0, 0.3, 0.5),
            DistanceMetric::Euclidean,
            0.0,
        );
        Mat::from_fn(m, n, |i, j| kernel.entry(i, m + j))
    }

    fn rel_error(a: &Mat, t: &LrTile) -> f64 {
        let d = t.to_dense();
        let mut diff = vec![0.0; d.len()];
        for (x, (p, q)) in diff.iter_mut().zip(d.iter().zip(a.as_slice())) {
            *x = p - q;
        }
        frobenius_norm(a.nrows(), a.ncols(), &diff, a.nrows())
            / frobenius_norm(a.nrows(), a.ncols(), a.as_slice(), a.nrows())
    }

    #[test]
    fn all_methods_meet_threshold_on_covariance_tile() {
        let a = separated_covariance_tile(40, 36, 1);
        for method in [
            CompressionMethod::Svd,
            CompressionMethod::Rsvd,
            CompressionMethod::Aca,
        ] {
            for eps in [1e-5, 1e-7, 1e-9] {
                let mut rng = Rng::seed_from_u64(2);
                let t = compress_dense(40, 36, a.as_slice(), 40, eps, method, &mut rng).unwrap();
                let err = rel_error(&a, &t);
                // ACA's stopping heuristic can overshoot slightly; allow 50×.
                assert!(
                    err <= 50.0 * eps,
                    "{method} eps={eps}: rel err {err}, rank {}",
                    t.rank()
                );
                assert!(t.rank() < 20, "{method} rank {} not low", t.rank());
            }
        }
    }

    #[test]
    fn lower_accuracy_gives_lower_rank() {
        let a = separated_covariance_tile(48, 48, 3);
        let mut rng = Rng::seed_from_u64(4);
        let loose = compress_dense(
            48,
            48,
            a.as_slice(),
            48,
            1e-3,
            CompressionMethod::Svd,
            &mut rng,
        )
        .unwrap();
        let tight = compress_dense(
            48,
            48,
            a.as_slice(),
            48,
            1e-11,
            CompressionMethod::Svd,
            &mut rng,
        )
        .unwrap();
        assert!(loose.rank() <= tight.rank());
        assert!(loose.rank() >= 1);
    }

    #[test]
    fn aca_exact_on_exactly_low_rank_matrix() {
        let mut rng = Rng::seed_from_u64(5);
        let u = Mat::gaussian(30, 3, &mut rng);
        let v = Mat::gaussian(20, 3, &mut rng);
        let a = u.matmul(&v.transposed());
        let t = aca(30, 20, |i, j| a[(i, j)], 1e-12);
        assert!(t.rank() <= 4, "rank {}", t.rank());
        assert!(rel_error(&a, &t) < 1e-10);
    }

    #[test]
    fn kernel_block_aca_avoids_dense_path() {
        let mut rng = Rng::seed_from_u64(6);
        let mut locs = Vec::new();
        for _ in 0..60 {
            locs.push(Location::new(rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)));
        }
        let kernel = MaternKernel::new(
            Arc::new(locs),
            MaternParams::new(1.0, 0.1, 0.5),
            DistanceMetric::Euclidean,
            0.0,
        );
        let t = compress_kernel_block(
            &kernel,
            0,
            25,
            30,
            30,
            1e-7,
            CompressionMethod::Aca,
            &mut rng,
        )
        .unwrap();
        let dense = Mat::from_fn(25, 30, |i, j| kernel.entry(i, 30 + j));
        assert!(rel_error(&dense, &t) < 1e-4);
    }

    #[test]
    fn zero_matrix_compresses_to_rank_zero() {
        let t = aca(10, 10, |_, _| 0.0, 1e-9);
        assert_eq!(t.rank(), 0);
        let mut rng = Rng::seed_from_u64(7);
        let z = vec![0.0; 100];
        let t2 = compress_dense(10, 10, &z, 10, 1e-9, CompressionMethod::Svd, &mut rng).unwrap();
        assert_eq!(t2.rank(), 0);
    }

    #[test]
    fn svd_and_rsvd_agree_on_rank() {
        let a = separated_covariance_tile(32, 32, 8);
        let mut rng = Rng::seed_from_u64(9);
        let s = compress_dense(
            32,
            32,
            a.as_slice(),
            32,
            1e-7,
            CompressionMethod::Svd,
            &mut rng,
        )
        .unwrap();
        let r = compress_dense(
            32,
            32,
            a.as_slice(),
            32,
            1e-7,
            CompressionMethod::Rsvd,
            &mut rng,
        )
        .unwrap();
        // RSVD may keep a few extra triplets but must be in the same regime.
        assert!(r.rank() >= s.rank());
        assert!(
            r.rank() <= s.rank() + 8,
            "svd {} rsvd {}",
            s.rank(),
            r.rank()
        );
    }
}
