//! Property-based tests for the TLR layer: compression error bounds vs the
//! requested accuracy, recompression idempotence, and end-to-end
//! factorization/solve residuals across randomized geometries and thresholds.

use exa_covariance::{sort_morton, DistanceMetric, Location, MaternKernel, MaternParams};
use exa_linalg::{frobenius_norm, Mat};
use exa_runtime::Runtime;
use exa_tlr::{
    compress_dense, recompress, tlr_potrf, tlr_potrs, CompressionMethod, LrTile, TlrMatrix,
};
use exa_util::Rng;
use proptest::prelude::*;
use std::sync::Arc;

fn covariance_kernel(n: usize, range: f64, seed: u64) -> MaternKernel {
    let mut rng = Rng::seed_from_u64(seed);
    let mut locs: Vec<Location> = (0..n)
        .map(|_| Location::new(rng.next_f64(), rng.next_f64()))
        .collect();
    sort_morton(&mut locs);
    MaternKernel::new(
        Arc::new(locs),
        MaternParams::new(1.0, range, 0.5),
        DistanceMetric::Euclidean,
        1e-6,
    )
}

fn abs_fro_error(dense: &Mat, t: &LrTile) -> f64 {
    let d = t.to_dense();
    let mut diff = vec![0.0; d.len()];
    for (x, (p, q)) in diff.iter_mut().zip(d.iter().zip(dense.as_slice())) {
        *x = p - q;
    }
    frobenius_norm(dense.nrows(), dense.ncols(), &diff, dense.nrows())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn compression_error_bounded_by_threshold(
        m in 8usize..40,
        n in 8usize..40,
        eps_exp in 3u32..10,
        seed in 0u64..500,
    ) {
        let eps = 10f64.powi(-(eps_exp as i32));
        let mut rng = Rng::seed_from_u64(seed);
        // Low-rank plus small noise: a realistic compressible tile.
        let u = Mat::gaussian(m, 3, &mut rng);
        let v = Mat::gaussian(n, 3, &mut rng);
        let a = u.matmul(&v.transposed());
        for method in [CompressionMethod::Svd, CompressionMethod::Rsvd, CompressionMethod::Aca] {
            let t = compress_dense(m, n, a.as_slice(), m, eps, method, &mut rng).unwrap();
            let err = abs_fro_error(&a, &t);
            // Absolute 2-norm cut at eps ⇒ Frobenius error ≤ √min(m,n)·eps;
            // ACA's heuristic gets a wider constant.
            let bound = 100.0 * eps * (m.min(n) as f64).sqrt();
            prop_assert!(err <= bound, "{method} eps={eps}: err {err} > {bound}");
        }
    }

    #[test]
    fn recompress_is_idempotent_and_bounded(
        m in 6usize..30,
        n in 6usize..30,
        k in 1usize..6,
        seed in 0u64..500,
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let u = Mat::gaussian(m, k, &mut rng);
        let v = Mat::gaussian(n, k, &mut rng);
        let mut t = LrTile::from_factors(
            m, n, k, u.as_slice().to_vec(), v.as_slice().to_vec(),
        );
        let original = Mat::from_vec(m, n, t.to_dense());
        let eps = 1e-9;
        recompress(&mut t, eps).unwrap();
        let r1 = t.rank();
        let err1 = abs_fro_error(&original, &t);
        prop_assert!(err1 <= 100.0 * eps * (m.min(n) as f64).sqrt());
        recompress(&mut t, eps).unwrap();
        prop_assert!(t.rank() <= r1, "second recompression grew the rank");
    }

    #[test]
    fn factor_solve_residual_tracks_eps(
        n in 40usize..90,
        nb_div in 3usize..6,
        seed in 0u64..500,
    ) {
        let nb = (n / nb_div).max(8);
        let kern = covariance_kernel(n, 0.1, seed);
        let mut a = TlrMatrix::from_kernel(
            &kern, nb, 1e-9, CompressionMethod::Svd, 2, seed,
        ).unwrap();
        let dense = a.to_dense_symmetric();
        let rt = Runtime::new(2);
        tlr_potrf(&mut a, &rt).unwrap();
        let mut rng = Rng::seed_from_u64(seed + 1);
        let b = Mat::gaussian(n, 2, &mut rng);
        let mut x = b.clone();
        tlr_potrs(&mut a, &mut x, &rt);
        let ax = dense.matmul(&x);
        let mut r = vec![0.0; n * 2];
        for (v, (p, q)) in r.iter_mut().zip(ax.as_slice().iter().zip(b.as_slice())) {
            *v = p - q;
        }
        let res = frobenius_norm(n, 2, &r, n);
        let bn = frobenius_norm(n, 2, b.as_slice(), n);
        prop_assert!(res <= 1e-4 * bn, "relative residual {}", res / bn);
    }

    #[test]
    fn tlr_memory_never_exceeds_dense_by_much(
        n in 60usize..140,
        seed in 0u64..500,
    ) {
        let kern = covariance_kernel(n, 0.05, seed);
        let tlr = TlrMatrix::from_kernel(
            &kern, n / 4, 1e-7, CompressionMethod::Rsvd, 2, seed,
        ).unwrap();
        // U+V factors cost at most 2·nb·k ≤ 2·nb·nb per tile = 2× dense.
        prop_assert!(tlr.bytes() <= 2 * tlr.dense_bytes());
        let stats = tlr.rank_stats();
        prop_assert!(stats.max <= n / 4);
    }
}
