//! Acceptance tests for the session API's factor reuse: after `fit`/
//! `at_params`, `FittedModel::predict` must (a) perform **zero** further
//! `potrf` calls, (b) agree across backends with a freshly-factored
//! one-shot session to 1e-10, and (c) agree with an independent dense-LAPACK
//! reference implementation of Eq. 4.

use exa_covariance::{CovarianceKernel, DistanceMetric, Location, MaternKernel, MaternParams};
use exa_geostat::{
    factorization_count, holdout_split, synthetic_locations, Backend, GeoModel, LikelihoodConfig,
};
use exa_linalg::{dpotrf, dtrsm, Mat, Side, Trans};
use exa_runtime::Runtime;
use exa_util::Rng;
use std::sync::Arc;

struct Holdout {
    observed: Vec<Location>,
    z_obs: Vec<f64>,
    targets: Vec<Location>,
}

fn holdout_problem(side: usize, m: usize, seed: u64, rt: &Runtime) -> Holdout {
    let mut rng = Rng::seed_from_u64(seed);
    let locations = Arc::new(synthetic_locations(side, &mut rng));
    let gen = GeoModel::<MaternKernel>::builder()
        .locations(locations.clone())
        .nugget(0.0)
        .tile_size(32)
        .build()
        .unwrap()
        .at_params(&[1.0, 0.1, 0.5], rt)
        .unwrap();
    let z = gen.simulate(&mut rng, rt);
    let split = holdout_split(locations.len(), m, &mut rng);
    Holdout {
        observed: split.estimation.iter().map(|&i| locations[i]).collect(),
        z_obs: split.estimation.iter().map(|&i| z[i]).collect(),
        targets: split.validation.iter().map(|&i| locations[i]).collect(),
    }
}

#[test]
fn reused_factor_matches_fresh_one_shot_session() {
    // A long-lived session predicting off its cached factor must agree with
    // a session factored from scratch for the same θ (what a caller without
    // the cache would pay for), on every backend — and must not refactorize.
    let rt = Runtime::new(4);
    let h = holdout_problem(14, 25, 1, &rt);
    let params = MaternParams::new(0.9, 0.12, 0.6); // a θ̂-like point off the truth
    for backend in [Backend::FullBlock, Backend::FullTile, Backend::tlr(1e-11)] {
        let cfg = LikelihoodConfig { nb: 32, seed: 1 };
        let build = || {
            GeoModel::<MaternKernel>::builder()
                .locations(Arc::new(h.observed.clone()))
                .data(h.z_obs.clone())
                .backend(backend)
                .config(cfg)
                .build()
                .unwrap()
                .at_params(&params.to_array(), &rt)
                .unwrap()
        };
        let session = build();
        let before = factorization_count();
        let first = session.predict(&h.targets, &rt).unwrap();
        let second = session.predict(&h.targets, &rt).unwrap();
        assert_eq!(
            factorization_count(),
            before,
            "{backend:?}: session prediction must not re-factorize"
        );
        assert_eq!(first.values, second.values, "cached factor is stable");
        let fresh = build().predict(&h.targets, &rt).unwrap();
        assert_eq!(fresh.values.len(), first.values.len());
        for (a, b) in fresh.values.iter().zip(&first.values) {
            assert!(
                (a - b).abs() <= 1e-10 * a.abs().max(1.0),
                "{backend:?}: fresh {a} vs cached {b}"
            );
        }
    }
}

#[test]
fn session_predict_matches_dense_lapack_reference() {
    // Independent implementation of Ẑ₁ = Σ₁₂ Σ₂₂⁻¹ Z₂: dense kernel matrix,
    // dense Cholesky, two triangular solves, entrywise Σ₁₂ — no shared code
    // with the session path beyond the kernel itself.
    let rt = Runtime::new(4);
    let h = holdout_problem(12, 18, 2, &rt);
    let params = MaternParams::new(1.0, 0.1, 0.5);
    let n = h.observed.len();
    let kernel = MaternKernel::new(
        Arc::new(h.observed.clone()),
        params,
        DistanceMetric::Euclidean,
        1e-8,
    );
    let mut sigma = Mat::from_fn(n, n, |i, j| kernel.entry(i, j));
    dpotrf(n, sigma.as_mut_slice(), n).unwrap();
    let mut alpha = Mat::from_vec(n, 1, h.z_obs.clone());
    for trans in [Trans::No, Trans::Yes] {
        dtrsm(
            Side::Left,
            trans,
            n,
            1,
            1.0,
            sigma.as_slice(),
            n,
            alpha.as_mut_slice(),
            n,
        );
    }
    let reference: Vec<f64> = h
        .targets
        .iter()
        .map(|t| {
            h.observed
                .iter()
                .zip(alpha.as_slice())
                .map(|(o, &a)| kernel.cross(t, o) * a)
                .sum()
        })
        .collect();

    let fitted = GeoModel::<MaternKernel>::builder()
        .locations(Arc::new(h.observed.clone()))
        .data(h.z_obs.clone())
        .backend(Backend::FullTile)
        .tile_size(32)
        .build()
        .unwrap()
        .at_params(&params.to_array(), &rt)
        .unwrap();
    let session = fitted.predict(&h.targets, &rt).unwrap();
    for (a, b) in reference.iter().zip(&session.values) {
        assert!(
            (a - b).abs() <= 1e-8 * a.abs().max(1.0),
            "reference {a} vs session {b}"
        );
    }
}

#[test]
fn repeated_predictions_amortize_one_factorization() {
    let rt = Runtime::new(2);
    let h = holdout_problem(10, 10, 3, &rt);
    let model = GeoModel::<MaternKernel>::builder()
        .locations(Arc::new(h.observed.clone()))
        .data(h.z_obs.clone())
        .tile_size(25)
        .build()
        .unwrap();
    let before = factorization_count();
    let fitted = model.at_params(&[1.0, 0.1, 0.5], &rt).unwrap();
    assert_eq!(factorization_count(), before + 1, "at_params factors once");
    for chunk in h.targets.chunks(3) {
        let p = fitted.predict(chunk, &rt).unwrap();
        assert_eq!(p.values.len(), chunk.len());
        let (_, vars) = fitted.predict_with_variance(chunk, &rt).unwrap();
        assert_eq!(vars.len(), chunk.len());
    }
    assert_eq!(
        factorization_count(),
        before + 1,
        "every subsequent prediction reuses the one factor"
    );
}
