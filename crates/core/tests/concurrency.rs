//! Concurrency guarantees of the session layer: one fitted model shared
//! across prediction threads must behave exactly like serial use.
//!
//! `exa-serve` workers hold `Arc<FittedModel<K>>` and predict concurrently;
//! these tests prove (a) the sharing compiles and runs from `std::thread`
//! (the `Send + Sync` static assertions live in `exa-geostat` itself), and
//! (b) concurrent predictions are **bit-for-bit** identical to serial ones —
//! no data races, no scheduling-dependent reductions.

use exa_covariance::{Location, MaternKernel};
use exa_geostat::{factorization_count, synthetic_locations, Backend, GeoModel, Prediction};
use exa_runtime::Runtime;
use exa_util::Rng;
use std::sync::Arc;

fn fitted_session(backend: Backend) -> Arc<exa_geostat::FittedModel<MaternKernel>> {
    let mut rng = Rng::seed_from_u64(77);
    let locations = Arc::new(synthetic_locations(12, &mut rng));
    let rt = Runtime::new(2);
    let gen = GeoModel::<MaternKernel>::builder()
        .locations(locations.clone())
        .nugget(0.0)
        .tile_size(36)
        .build()
        .unwrap()
        .at_params(&[1.0, 0.1, 0.5], &rt)
        .unwrap();
    let z = gen.simulate(&mut rng, &rt);
    Arc::new(
        GeoModel::<MaternKernel>::builder()
            .locations(locations)
            .data(z)
            .backend(backend)
            .tile_size(36)
            .build()
            .unwrap()
            .at_params(&[1.0, 0.1, 0.5], &rt)
            .unwrap(),
    )
}

fn thread_targets(t: usize) -> Vec<Location> {
    (0..5)
        .map(|i| {
            Location::new(
                0.07 + 0.11 * ((t * 5 + i) % 9) as f64,
                0.05 + 0.13 * ((t * 3 + i) % 7) as f64,
            )
        })
        .collect()
}

#[test]
fn eight_threads_reproduce_serial_predictions_bit_for_bit() {
    for backend in [Backend::FullTile, Backend::tlr(1e-9)] {
        let fitted = fitted_session(backend);
        // Serial references, one per thread's work item.
        let serial: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)> = (0..8)
            .map(|t| {
                let rt = Runtime::new(1);
                let targets = thread_targets(t);
                let p = fitted.predict(&targets, &rt).unwrap();
                let b = fitted
                    .predict_batch(&[targets.as_slice()])
                    .unwrap()
                    .remove(0);
                let (_, v) = fitted.predict_with_variance(&targets, &rt).unwrap();
                (p.values, b.values, v)
            })
            .collect();
        // The same work from 8 threads hammering one shared session.
        let concurrent: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|t| {
                    let fitted = Arc::clone(&fitted);
                    scope.spawn(move || {
                        let rt = Runtime::new(1);
                        let targets = thread_targets(t);
                        let before = factorization_count();
                        let p: Prediction = fitted.predict(&targets, &rt).unwrap();
                        let b = fitted
                            .predict_batch(&[targets.as_slice()])
                            .unwrap()
                            .remove(0);
                        let (_, v) = fitted.predict_with_variance(&targets, &rt).unwrap();
                        assert_eq!(
                            factorization_count(),
                            before,
                            "no thread may trigger a factorization"
                        );
                        (p.values, b.values, v)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (t, (s, c)) in serial.iter().zip(&concurrent).enumerate() {
            assert_eq!(s.0, c.0, "{backend:?} thread {t}: predict must be exact");
            assert_eq!(
                s.1, c.1,
                "{backend:?} thread {t}: predict_batch must be exact"
            );
            assert_eq!(s.2, c.2, "{backend:?} thread {t}: variances must be exact");
        }
    }
}
