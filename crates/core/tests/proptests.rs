//! Property-based tests for the geostatistics layer: optimizer contracts,
//! likelihood invariances, and prediction consistency across randomized
//! problem instances.

use exa_covariance::{CovarianceKernel, DistanceMetric, MaternKernel, MaternParams};
use exa_geostat::{
    eval_log_likelihood as log_likelihood, nelder_mead_max, synthetic_locations_n, Backend, Bounds,
    GeoModel, LikelihoodConfig, NelderMeadConfig,
};
use exa_runtime::Runtime;
use exa_util::Rng;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn nelder_mead_solves_random_concave_quadratics(
        cx in -0.8f64..0.8,
        cy in -0.8f64..0.8,
        ax in 0.5f64..5.0,
        ay in 0.5f64..5.0,
        x0 in -1.5f64..1.5,
        y0 in -1.5f64..1.5,
    ) {
        let f = |x: &[f64]| -(ax * (x[0] - cx).powi(2) + ay * (x[1] - cy).powi(2));
        let bounds = Bounds::new(vec![-2.0, -2.0], vec![2.0, 2.0]);
        let r = nelder_mead_max(f, &[x0, y0], &bounds, NelderMeadConfig {
            max_evals: 600,
            ..Default::default()
        });
        prop_assert!((r.x[0] - cx).abs() < 1e-3, "{:?} vs ({cx},{cy})", r.x);
        prop_assert!((r.x[1] - cy).abs() < 1e-3, "{:?} vs ({cx},{cy})", r.x);
        // Iterates always inside the box.
        prop_assert!(r.x.iter().all(|v| (-2.0..=2.0).contains(v)));
    }

    #[test]
    fn likelihood_is_invariant_to_backend_at_machine_precision(
        n in 36usize..100,
        range in 0.05f64..0.25,
        seed in 0u64..1000,
    ) {
        let params = MaternParams::new(1.0, range, 0.5);
        let rt = Runtime::new(2);
        let mut rng = Rng::seed_from_u64(seed);
        let locs = Arc::new(synthetic_locations_n(n, &mut rng));
        let kernel = MaternKernel::new(locs, params, DistanceMetric::Euclidean, 1e-8);
        let mut z = vec![0.0; n];
        rng.fill_gaussian(&mut z);
        let cfg = LikelihoodConfig { nb: (n / 3).max(8), seed };
        let block = log_likelihood(&kernel, &z, Backend::FullBlock, cfg, &rt).unwrap();
        let tile = log_likelihood(&kernel, &z, Backend::FullTile, cfg, &rt).unwrap();
        prop_assert!(
            (block.value - tile.value).abs() <= 1e-6 * block.value.abs().max(1.0),
            "block {} vs tile {}", block.value, tile.value
        );
        // Pieces are consistent: logdet finite, quadratic ≥ 0.
        prop_assert!(tile.logdet.is_finite());
        prop_assert!(tile.quadratic >= 0.0);
    }

    #[test]
    fn likelihood_scales_correctly_with_variance(
        n in 36usize..80,
        scale in 1.5f64..4.0,
        seed in 0u64..1000,
    ) {
        // Analytic identity: with Σ(θ₁) = θ₁·R, the profile over θ₁ gives
        // ℓ(θ₁) = const − (n/2)ln θ₁ − (1/2θ₁)·ZᵀR⁻¹Z. Verify the evaluator
        // respects it by comparing two variance values directly.
        let rt = Runtime::new(2);
        let mut rng = Rng::seed_from_u64(seed);
        let locs = Arc::new(synthetic_locations_n(n, &mut rng));
        let base = MaternParams::new(1.0, 0.1, 0.5);
        let kernel = MaternKernel::new(locs, base, DistanceMetric::Euclidean, 0.0);
        let mut z = vec![0.0; n];
        rng.fill_gaussian(&mut z);
        let cfg = LikelihoodConfig { nb: (n / 3).max(8), seed };
        let l1 = log_likelihood(&kernel, &z, Backend::FullTile, cfg, &rt).unwrap();
        let k2 = kernel.with_params(MaternParams::new(scale, 0.1, 0.5));
        let l2 = log_likelihood(&k2, &z, Backend::FullTile, cfg, &rt).unwrap();
        let predicted = l1.value - 0.5 * (n as f64) * scale.ln()
            - 0.5 * l1.quadratic * (1.0 / scale - 1.0);
        prop_assert!(
            (l2.value - predicted).abs() <= 1e-6 * l2.value.abs().max(1.0),
            "got {} predicted {predicted}", l2.value
        );
    }

    #[test]
    fn prediction_interpolates_exactly_at_observed_sites(
        n in 25usize..64,
        range in 0.05f64..0.3,
        seed in 0u64..1000,
    ) {
        // Kriging with zero nugget reproduces an observed value when the
        // "unknown" site coincides with an observed one.
        let params = MaternParams::new(1.0, range, 0.5);
        let rt = Runtime::new(2);
        let mut rng = Rng::seed_from_u64(seed);
        let locs = synthetic_locations_n(n, &mut rng);
        let mut z = vec![0.0; n];
        rng.fill_gaussian(&mut z);
        let target = vec![locs[n / 2]];
        let p = GeoModel::<MaternKernel>::builder()
            .locations(Arc::new(locs))
            .data(z.clone())
            .nugget(0.0)
            .backend(Backend::FullTile)
            .config(LikelihoodConfig { nb: (n / 2).max(8), seed })
            .build()
            .unwrap()
            .at_params(&params.to_array(), &rt)
            .unwrap()
            .predict(&target, &rt)
            .unwrap();
        prop_assert!(
            (p.values[0] - z[n / 2]).abs() <= 1e-5 * z[n / 2].abs().max(1.0),
            "kriging at an observed site: {} vs {}", p.values[0], z[n / 2]
        );
    }

    #[test]
    fn kernel_entries_symmetric_and_bounded(
        n in 10usize..40,
        variance in 0.2f64..8.0,
        range in 0.02f64..0.5,
        smoothness in 0.3f64..2.0,
        seed in 0u64..1000,
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let locs: Vec<_> = (0..n)
            .map(|_| exa_covariance::Location::new(rng.next_f64(), rng.next_f64()))
            .collect();
        let k = MaternKernel::new(
            Arc::new(locs),
            MaternParams::new(variance, range, smoothness),
            DistanceMetric::Euclidean,
            0.0,
        );
        for i in 0..n {
            prop_assert_eq!(k.entry(i, i), variance);
            for j in 0..n {
                prop_assert_eq!(k.entry(i, j), k.entry(j, i));
                prop_assert!(k.entry(i, j) <= variance + 1e-12);
                prop_assert!(k.entry(i, j) > 0.0);
            }
        }
    }
}
