//! Streaming-ingestion guarantees: incremental Cholesky updates agree with
//! from-scratch refits, downdate→update round-trips are bit-exact, and
//! background refactorizations never tear a served factor.

use exa_covariance::{CovarianceKernel, Location, MaternKernel};
use exa_geostat::{synthetic_locations_n, Backend, FittedModel, GeoModel, LiveModel, LivePolicy};
use exa_runtime::Runtime;
use exa_util::Rng;
use proptest::prelude::*;
use std::sync::Arc;

fn fitted(n: usize, seed: u64, backend: Backend) -> Arc<FittedModel<MaternKernel>> {
    let mut rng = Rng::seed_from_u64(seed);
    let locations = Arc::new(synthetic_locations_n(n, &mut rng));
    let rt = Runtime::new(2);
    let gen = GeoModel::<MaternKernel>::builder()
        .locations(locations.clone())
        .tile_size(32)
        .build()
        .unwrap()
        .at_params(&[1.0, 0.1, 0.5], &rt)
        .unwrap();
    let z = gen.simulate(&mut rng, &rt);
    Arc::new(
        GeoModel::<MaternKernel>::builder()
            .locations(locations)
            .data(z)
            .backend(backend)
            .tile_size(32)
            .build()
            .unwrap()
            .at_params(&[1.0, 0.1, 0.5], &rt)
            .unwrap(),
    )
}

fn fresh_points(k: usize, seed: u64) -> (Vec<Location>, Vec<f64>) {
    let mut rng = Rng::seed_from_u64(seed);
    let locs = synthetic_locations_n(k, &mut rng)
        .iter()
        // Offset away from the unit-square observed set so appended points
        // never coincide with existing ones (Σ stays PD).
        .map(|l| Location::new(l.x + 1.5, l.y + 0.25))
        .collect::<Vec<_>>();
    let mut vals = vec![0.0; k];
    rng.fill_gaussian(&mut vals);
    (locs, vals)
}

fn targets(m: usize, seed: u64) -> Vec<Location> {
    let mut rng = Rng::seed_from_u64(seed);
    synthetic_locations_n(m, &mut rng)
        .iter()
        .map(|l| Location::new(l.x * 0.9 + 0.03, l.y * 0.9 + 0.05))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite: k appended points via the rank-k update produce kriging
    /// means/variances matching a from-scratch fit within 1e-8 relative
    /// tolerance.
    #[test]
    fn rank_k_update_matches_from_scratch_fit(
        n in 40usize..90,
        k in 1usize..12,
        seed in 0u64..500,
    ) {
        let rt = Runtime::new(2);
        let base = fitted(n, seed, Backend::FullBlock);
        let (pts, vals) = fresh_points(k, seed ^ 0xabcd);
        let updated = base.with_appended(&pts, &vals, &rt).unwrap().expect("dense updates");
        let refit = base.refit_appended(&pts, &vals, &rt).unwrap();

        let q = targets(7, seed ^ 0x77);
        let (pu, vu) = updated.predict_with_variance(&q, &rt).unwrap();
        let (pr, vr) = refit.predict_with_variance(&q, &rt).unwrap();
        for (a, b) in pu.values.iter().zip(&pr.values) {
            prop_assert!((a - b).abs() <= 1e-8 * b.abs().max(1.0), "mean {a} vs {b}");
        }
        for (a, b) in vu.iter().zip(&vr) {
            prop_assert!((a - b).abs() <= 1e-8 * b.abs().max(1e-12), "var {a} vs {b}");
        }
    }

    /// Satellite: the downdate→update round-trip (append k, expire the same
    /// k) returns to the original factor bits-close — predictions and
    /// likelihood are bitwise identical to the untouched model.
    #[test]
    fn downdate_update_round_trip_is_bit_exact(
        n in 40usize..80,
        k in 1usize..10,
        seed in 0u64..500,
    ) {
        let rt = Runtime::new(2);
        let base = fitted(n, seed, Backend::FullBlock);
        let (pts, vals) = fresh_points(k, seed ^ 0x5a5a);
        let grown = base.with_appended(&pts, &vals, &rt).unwrap().unwrap();
        let tail: Vec<usize> = (n..n + k).collect();
        let back = grown.with_removed(&tail, &rt).unwrap().unwrap();

        let q = targets(5, seed ^ 0x99);
        let p0 = base.predict_batch(&[&q]).unwrap();
        let p1 = back.predict_batch(&[&q]).unwrap();
        for (a, b) in p0[0].values.iter().zip(&p1[0].values) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "round-trip changed bits: {} vs {}", a, b);
        }
        let (l0, l1) = (base.log_likelihood().unwrap(), back.log_likelihood().unwrap());
        prop_assert_eq!(l0.value.to_bits(), l1.value.to_bits());
    }
}

#[test]
fn live_model_observe_updates_predictions_and_drift() {
    let rt = Runtime::new(2);
    let base = fitted(64, 3, Backend::FullBlock);
    let live = LiveModel::new(base.clone(), LivePolicy::default());
    let (pts, vals) = fresh_points(5, 17);

    let before = live.snapshot();
    let out = live.observe(&pts, &vals, &rt).unwrap();
    assert!(out.used_incremental);
    assert_eq!(out.applied, 5);
    assert_eq!(out.model_points, 69);
    assert_eq!(out.updates_since_refactor, 1);

    // The snapshot taken before the observe is untouched; the new one
    // matches a from-scratch refit.
    assert_eq!(before.kernel().len(), 64);
    let now = live.snapshot();
    assert_eq!(now.kernel().len(), 69);
    let refit = base.refit_appended(&pts, &vals, &rt).unwrap();
    let q = targets(6, 5);
    let a = now.predict(&q, &rt).unwrap();
    let b = refit.predict(&q, &rt).unwrap();
    for (x, y) in a.values.iter().zip(&b.values) {
        assert!((x - y).abs() <= 1e-8 * y.abs().max(1.0), "{x} vs {y}");
    }

    let d = live.drift();
    assert_eq!(d.updates_total, 1);
    assert_eq!(d.points_ingested, 5);
    assert!(d.condition_growth.is_finite() && d.condition_growth > 0.0);

    // Expire the appended tail: back to the original predictions, bitwise.
    let out = live.expire(&(64..69).collect::<Vec<_>>(), &rt).unwrap();
    assert_eq!(out.model_points, 64);
    let round = live.snapshot();
    let p0 = base.predict_batch(&[&q]).unwrap();
    let p1 = round.predict_batch(&[&q]).unwrap();
    for (x, y) in p0[0].values.iter().zip(&p1[0].values) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    assert_eq!(live.drift().points_expired, 5);
}

#[test]
fn drift_policy_triggers_background_refit_and_resets_counters() {
    let rt = Runtime::new(2);
    let live = LiveModel::new(
        fitted(48, 9, Backend::FullBlock),
        LivePolicy {
            max_updates: 3,
            ..LivePolicy::default()
        },
    );
    let mut triggered = false;
    for i in 0..3 {
        let (pts, vals) = fresh_points(2, 100 + i);
        triggered |= live.observe(&pts, &vals, &rt).unwrap().refit_triggered;
    }
    assert!(triggered, "third update must cross max_updates=3");
    live.wait_refit_idle();
    let d = live.drift();
    assert_eq!(d.refits_triggered, 1);
    assert_eq!(d.refits_completed, 1);
    assert_eq!(d.updates_since_refactor, 0);

    // Post-refit predictions agree with a cold fit of the same data.
    let snap = live.snapshot();
    let cold = snap.refactored(&rt).unwrap();
    let q = targets(6, 11);
    let a = snap.predict(&q, &rt).unwrap();
    let b = cold.predict(&q, &rt).unwrap();
    for (x, y) in a.values.iter().zip(&b.values) {
        assert!((x - y).abs() <= 1e-8 * y.abs().max(1.0), "{x} vs {y}");
    }
}

#[test]
fn tile_backend_falls_back_to_synchronous_refit() {
    let rt = Runtime::new(2);
    let live = LiveModel::new(fitted(49, 21, Backend::FullTile), LivePolicy::default());
    let (pts, vals) = fresh_points(3, 23);
    let out = live.observe(&pts, &vals, &rt).unwrap();
    assert!(!out.used_incremental, "tile storage cannot update in place");
    assert_eq!(out.model_points, 52);
    assert_eq!(out.updates_since_refactor, 0, "fallback was a refit");
    assert_eq!(live.drift().refits_completed, 1);
}

/// Predictions issued while a background refactorization runs always
/// succeed and serve a consistent (never torn) factor.
#[test]
fn predicts_never_block_or_tear_during_background_refit() {
    let rt = Runtime::new(2);
    let live = LiveModel::new(fitted(81, 31, Backend::FullBlock), LivePolicy::default());
    let q = targets(4, 33);
    let reference = live.snapshot().predict(&q, &rt).unwrap().values;

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let live = live.clone();
            let q = q.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let rt = Runtime::new(1);
                let mut served = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let p = live
                        .snapshot()
                        .predict(&q, &rt)
                        .expect("predict during refit");
                    assert!(p.values.iter().all(|v| v.is_finite()));
                    served += 1;
                }
                served
            })
        })
        .collect();

    // Interleave forced refits and incremental updates under the readers.
    for i in 0..4 {
        let (pts, vals) = fresh_points(2, 200 + i);
        live.observe(&pts, &vals, &rt).unwrap();
        live.force_refit();
    }
    live.wait_refit_idle();
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for r in readers {
        assert!(r.join().unwrap() > 0, "readers must make progress");
    }

    // All four updates survived every refit (none lost to a swap race).
    assert_eq!(live.snapshot().kernel().len(), 81 + 8);
    let after = live.snapshot().predict(&q, &rt).unwrap().values;
    assert!(after
        .iter()
        .zip(&reference)
        .all(|(a, b)| (a - b).is_finite() && (a - b).abs() < 1.0));
}
