//! Synthetic spatial location generation (paper §VII, Figure 2).
//!
//! The paper generates irregular locations on a jittered `√n × √n` grid:
//! point `(r, l)` sits at `((r − 0.5 + X_rl)/√n, (l − 0.5 + Y_rl)/√n)` with
//! `X, Y ~ U(−0.4, 0.4)`, guaranteeing "no two locations are too close" while
//! staying irregular. Locations are then Morton-sorted (the ExaGeoStat
//! preprocessing that gives covariance tiles their low-rank structure) and
//! optionally split into estimation/validation subsets as in Figure 2.

use exa_covariance::{sort_morton, Location};
use exa_util::Rng;

/// Generates `side × side` jittered-grid locations over the unit square,
/// Morton-sorted.
pub fn synthetic_locations(side: usize, rng: &mut Rng) -> Vec<Location> {
    let mut locs = Vec::with_capacity(side * side);
    let m = side as f64;
    for r in 1..=side {
        for l in 1..=side {
            let x = (r as f64 - 0.5 + rng.uniform(-0.4, 0.4)) / m;
            let y = (l as f64 - 0.5 + rng.uniform(-0.4, 0.4)) / m;
            locs.push(Location::new(x, y));
        }
    }
    sort_morton(&mut locs);
    locs
}

/// Generates approximately `n` jittered-grid locations (rounds the grid side
/// to `⌈√n⌉` and truncates), Morton-sorted.
pub fn synthetic_locations_n(n: usize, rng: &mut Rng) -> Vec<Location> {
    let side = (n as f64).sqrt().ceil() as usize;
    let mut locs = synthetic_locations(side, rng);
    locs.truncate(n);
    locs
}

/// Jittered-grid locations inside an arbitrary rectangle (used by the
/// simulated real-data regions, where coordinates are lon/lat degrees).
pub fn gridded_locations_in(
    side: usize,
    x0: f64,
    x1: f64,
    y0: f64,
    y1: f64,
    rng: &mut Rng,
) -> Vec<Location> {
    assert!(x1 > x0 && y1 > y0, "degenerate region");
    let mut locs = Vec::with_capacity(side * side);
    let m = side as f64;
    for r in 1..=side {
        for l in 1..=side {
            let fx = (r as f64 - 0.5 + rng.uniform(-0.4, 0.4)) / m;
            let fy = (l as f64 - 0.5 + rng.uniform(-0.4, 0.4)) / m;
            locs.push(Location::new(x0 + fx * (x1 - x0), y0 + fy * (y1 - y0)));
        }
    }
    sort_morton(&mut locs);
    locs
}

/// A dataset split into estimation and held-out validation parts
/// (Figure 2: 362 `◦` points for MLE, 38 `×` points for prediction).
#[derive(Clone, Debug)]
pub struct HoldoutSplit {
    /// Indices (into the original set) used for estimation.
    pub estimation: Vec<usize>,
    /// Indices held out for prediction validation.
    pub validation: Vec<usize>,
}

/// Randomly holds out `n_validation` of `n` indices.
pub fn holdout_split(n: usize, n_validation: usize, rng: &mut Rng) -> HoldoutSplit {
    assert!(n_validation <= n, "cannot hold out more points than exist");
    let held: Vec<usize> = rng.sample_indices(n, n_validation);
    let mut is_held = vec![false; n];
    for &i in &held {
        is_held[i] = true;
    }
    HoldoutSplit {
        estimation: (0..n).filter(|&i| !is_held[i]).collect(),
        validation: held,
    }
}

/// Minimum pairwise distance of a location set (`O(n²)`; diagnostics).
pub fn min_pairwise_distance(locs: &[Location]) -> f64 {
    let mut best = f64::INFINITY;
    for i in 0..locs.len() {
        for j in i + 1..locs.len() {
            best = best.min(exa_covariance::euclidean(&locs[i], &locs[j]));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jittered_grid_covers_unit_square() {
        let mut rng = Rng::seed_from_u64(1);
        let locs = synthetic_locations(20, &mut rng);
        assert_eq!(locs.len(), 400);
        for l in &locs {
            assert!(l.x > 0.0 && l.x < 1.0, "x={}", l.x);
            assert!(l.y > 0.0 && l.y < 1.0, "y={}", l.y);
        }
    }

    #[test]
    fn no_two_points_too_close() {
        // Jitter of ±0.4 cell widths leaves ≥ 0.2/√n separation between
        // same-row neighbours; across the whole set the minimum distance must
        // stay well above zero (no duplicate points).
        let mut rng = Rng::seed_from_u64(2);
        let locs = synthetic_locations(15, &mut rng);
        let d = min_pairwise_distance(&locs);
        assert!(d > 0.2 / 15.0 * 0.5, "min distance {d}");
    }

    #[test]
    fn truncated_generation_returns_exactly_n() {
        let mut rng = Rng::seed_from_u64(3);
        let locs = synthetic_locations_n(150, &mut rng);
        assert_eq!(locs.len(), 150);
    }

    #[test]
    fn region_grid_respects_bounds() {
        let mut rng = Rng::seed_from_u64(4);
        let locs = gridded_locations_in(12, -95.0, -85.0, 29.0, 49.0, &mut rng);
        for l in &locs {
            assert!(l.x > -95.0 && l.x < -85.0);
            assert!(l.y > 29.0 && l.y < 49.0);
        }
    }

    #[test]
    fn holdout_split_partitions_indices() {
        let mut rng = Rng::seed_from_u64(5);
        let s = holdout_split(400, 38, &mut rng);
        assert_eq!(s.validation.len(), 38);
        assert_eq!(s.estimation.len(), 362);
        let mut all: Vec<usize> = s.estimation.iter().chain(&s.validation).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..400).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = synthetic_locations(10, &mut Rng::seed_from_u64(7));
        let b = synthetic_locations(10, &mut Rng::seed_from_u64(7));
        assert_eq!(a.len(), b.len());
        for (p, q) in a.iter().zip(&b) {
            assert_eq!((p.x, p.y), (q.x, q.y));
        }
    }
}
