//! Derivative-free bound-constrained maximization (the NLopt substitute).
//!
//! ExaGeoStat maximizes ℓ(θ) with NLopt's derivative-free optimizers; this
//! module rebuilds a Nelder–Mead simplex search with box constraints, which
//! plays the same role: tens of likelihood evaluations, each a full
//! factorization (the paper reports per-iteration time for exactly this
//! reason). The search runs in the caller's coordinates — the MLE driver
//! passes log-parameters so positivity is structural (paper §IV).

/// Box bounds, inclusive, one `(lo, hi)` pair per coordinate.
#[derive(Clone, Debug)]
pub struct Bounds {
    pub lo: Vec<f64>,
    pub hi: Vec<f64>,
}

impl Bounds {
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "bound length mismatch");
        assert!(
            lo.iter().zip(&hi).all(|(a, b)| a <= b),
            "lower bound exceeds upper bound"
        );
        Bounds { lo, hi }
    }

    fn clamp(&self, x: &mut [f64]) {
        for ((v, &lo), &hi) in x.iter_mut().zip(&self.lo).zip(&self.hi) {
            *v = v.clamp(lo, hi);
        }
    }

    fn dim(&self) -> usize {
        self.lo.len()
    }
}

/// Stopping rules and simplex tuning.
#[derive(Clone, Copy, Debug)]
pub struct NelderMeadConfig {
    /// Maximum objective evaluations.
    pub max_evals: usize,
    /// Stop when the simplex's objective spread falls below this.
    pub ftol: f64,
    /// Stop when the simplex collapses below this diameter.
    pub xtol: f64,
    /// Initial simplex edge length (fraction of each coordinate's box span).
    pub initial_step: f64,
}

impl Default for NelderMeadConfig {
    fn default() -> Self {
        NelderMeadConfig {
            max_evals: 400,
            ftol: 1e-9,
            xtol: 1e-9,
            initial_step: 0.10,
        }
    }
}

/// Why the search stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    FtolReached,
    XtolReached,
    MaxEvals,
}

/// Result of a maximization run.
#[derive(Clone, Debug)]
pub struct OptimResult {
    /// Arg-max found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub fx: f64,
    /// Objective evaluations spent.
    pub evaluations: usize,
    /// Simplex iterations performed.
    pub iterations: usize,
    pub stop: StopReason,
    /// Best objective value after each iteration (the MLE convergence trace).
    pub trace: Vec<f64>,
}

/// Maximizes `f` over the box with Nelder–Mead. `f` may return
/// `f64::NEG_INFINITY` (or NaN, treated the same) for infeasible points —
/// the simplex contracts away from them.
pub fn nelder_mead_max(
    mut f: impl FnMut(&[f64]) -> f64,
    x0: &[f64],
    bounds: &Bounds,
    cfg: NelderMeadConfig,
) -> OptimResult {
    let dim = bounds.dim();
    assert_eq!(x0.len(), dim, "initial point dimension mismatch");
    assert!(dim >= 1, "need at least one coordinate");
    // Standard coefficients (maximization: we track the *largest* values).
    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);

    let mut evals = 0usize;
    let clean = |v: f64| if v.is_nan() { f64::NEG_INFINITY } else { v };
    let mut eval = |x: &[f64], evals: &mut usize| -> f64 {
        *evals += 1;
        clean(f(x))
    };

    // Initial simplex: x0 plus one step along each coordinate.
    let mut start = x0.to_vec();
    bounds.clamp(&mut start);
    let mut simplex: Vec<Vec<f64>> = vec![start.clone()];
    for d in 0..dim {
        let mut v = start.clone();
        let span = (bounds.hi[d] - bounds.lo[d]).max(f64::MIN_POSITIVE);
        let step = cfg.initial_step * span;
        // Step inward if the step would leave the box.
        v[d] = if v[d] + step <= bounds.hi[d] {
            v[d] + step
        } else {
            v[d] - step
        };
        bounds.clamp(&mut v);
        simplex.push(v);
    }
    let mut values: Vec<f64> = simplex.iter().map(|v| eval(v, &mut evals)).collect();

    let mut iterations = 0usize;
    let mut trace = Vec::new();
    let stop;
    loop {
        // Sort descending (best first) for maximization.
        let mut order: Vec<usize> = (0..simplex.len()).collect();
        order.sort_by(|&a, &b| values[b].partial_cmp(&values[a]).unwrap());
        let simplex_sorted: Vec<Vec<f64>> = order.iter().map(|&i| simplex[i].clone()).collect();
        let values_sorted: Vec<f64> = order.iter().map(|&i| values[i]).collect();
        simplex = simplex_sorted;
        values = values_sorted;
        trace.push(values[0]);

        // Convergence checks.
        let f_spread = values[0] - values[dim];
        let diam = simplex[1..]
            .iter()
            .map(|v| {
                v.iter()
                    .zip(&simplex[0])
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max)
            })
            .fold(0.0f64, f64::max);
        let f_converged = f_spread.abs() < cfg.ftol && values[0].is_finite();
        if f_converged && diam <= cfg.xtol.max(cfg.ftol.sqrt()) {
            stop = StopReason::FtolReached;
            break;
        }
        if diam < cfg.xtol {
            stop = StopReason::XtolReached;
            break;
        }
        if evals >= cfg.max_evals {
            stop = StopReason::MaxEvals;
            break;
        }
        iterations += 1;
        if f_converged {
            // Objective values tie but the simplex is still wide (a plateau
            // or a symmetric stall): shrink towards the best vertex instead
            // of stopping on a spurious ftol hit.
            for i in 1..=dim {
                let best = simplex[0].clone();
                for (x, &b) in simplex[i].iter_mut().zip(&best) {
                    *x = b + sigma * (*x - b);
                }
                values[i] = eval(&simplex[i].clone(), &mut evals);
            }
            continue;
        }

        // Centroid of all but the worst.
        let mut centroid = vec![0.0; dim];
        for v in &simplex[..dim] {
            for (c, &x) in centroid.iter_mut().zip(v) {
                *c += x;
            }
        }
        for c in centroid.iter_mut() {
            *c /= dim as f64;
        }
        let worst = simplex[dim].clone();
        let f_worst = values[dim];
        let f_best = values[0];
        let f_second_worst = values[dim - 1];

        let blend = |t: f64| -> Vec<f64> {
            // x = centroid + t·(centroid − worst), clamped to the box.
            let mut x: Vec<f64> = centroid
                .iter()
                .zip(&worst)
                .map(|(&c, &w)| c + t * (c - w))
                .collect();
            bounds.clamp(&mut x);
            x
        };

        // Reflection.
        let xr = blend(alpha);
        let fr = eval(&xr, &mut evals);
        if fr > f_best {
            // Expansion.
            let xe = blend(gamma);
            let fe = eval(&xe, &mut evals);
            if fe > fr {
                simplex[dim] = xe;
                values[dim] = fe;
            } else {
                simplex[dim] = xr;
                values[dim] = fr;
            }
            continue;
        }
        if fr > f_second_worst {
            simplex[dim] = xr;
            values[dim] = fr;
            continue;
        }
        // Contraction (outside if the reflection at least beat the worst).
        let xc = if fr > f_worst {
            blend(rho)
        } else {
            blend(-rho)
        };
        let fc = eval(&xc, &mut evals);
        if fc > f_worst.max(fr) {
            simplex[dim] = xc;
            values[dim] = fc;
            continue;
        }
        // Shrink towards the best vertex.
        for i in 1..=dim {
            let best = simplex[0].clone();
            for (x, &b) in simplex[i].iter_mut().zip(&best) {
                *x = b + sigma * (*x - b);
            }
            values[i] = eval(&simplex[i].clone(), &mut evals);
        }
    }

    OptimResult {
        x: simplex[0].clone(),
        fx: values[0],
        evaluations: evals,
        iterations,
        stop,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_bounds(dim: usize, lo: f64, hi: f64) -> Bounds {
        Bounds::new(vec![lo; dim], vec![hi; dim])
    }

    #[test]
    fn maximizes_concave_quadratic() {
        let f = |x: &[f64]| -((x[0] - 0.3).powi(2) + 2.0 * (x[1] + 0.5).powi(2));
        let r = nelder_mead_max(
            f,
            &[0.9, 0.9],
            &unit_bounds(2, -2.0, 2.0),
            Default::default(),
        );
        assert!((r.x[0] - 0.3).abs() < 1e-4, "{:?}", r.x);
        assert!((r.x[1] + 0.5).abs() < 1e-4, "{:?}", r.x);
        assert!(r.fx > -1e-7);
    }

    #[test]
    fn respects_box_constraints() {
        // Unconstrained max at (5, 5): must end up pinned to the boundary.
        let f = |x: &[f64]| -((x[0] - 5.0).powi(2) + (x[1] - 5.0).powi(2));
        let r = nelder_mead_max(
            f,
            &[0.0, 0.0],
            &unit_bounds(2, -1.0, 1.0),
            Default::default(),
        );
        assert!(r.x[0] <= 1.0 && r.x[1] <= 1.0);
        assert!(
            (r.x[0] - 1.0).abs() < 1e-3 && (r.x[1] - 1.0).abs() < 1e-3,
            "{:?}",
            r.x
        );
    }

    #[test]
    fn handles_infeasible_regions() {
        // NaN / −∞ plateau left of x = 0; optimum at x = 0.25.
        let f = |x: &[f64]| {
            if x[0] < 0.0 {
                f64::NAN
            } else {
                -(x[0] - 0.25).powi(2)
            }
        };
        let r = nelder_mead_max(f, &[0.9], &unit_bounds(1, -1.0, 1.0), Default::default());
        assert!((r.x[0] - 0.25).abs() < 1e-4, "{:?}", r.x);
    }

    #[test]
    fn rosenbrock_ridge_in_3d() {
        // Maximize the negative Rosenbrock (banana) — a classic NM stressor.
        let f = |x: &[f64]| {
            -(0..2)
                .map(|i| 100.0 * (x[i + 1] - x[i] * x[i]).powi(2) + (1.0 - x[i]).powi(2))
                .sum::<f64>()
        };
        let cfg = NelderMeadConfig {
            max_evals: 4000,
            ..Default::default()
        };
        let r = nelder_mead_max(f, &[-0.5, 0.5, 0.5], &unit_bounds(3, -2.0, 2.0), cfg);
        assert!(r.fx > -1e-3, "fx={} x={:?}", r.fx, r.x);
    }

    #[test]
    fn trace_is_monotone_nondecreasing() {
        let f = |x: &[f64]| -(x[0].powi(2) + x[1].powi(2));
        let r = nelder_mead_max(
            f,
            &[1.5, -1.5],
            &unit_bounds(2, -2.0, 2.0),
            Default::default(),
        );
        for w in r.trace.windows(2) {
            assert!(w[1] >= w[0] - 1e-15, "best value regressed: {w:?}");
        }
        assert_eq!(r.stop, StopReason::FtolReached);
    }

    #[test]
    fn max_evals_is_honoured() {
        let f = |x: &[f64]| -x.iter().map(|v| v * v).sum::<f64>();
        let cfg = NelderMeadConfig {
            max_evals: 20,
            ftol: 0.0,
            xtol: 0.0,
            ..Default::default()
        };
        let r = nelder_mead_max(f, &[1.0; 4], &unit_bounds(4, -2.0, 2.0), cfg);
        assert_eq!(r.stop, StopReason::MaxEvals);
        assert!(r.evaluations <= 20 + 6, "evals {}", r.evaluations);
    }
}
