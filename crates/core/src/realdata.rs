//! Simulated stand-ins for the paper's two real datasets (§VII, Figure 8,
//! Tables I–II).
//!
//! The paper evaluates on (a) high-resolution soil-moisture residuals over
//! the Mississippi River Basin (2.1M points, 8 regions `R1..R8`) and (b)
//! WRF-simulated wind speed over the Arabian peninsula (1M points, 4 regions
//! `R1..R4`). Neither raw dataset ships here, so each region is *simulated*:
//! a zero-mean Gaussian random field with a Matérn covariance whose
//! parameters are the paper's **full-tile estimates** from Tables I and II,
//! on jittered grids over the regions' lon/lat boxes with great-circle
//! distances in kilometres. The qualitative claims those tables support —
//! TLR estimates approach the full-tile estimates as the accuracy threshold
//! tightens, and prediction MSE is insensitive to modest approximation —
//! depend only on the field being a Matérn GRF with those parameters, which
//! is exactly what this module generates (see DESIGN.md §2).

use crate::likelihood::Backend;
use crate::locations::gridded_locations_in;
use crate::model::{GeoModel, ModelError};
use exa_check::sync::Arc;
use exa_covariance::{DistanceMetric, Location, MaternKernel, MaternParams};
use exa_runtime::Runtime;
use exa_util::Rng;

/// One geographic region with its generating (paper-reported) parameters.
#[derive(Clone, Debug)]
pub struct RegionSpec {
    /// Region label as the paper prints it (`R1`…).
    pub name: &'static str,
    /// Longitude range, degrees.
    pub lon: (f64, f64),
    /// Latitude range, degrees.
    pub lat: (f64, f64),
    /// The paper's full-tile Matérn estimate for this region
    /// (variance, range **in km**, smoothness).
    pub params: MaternParams,
}

/// The eight Mississippi-basin soil-moisture regions (Table I, full-tile
/// columns). The basin spans roughly 85°–95°W, 29°–49°N; regions tile it in
/// a 2×4 grid as in Figure 8(a).
pub fn soil_regions() -> Vec<RegionSpec> {
    let params = [
        (0.852, 5.994, 0.559),
        (0.380, 10.434, 0.490),
        (0.277, 10.878, 0.507),
        (0.410, 7.770, 0.527),
        (0.836, 9.213, 0.496),
        (0.619, 10.323, 0.523),
        (0.553, 19.203, 0.508),
        (0.906, 27.861, 0.461),
    ];
    let names = ["R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8"];
    // 2 columns (west/east) × 4 rows (south→north).
    let mut specs = Vec::with_capacity(8);
    for (idx, ((v, r, s), name)) in params.into_iter().zip(names).enumerate() {
        let col = idx % 2;
        let row = idx / 2;
        let lon0 = -95.0 + col as f64 * 5.0;
        let lat0 = 29.0 + row as f64 * 5.0;
        specs.push(RegionSpec {
            name,
            lon: (lon0, lon0 + 5.0),
            lat: (lat0, lat0 + 5.0),
            params: MaternParams::new(v, r, s),
        });
    }
    specs
}

/// The four Arabian-peninsula wind-speed regions (Table II, full-tile
/// columns). The WRF domain spans 20°–83°E, 5°S–36°N; regions split it in a
/// 2×2 grid as in Figure 8(b). Note the smoother fields (θ₃ ≈ 1.2–1.4) and
/// larger variances relative to soil moisture.
pub fn wind_regions() -> Vec<RegionSpec> {
    let params = [
        (8.715, 32.083, 1.210),
        (12.517, 27.237, 1.274),
        (10.819, 18.634, 1.416),
        (12.270, 17.112, 1.170),
    ];
    let names = ["R1", "R2", "R3", "R4"];
    let mut specs = Vec::with_capacity(4);
    for (idx, ((v, r, s), name)) in params.into_iter().zip(names).enumerate() {
        let col = idx % 2;
        let row = idx / 2;
        let lon0 = 20.0 + col as f64 * 31.5;
        let lat0 = -5.0 + row as f64 * 20.5;
        specs.push(RegionSpec {
            name,
            lon: (lon0, lon0 + 31.5),
            lat: (lat0, lat0 + 20.5),
            params: MaternParams::new(v, r, s),
        });
    }
    specs
}

/// One simulated regional dataset.
#[derive(Clone, Debug)]
pub struct RegionDataset {
    pub spec: RegionSpec,
    /// Locations in lon/lat degrees (Morton-sorted).
    pub locations: Arc<Vec<Location>>,
    /// Simulated measurements (zero-mean residual field).
    pub z: Vec<f64>,
}

/// Simulates `side²` measurements of the region's Matérn field with
/// great-circle (haversine) distances, as the paper uses for real data:
/// a full-tile simulation session factored at the region's generative `θ`.
pub fn generate_region(
    spec: &RegionSpec,
    side: usize,
    nb: usize,
    seed: u64,
    rt: &Runtime,
) -> Result<RegionDataset, ModelError> {
    let mut rng = Rng::seed_from_u64(seed);
    let locations = Arc::new(gridded_locations_in(
        side, spec.lon.0, spec.lon.1, spec.lat.0, spec.lat.1, &mut rng,
    ));
    let sim = GeoModel::<MaternKernel>::builder()
        .locations(locations.clone())
        .metric(DistanceMetric::GreatCircleKm)
        .nugget(1e-8)
        .backend(Backend::FullTile)
        .tile_size(nb)
        .build()?
        .at_params(&spec.params.to_array(), rt)?;
    let z = sim.simulate(&mut rng, rt);
    Ok(RegionDataset {
        spec: spec.clone(),
        locations,
        z,
    })
}

/// Renders an ASCII density map of a dataset: the region is binned to a
/// `cols × rows` character grid, each cell shaded by its mean measurement
/// (Figure 8's visual, in text).
pub fn ascii_map(data: &RegionDataset, cols: usize, rows: usize) -> String {
    const SHADES: &[u8] = b" .:-=+*#%@";
    let (lon0, lon1) = data.spec.lon;
    let (lat0, lat1) = data.spec.lat;
    let mut sums = vec![0.0f64; cols * rows];
    let mut counts = vec![0usize; cols * rows];
    for (loc, &v) in data.locations.iter().zip(&data.z) {
        let cx = (((loc.x - lon0) / (lon1 - lon0)) * cols as f64) as usize;
        let cy = (((loc.y - lat0) / (lat1 - lat0)) * rows as f64) as usize;
        let idx = cx.min(cols - 1) + cy.min(rows - 1) * cols;
        sums[idx] += v;
        counts[idx] += 1;
    }
    let means: Vec<f64> = sums
        .iter()
        .zip(&counts)
        .map(|(&s, &c)| if c > 0 { s / c as f64 } else { f64::NAN })
        .collect();
    let finite: Vec<f64> = means.iter().copied().filter(|v| v.is_finite()).collect();
    let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    let mut out = String::new();
    for r in (0..rows).rev() {
        // north on top
        for c in 0..cols {
            let v = means[c + r * cols];
            if v.is_finite() {
                let shade = (((v - lo) / span) * (SHADES.len() - 1) as f64).round() as usize;
                out.push(SHADES[shade.min(SHADES.len() - 1)] as char);
            } else {
                out.push(' ');
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use exa_util::stats::sample_variance;

    #[test]
    fn region_tables_match_paper_layout() {
        let soil = soil_regions();
        assert_eq!(soil.len(), 8);
        assert_eq!(soil[0].name, "R1");
        // Table I full-tile row R1: (0.852, 5.994, 0.559).
        assert_eq!(soil[0].params.variance, 0.852);
        assert_eq!(soil[0].params.range, 5.994);
        assert_eq!(soil[0].params.smoothness, 0.559);
        let wind = wind_regions();
        assert_eq!(wind.len(), 4);
        // Table II full-tile row R4: (12.270, 17.112, 1.170).
        assert_eq!(wind[3].params.variance, 12.270);
        // Wind fields are smoother than soil (paper's qualitative contrast).
        assert!(wind.iter().all(|r| r.params.smoothness > 1.0));
        assert!(soil.iter().all(|r| r.params.smoothness < 0.6));
    }

    #[test]
    fn generated_region_matches_spec_variance() {
        let rt = Runtime::new(4);
        let spec = &soil_regions()[0];
        let data = generate_region(spec, 16, 32, 7, &rt).unwrap();
        assert_eq!(data.z.len(), 256);
        // Sample variance across sites of one realization is a crude but
        // serviceable check against θ₁ (wide tolerance: spatial correlation
        // inflates the variance of this estimator).
        let v = sample_variance(&data.z);
        assert!(
            v > 0.2 * spec.params.variance && v < 5.0 * spec.params.variance,
            "sample variance {v} vs θ₁ {}",
            spec.params.variance
        );
        for l in data.locations.iter() {
            assert!(l.x >= spec.lon.0 && l.x <= spec.lon.1);
            assert!(l.y >= spec.lat.0 && l.y <= spec.lat.1);
        }
    }

    #[test]
    fn regions_do_not_overlap() {
        for regions in [soil_regions(), wind_regions()] {
            for (i, a) in regions.iter().enumerate() {
                for b in regions.iter().skip(i + 1) {
                    let lon_overlap = a.lon.0 < b.lon.1 && b.lon.0 < a.lon.1;
                    let lat_overlap = a.lat.0 < b.lat.1 && b.lat.0 < a.lat.1;
                    assert!(
                        !(lon_overlap && lat_overlap),
                        "{} overlaps {}",
                        a.name,
                        b.name
                    );
                }
            }
        }
    }

    #[test]
    fn ascii_map_shape_and_content() {
        let rt = Runtime::new(2);
        let spec = &wind_regions()[0];
        let data = generate_region(spec, 10, 25, 9, &rt).unwrap();
        let map = ascii_map(&data, 20, 8);
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), 8);
        assert!(lines.iter().all(|l| l.chars().count() == 20));
        // A field realization has spatial contrast: at least 3 shades used.
        let used: std::collections::HashSet<char> = map.chars().filter(|c| *c != '\n').collect();
        assert!(used.len() >= 3, "shades used: {used:?}");
    }
}
