//! Monte-Carlo estimation studies (paper §VIII-D1, Figures 6 and 7).
//!
//! The paper's accuracy verification protocol: fix an initial parameter
//! vector `θ`, generate one location set and `R` measurement vectors *in
//! exact computation* ("to ensure that all techniques are using the same
//! data"), then re-estimate `θ̂` with every computation technique and
//! boxplot the estimates (Figure 6) and the prediction MSE over held-out
//! values (Figure 7).

use crate::likelihood::{Backend, LikelihoodConfig};
use crate::locations::{holdout_split, synthetic_locations_n};
use crate::model::{FitOptions, GeoModel};
use crate::optimizer::NelderMeadConfig;
use crate::predict::prediction_mse;
use exa_check::sync::Arc;
use exa_covariance::{Location, MaternKernel, MaternParams};
use exa_runtime::Runtime;
use exa_util::stats::BoxplotSummary;
use exa_util::Rng;

/// Configuration of one Monte-Carlo study.
#[derive(Clone, Debug)]
pub struct MonteCarloConfig {
    /// Number of spatial locations (paper: 40 000).
    pub n: usize,
    /// Monte-Carlo replicates — measurement vectors per θ (paper: 100).
    pub replicates: usize,
    /// Held-out values re-predicted per replicate (paper: 100).
    pub holdout: usize,
    /// Likelihood evaluation settings.
    pub likelihood: LikelihoodConfig,
    /// Optimizer settings (the study dominates runtime; keep `max_evals`
    /// moderate).
    pub optimizer: NelderMeadConfig,
    /// Master seed.
    pub seed: u64,
    /// Worker threads.
    pub workers: usize,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            n: 900,
            replicates: 10,
            holdout: 50,
            likelihood: LikelihoodConfig { nb: 64, seed: 1 },
            optimizer: NelderMeadConfig {
                max_evals: 120,
                ftol: 1e-5,
                ..Default::default()
            },
            seed: 42,
            workers: exa_runtime::default_parallelism(),
        }
    }
}

/// Per-technique outcome of the study.
#[derive(Clone, Debug)]
pub struct TechniqueOutcome {
    pub backend: Backend,
    /// Estimated θ̂ per replicate.
    pub estimates: Vec<MaternParams>,
    /// Prediction MSE per replicate (Eq. 7).
    pub mses: Vec<f64>,
    /// Replicates whose factorization failed (loose accuracy on strongly
    /// correlated data; counted, not silently dropped).
    pub failures: usize,
}

impl TechniqueOutcome {
    /// Boxplot summaries of (θ̂₁, θ̂₂, θ̂₃) — the three panels of Figure 6.
    pub fn parameter_boxplots(&self) -> [BoxplotSummary; 3] {
        let col =
            |f: fn(&MaternParams) -> f64| -> Vec<f64> { self.estimates.iter().map(f).collect() };
        [
            exa_util::five_number_summary(&col(|p| p.variance)),
            exa_util::five_number_summary(&col(|p| p.range)),
            exa_util::five_number_summary(&col(|p| p.smoothness)),
        ]
    }

    /// Boxplot summary of the prediction MSE — one panel of Figure 7.
    ///
    /// # Panics
    /// For an estimation-only study (`holdout = 0`), which records
    /// estimates but no MSEs.
    pub fn mse_boxplot(&self) -> BoxplotSummary {
        assert!(
            !self.mses.is_empty(),
            "estimation-only study (holdout = 0) has no prediction MSEs"
        );
        exa_util::five_number_summary(&self.mses)
    }
}

/// Shared Monte-Carlo data: one location set, `R` exact measurement vectors,
/// and one holdout split reused by every technique.
pub struct MonteCarloData {
    pub locations: Arc<Vec<Location>>,
    pub truth: MaternParams,
    pub measurements: Vec<Vec<f64>>,
    pub estimation_idx: Vec<usize>,
    pub validation_idx: Vec<usize>,
}

/// Generates the shared data in exact (machine-precision) computation: a
/// full-tile simulation session factored once at the truth, drawn
/// `replicates` times.
pub fn generate_data(truth: MaternParams, cfg: &MonteCarloConfig, rt: &Runtime) -> MonteCarloData {
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let locations = Arc::new(synthetic_locations_n(cfg.n, &mut rng));
    let sim = GeoModel::<MaternKernel>::builder()
        .locations(locations.clone())
        .nugget(0.0)
        .backend(Backend::FullTile)
        .config(cfg.likelihood)
        .build()
        .expect("non-empty location set")
        .at_params(&truth.to_array(), rt)
        .expect("exact covariance must be SPD");
    let measurements = sim.simulate_many(cfg.replicates, &mut rng, rt);
    let split = holdout_split(locations.len(), cfg.holdout, &mut rng);
    MonteCarloData {
        locations,
        truth,
        measurements,
        estimation_idx: split.estimation,
        validation_idx: split.validation,
    }
}

/// Runs the full study for one technique: per replicate, fit `θ̂` on the
/// estimation points, then predict the held-out points with `θ̂` — through
/// the fitted session, so prediction reuses the factorization `fit` already
/// computed instead of re-running `potrf`.
pub fn run_technique(
    data: &MonteCarloData,
    backend: Backend,
    cfg: &MonteCarloConfig,
    rt: &Runtime,
) -> TechniqueOutcome {
    let targets: Vec<Location> = data
        .validation_idx
        .iter()
        .map(|&i| data.locations[i])
        .collect();
    let observed_arc = Arc::new(
        data.estimation_idx
            .iter()
            .map(|&i| data.locations[i])
            .collect::<Vec<Location>>(),
    );

    // The paper starts the optimizer from empirical values; a mildly
    // perturbed truth keeps study runtimes tractable at our scale.
    let start = [
        data.truth.variance * 0.6,
        data.truth.range * 1.5,
        (data.truth.smoothness * 1.2).min(2.9),
    ];
    let opts = FitOptions {
        initial: Some(start.to_vec()),
        nm: cfg.optimizer,
        ..Default::default()
    };

    let mut estimates = Vec::with_capacity(data.measurements.len());
    let mut mses = Vec::with_capacity(data.measurements.len());
    let mut failures = 0usize;
    for z in &data.measurements {
        let z_obs: Vec<f64> = data.estimation_idx.iter().map(|&i| z[i]).collect();
        let truth_vals: Vec<f64> = data.validation_idx.iter().map(|&i| z[i]).collect();
        let model = GeoModel::<MaternKernel>::builder()
            .locations(observed_arc.clone())
            .data(z_obs)
            .backend(backend)
            .config(cfg.likelihood)
            .build()
            .expect("consistent study data");
        // Fit failures (no feasible point, or a breakdown at θ̂) are
        // counted, not silently dropped.
        let fitted = match model.fit(&opts, rt) {
            Ok(f) => f,
            Err(_) => {
                failures += 1;
                continue;
            }
        };
        // An estimation-only study (holdout = 0) records estimates but no
        // MSEs (`prediction_mse` rejects empty inputs rather than yield NaN).
        if targets.is_empty() {
            estimates.push(fitted.kernel().params());
            continue;
        }
        match fitted.predict(&targets, rt) {
            Ok(p) => {
                mses.push(prediction_mse(&truth_vals, &p.values));
                estimates.push(fitted.kernel().params());
            }
            Err(_) => failures += 1,
        }
    }
    TechniqueOutcome {
        backend,
        estimates,
        mses,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(seed: u64) -> MonteCarloConfig {
        MonteCarloConfig {
            n: 225,
            replicates: 3,
            holdout: 20,
            likelihood: LikelihoodConfig { nb: 32, seed },
            optimizer: NelderMeadConfig {
                max_evals: 60,
                ftol: 1e-4,
                ..Default::default()
            },
            seed,
            workers: 4,
        }
    }

    #[test]
    fn shared_data_is_reused_across_techniques() {
        let cfg = small_cfg(1);
        let rt = Runtime::new(cfg.workers);
        let data = generate_data(MaternParams::new(1.0, 0.1, 0.5), &cfg, &rt);
        assert_eq!(data.measurements.len(), 3);
        assert_eq!(data.validation_idx.len(), 20);
        assert_eq!(data.estimation_idx.len(), 205);
        // Replicates differ (independent draws).
        assert_ne!(data.measurements[0], data.measurements[1]);
    }

    #[test]
    fn full_tile_study_recovers_reasonable_estimates() {
        let cfg = small_cfg(2);
        let rt = Runtime::new(cfg.workers);
        let truth = MaternParams::new(1.0, 0.1, 0.5);
        let data = generate_data(truth, &cfg, &rt);
        let out = run_technique(&data, Backend::FullTile, &cfg, &rt);
        assert_eq!(out.failures, 0);
        assert_eq!(out.estimates.len(), 3);
        let [v, r, s] = out.parameter_boxplots();
        // Medians in a generous window around the truth (tiny n).
        assert!((v.median - 1.0).abs() < 0.8, "variance median {}", v.median);
        assert!((r.median - 0.1).abs() < 0.12, "range median {}", r.median);
        assert!(
            (s.median - 0.5).abs() < 0.35,
            "smoothness median {}",
            s.median
        );
        let mse = out.mse_boxplot();
        assert!(mse.median < 1.0, "MSE median {}", mse.median);
    }

    #[test]
    fn tlr_study_tracks_full_tile() {
        let cfg = small_cfg(3);
        let rt = Runtime::new(cfg.workers);
        let truth = MaternParams::new(1.0, 0.1, 0.5);
        let data = generate_data(truth, &cfg, &rt);
        let exact = run_technique(&data, Backend::FullTile, &cfg, &rt);
        let tlr = run_technique(&data, Backend::tlr(1e-9), &cfg, &rt);
        assert_eq!(tlr.failures, 0);
        let em = exact.mse_boxplot().median;
        let tm = tlr.mse_boxplot().median;
        assert!(
            (em - tm).abs() < 0.3 * em.max(0.05),
            "exact MSE {em} vs TLR MSE {tm}"
        );
    }
}
