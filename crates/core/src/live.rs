//! Streaming observation ingestion: [`LiveModel`], a continuously-updatable
//! wrapper over [`FittedModel`].
//!
//! The paper's workflow is fit-once/predict-many; real sensor networks
//! append observations continuously. `LiveModel` upgrades a fitted session
//! to fit-continuously:
//!
//! * [`LiveModel::observe`] absorbs new `(location, value)` pairs through a
//!   rank-k Cholesky **update** of the cached factor (`O(n²·k)`, see
//!   [`exa_linalg::chol::chol_append`]) — the leading factor block, the
//!   coordinate SoA and the pre-solved `α` all extend in place of an
//!   `O(n³)` refit. [`LiveModel::expire`] removes stale observations via
//!   Cholesky **downdates**.
//! * Readers never block on writers: [`LiveModel::snapshot`] hands out an
//!   `Arc<FittedModel>` under a lock held only for the pointer clone, so
//!   predictions keep serving the previous factor while an update (or a
//!   full refit) is in flight, and can never observe a torn factor.
//! * A **drift tracker** ([`LiveModel::drift`]) counts updates since the
//!   last refactorization and estimates conditioning growth and
//!   log-likelihood drift. When any exceeds its [`LivePolicy`] threshold, a
//!   **background refactorization** runs on a worker thread and swaps in
//!   atomically; updates that landed while it ran are replayed on top
//!   before the swap, so no ingested point is ever lost.
//! * Tile/TLR-backed sessions cannot update incrementally
//!   ([`crate::IngestOutcome::NeedsRefit`]): `observe`/`expire` fall back to
//!   a synchronous refit, still behind the same atomic-swap discipline.
//!
//! The serving layers (`exa-serve` / `exa-wire`) expose this as
//! `POST /v1/models/{name}/observe`; per-model write serialization is the
//! `LiveModel` write lock itself.

use crate::model::{FittedModel, ModelError};
use exa_covariance::{Location, ParamCovariance};
// Synchronization comes through the exa-check facade: a transparent
// std::sync/std::thread re-export in normal builds, the model checker's
// instrumented primitives under `--cfg exa_check` (see crates/check).
use exa_check::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use exa_check::sync::{Arc, Mutex};
use exa_check::thread::JoinHandle;
use exa_runtime::Runtime;

/// Refit-trigger thresholds for a [`LiveModel`]'s drift tracker.
#[derive(Clone, Debug)]
pub struct LivePolicy {
    /// Refactorize after this many incremental updates (observe/expire
    /// calls). Overridable at construction via the `EXA_LIVE_REFIT_AFTER`
    /// environment variable (used by the ingest soak to force mid-run
    /// refits).
    pub max_updates: u64,
    /// Refactorize when the factor's condition estimate grows past this
    /// multiple of its value at the last refactorization.
    pub max_condition_growth: f64,
    /// Refactorize when the average per-point log-likelihood drifts further
    /// than this from its value at the last refactorization.
    pub max_loglik_drift: f64,
    /// Worker threads for the background refactorization runtime.
    pub refit_workers: usize,
}

impl Default for LivePolicy {
    fn default() -> Self {
        LivePolicy {
            max_updates: 256,
            max_condition_growth: 16.0,
            max_loglik_drift: 1.0,
            refit_workers: 2,
        }
    }
}

impl LivePolicy {
    /// Default policy with `EXA_LIVE_REFIT_AFTER` (update-count threshold)
    /// applied when set and parseable.
    pub fn from_env() -> Self {
        let mut p = LivePolicy::default();
        if let Some(n) = std::env::var("EXA_LIVE_REFIT_AFTER")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            p.max_updates = n.max(1);
        }
        p
    }
}

/// What one [`LiveModel::observe`] / [`LiveModel::expire`] call did.
#[derive(Clone, Copy, Debug)]
pub struct ObserveOutcome {
    /// Points appended (observe) or expired (expire) by this call.
    pub applied: usize,
    /// Observation count of the model after the call.
    pub model_points: usize,
    /// Incremental updates applied since the last completed
    /// refactorization, including this one.
    pub updates_since_refactor: u64,
    /// `true` when the factor was updated incrementally; `false` when the
    /// storage scheme forced a synchronous refit.
    pub used_incremental: bool,
    /// `true` when this call pushed drift past policy and scheduled a
    /// background refactorization.
    pub refit_triggered: bool,
}

/// A point-in-time copy of a [`LiveModel`]'s drift tracker.
#[derive(Clone, Copy, Debug, Default)]
pub struct DriftStats {
    /// Incremental updates since the last completed refactorization.
    pub updates_since_refactor: u64,
    /// Total observe/expire calls applied over the model's lifetime.
    pub updates_total: u64,
    /// Total points ingested via `observe` over the model's lifetime.
    pub points_ingested: u64,
    /// Total points expired via `expire` over the model's lifetime.
    pub points_expired: u64,
    /// Background refactorizations scheduled by the drift tracker.
    pub refits_triggered: u64,
    /// Refactorizations that completed and swapped in (includes synchronous
    /// tile/TLR fallback refits).
    pub refits_completed: u64,
    /// Updates that landed during a background refit and were replayed on
    /// top of the fresh factor before the swap.
    pub replayed_updates: u64,
    /// Factor condition estimate growth since the last refactorization
    /// (1.0 = unchanged; tile/TLR report 1.0).
    pub condition_growth: f64,
    /// Absolute drift of the average per-point log-likelihood since the
    /// last refactorization.
    pub loglik_drift: f64,
}

/// One write operation, logged while a background refit is in flight so it
/// can be replayed onto the fresh factor before the swap.
enum Op {
    Observe(Vec<Location>, Vec<f64>),
    Expire(Vec<usize>),
}

/// State owned by the long-held write lock: everything writers (and the
/// refit swap) coordinate through.
struct WriteState<K: ParamCovariance> {
    /// Bumped on every swap of `current`; the refit thread uses it to
    /// detect concurrent writes.
    generation: u64,
    /// `Some` while a background refit is in flight: writes append here so
    /// the refit can replay them.
    replay_log: Option<Vec<Op>>,
    /// Baselines captured at the last completed refactorization.
    base_condition: f64,
    base_loglik_per_point: f64,
    /// Join handle of the in-flight background refit, for deterministic
    /// teardown/tests.
    refit_thread: Option<JoinHandle<()>>,
    _marker: std::marker::PhantomData<K>,
}

struct Inner<K: ParamCovariance> {
    /// Reader snapshot slot. Held only for `Arc` clone/store — predictions
    /// never wait on writes or refits.
    current: Mutex<Arc<FittedModel<K>>>,
    /// Writer serialization + refit coordination.
    write: Mutex<WriteState<K>>,
    policy: LivePolicy,
    refit_in_flight: AtomicBool,
    // Drift tracker (readable without any lock).
    updates_since_refactor: AtomicU64,
    updates_total: AtomicU64,
    points_ingested: AtomicU64,
    points_expired: AtomicU64,
    refits_triggered: AtomicU64,
    refits_completed: AtomicU64,
    replayed_updates: AtomicU64,
    condition_growth_bits: AtomicU64,
    loglik_drift_bits: AtomicU64,
}

/// A continuously-updatable fitted session: cheap atomic snapshots for
/// readers, serialized incremental writes, background refactorization. See
/// the [module docs](self) for the full contract.
pub struct LiveModel<K: ParamCovariance> {
    inner: Arc<Inner<K>>,
}

impl<K: ParamCovariance> Clone for LiveModel<K> {
    fn clone(&self) -> Self {
        LiveModel {
            inner: Arc::clone(&self.inner),
        }
    }
}

fn loglik_per_point<K: ParamCovariance>(m: &FittedModel<K>) -> f64 {
    match m.log_likelihood() {
        Some(ll) => ll.value / m.kernel().len().max(1) as f64,
        None => 0.0,
    }
}

impl<K: ParamCovariance> LiveModel<K> {
    /// Wraps a fitted session for streaming ingestion under `policy`.
    pub fn new(model: Arc<FittedModel<K>>, policy: LivePolicy) -> Self {
        let base_condition = model.factor_condition_estimate().unwrap_or(1.0);
        let base_loglik = loglik_per_point(&model);
        LiveModel {
            inner: Arc::new(Inner {
                current: Mutex::new(model),
                write: Mutex::new(WriteState {
                    generation: 0,
                    replay_log: None,
                    base_condition,
                    base_loglik_per_point: base_loglik,
                    refit_thread: None,
                    _marker: std::marker::PhantomData,
                }),
                policy,
                refit_in_flight: AtomicBool::new(false),
                updates_since_refactor: AtomicU64::new(0),
                updates_total: AtomicU64::new(0),
                points_ingested: AtomicU64::new(0),
                points_expired: AtomicU64::new(0),
                refits_triggered: AtomicU64::new(0),
                refits_completed: AtomicU64::new(0),
                replayed_updates: AtomicU64::new(0),
                condition_growth_bits: AtomicU64::new(1.0f64.to_bits()),
                loglik_drift_bits: AtomicU64::new(0.0f64.to_bits()),
            }),
        }
    }

    /// Wraps with [`LivePolicy::from_env`].
    pub fn with_env_policy(model: Arc<FittedModel<K>>) -> Self {
        Self::new(model, LivePolicy::from_env())
    }

    /// The current fitted session. Lock held only for the pointer clone;
    /// the returned snapshot stays valid (and immutable) across any
    /// concurrent updates or refits.
    pub fn snapshot(&self) -> Arc<FittedModel<K>> {
        Arc::clone(&self.inner.current.lock().expect("live current lock"))
    }

    /// Absorbs `points`/`values` into the model. Incremental (rank-k
    /// Cholesky update) on dense factors; synchronous refit fallback for
    /// tile/TLR. Serialized against other writers; readers keep serving the
    /// previous snapshot until the atomic swap.
    pub fn observe(
        &self,
        points: &[Location],
        values: &[f64],
        rt: &Runtime,
    ) -> Result<ObserveOutcome, ModelError> {
        self.apply(Op::Observe(points.to_vec(), values.to_vec()), rt)
    }

    /// Expires the observations at `indices` (positions in the current
    /// observed set). Incremental (Cholesky downdate) on dense factors.
    pub fn expire(&self, indices: &[usize], rt: &Runtime) -> Result<ObserveOutcome, ModelError> {
        self.apply(Op::Expire(indices.to_vec()), rt)
    }

    /// A point-in-time copy of the drift tracker.
    pub fn drift(&self) -> DriftStats {
        let i = &self.inner;
        DriftStats {
            updates_since_refactor: i.updates_since_refactor.load(Ordering::Relaxed),
            updates_total: i.updates_total.load(Ordering::Relaxed),
            points_ingested: i.points_ingested.load(Ordering::Relaxed),
            points_expired: i.points_expired.load(Ordering::Relaxed),
            refits_triggered: i.refits_triggered.load(Ordering::Relaxed),
            refits_completed: i.refits_completed.load(Ordering::Relaxed),
            replayed_updates: i.replayed_updates.load(Ordering::Relaxed),
            condition_growth: f64::from_bits(i.condition_growth_bits.load(Ordering::Relaxed)),
            loglik_drift: f64::from_bits(i.loglik_drift_bits.load(Ordering::Relaxed)),
        }
    }

    /// `true` while a background refactorization is running.
    pub fn refit_in_flight(&self) -> bool {
        self.inner.refit_in_flight.load(Ordering::Acquire)
    }

    /// Blocks until no background refactorization is in flight (joins the
    /// worker thread). Test/teardown helper — serving paths never call it.
    pub fn wait_refit_idle(&self) {
        let handle = self
            .inner
            .write
            .lock()
            .expect("live write lock")
            .refit_thread
            .take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }

    /// Schedules a background refactorization now, regardless of drift
    /// (no-op if one is already in flight).
    pub fn force_refit(&self) {
        let mut ws = self.inner.write.lock().expect("live write lock");
        self.spawn_refit(&mut ws);
    }

    fn apply(&self, op: Op, rt: &Runtime) -> Result<ObserveOutcome, ModelError> {
        let inner = &self.inner;
        let mut ws = inner.write.lock().expect("live write lock");
        let base = self.snapshot();
        let (next, applied, ingested, used_incremental) = match &op {
            Op::Observe(points, values) => match base.with_appended(points, values, rt)? {
                Some(m) => (m, points.len(), true, true),
                None => (
                    base.refit_appended(points, values, rt)?,
                    points.len(),
                    true,
                    false,
                ),
            },
            Op::Expire(indices) => match base.with_removed(indices, rt)? {
                Some(m) => (m, indices.len(), false, true),
                None => (
                    base.refit_removed(indices, rt)?,
                    indices.len(),
                    false,
                    false,
                ),
            },
        };
        let next = Arc::new(next);

        // Publish: swap the reader snapshot under the short lock.
        *inner.current.lock().expect("live current lock") = Arc::clone(&next);
        ws.generation += 1;
        if let Some(log) = ws.replay_log.as_mut() {
            log.push(op);
        }

        // Drift accounting.
        let updates = if used_incremental {
            inner.updates_since_refactor.fetch_add(1, Ordering::Relaxed) + 1
        } else {
            // The fallback *was* a refactorization: reset the baselines.
            self.note_refactored(&mut ws, &next);
            0
        };
        inner.updates_total.fetch_add(1, Ordering::Relaxed);
        if ingested {
            inner
                .points_ingested
                .fetch_add(applied as u64, Ordering::Relaxed);
        } else {
            inner
                .points_expired
                .fetch_add(applied as u64, Ordering::Relaxed);
        }
        let condition = next.factor_condition_estimate().unwrap_or(1.0);
        let growth = if ws.base_condition > 0.0 {
            condition / ws.base_condition
        } else {
            1.0
        };
        let drift = (loglik_per_point(&next) - ws.base_loglik_per_point).abs();
        inner
            .condition_growth_bits
            .store(growth.to_bits(), Ordering::Relaxed);
        inner
            .loglik_drift_bits
            .store(drift.to_bits(), Ordering::Relaxed);

        // Refit trigger.
        let over_budget = updates >= inner.policy.max_updates
            || growth > inner.policy.max_condition_growth
            || drift > inner.policy.max_loglik_drift;
        let refit_triggered = used_incremental && over_budget && self.spawn_refit(&mut ws);

        Ok(ObserveOutcome {
            applied,
            model_points: next.kernel().len(),
            updates_since_refactor: updates,
            used_incremental,
            refit_triggered,
        })
    }

    /// Resets drift baselines after a completed refactorization. Caller
    /// holds the write lock.
    fn note_refactored(&self, ws: &mut WriteState<K>, fresh: &FittedModel<K>) {
        ws.base_condition = fresh.factor_condition_estimate().unwrap_or(1.0);
        ws.base_loglik_per_point = loglik_per_point(fresh);
        self.inner
            .updates_since_refactor
            .store(0, Ordering::Relaxed);
        self.inner
            .condition_growth_bits
            .store(1.0f64.to_bits(), Ordering::Relaxed);
        self.inner
            .loglik_drift_bits
            .store(0.0f64.to_bits(), Ordering::Relaxed);
        self.inner.refits_completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Spawns the background refactorization thread. Caller holds the write
    /// lock; returns `false` when one is already in flight.
    fn spawn_refit(&self, ws: &mut WriteState<K>) -> bool {
        let inner = &self.inner;
        // ORDERING: AcqRel on the winning claim — Acquire orders this refit
        // after the previous one's Release in `run_refit`, Release publishes
        // the claim to concurrent `refit_in_flight()` observers.
        if inner
            .refit_in_flight
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return false;
        }
        // Reap the previous (finished) refit thread, if any.
        if let Some(h) = ws.refit_thread.take() {
            let _ = h.join();
        }
        ws.replay_log = Some(Vec::new());
        inner.refits_triggered.fetch_add(1, Ordering::Relaxed);
        let live = self.clone();
        let base = self.snapshot();
        ws.refit_thread = Some(exa_check::thread::spawn(move || {
            live.run_refit(base);
        }));
        true
    }

    /// Body of the background refactorization thread: refactor the snapshot
    /// from scratch, replay any writes that landed meanwhile, swap in.
    ///
    /// Runs `Factorization::compute` on this thread (with its own runtime),
    /// so the serving threads' thread-local [`crate::factorization_count`]
    /// is not perturbed — serve-side "zero potrf during serving" accounting
    /// stays honest.
    fn run_refit(&self, base: Arc<FittedModel<K>>) {
        let inner = &self.inner;
        let rt = Runtime::new(inner.policy.refit_workers);
        let fresh = base.refactored(&rt);
        let mut ws = inner.write.lock().expect("live write lock");
        let log = ws.replay_log.take().unwrap_or_default();
        match fresh {
            Ok(mut model) => {
                let mut replayed = 0u64;
                let mut ok = true;
                for op in &log {
                    let next = match op {
                        Op::Observe(points, values) => model
                            .with_appended(points, values, &rt)
                            .and_then(|m| match m {
                                Some(m) => Ok(m),
                                None => model.refit_appended(points, values, &rt),
                            }),
                        Op::Expire(indices) => {
                            model.with_removed(indices, &rt).and_then(|m| match m {
                                Some(m) => Ok(m),
                                None => model.refit_removed(indices, &rt),
                            })
                        }
                    };
                    match next {
                        Ok(m) => {
                            model = m;
                            replayed += 1;
                        }
                        Err(_) => {
                            // A replay failing here means the op that
                            // *succeeded* incrementally cannot be reproduced
                            // — abandon the refit; the incremental factor
                            // stays authoritative.
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    let model = Arc::new(model);
                    *inner.current.lock().expect("live current lock") = Arc::clone(&model);
                    ws.generation += 1;
                    inner
                        .replayed_updates
                        .fetch_add(replayed, Ordering::Relaxed);
                    self.note_refactored(&mut ws, &model);
                }
            }
            Err(_) => {
                // Refactorization failed (e.g. transiently ill-conditioned):
                // keep serving the incrementally-updated factor; drift
                // counters stay up so the next update re-triggers.
            }
        }
        inner.refit_in_flight.store(false, Ordering::Release);
        drop(ws);
    }
}

// The serving layers hold `LiveModel` behind `Arc` and call `observe` /
// `snapshot` from many threads.
const _: () = {
    const fn check<T: Send + Sync>() {}
    check::<LiveModel<exa_covariance::MaternKernel>>();
};

/// Model-checked invariants, explored under `RUSTFLAGS="--cfg exa_check"`
/// with `cargo test -p exa-geostat --lib check_models`.
#[cfg(all(test, exa_check))]
mod check_models {
    use super::*;
    use crate::{synthetic_locations, Backend, GeoModel};
    use exa_covariance::{CovarianceKernel, MaternKernel};
    use exa_util::Rng;

    /// One tiny dense-backed fitted session, built once and shared across
    /// every explored execution (the model itself is immutable; only the
    /// `LiveModel` wrapper built per-execution is under test).
    fn base_model() -> Arc<FittedModel<MaternKernel>> {
        let mut rng = Rng::seed_from_u64(11);
        let locations = Arc::new(synthetic_locations(6, &mut rng));
        let rt = Runtime::new(1);
        let mut z = vec![0.0; locations.len()];
        rng.fill_gaussian(&mut z);
        Arc::new(
            GeoModel::<MaternKernel>::builder()
                .locations(locations)
                .data(z)
                .backend(Backend::FullBlock) // dense: incrementally updatable
                .tile_size(18)
                .build()
                .unwrap()
                .at_params(&[1.0, 0.1, 0.5], &rt)
                .unwrap(),
        )
    }

    fn quiet_policy() -> LivePolicy {
        LivePolicy {
            max_updates: u64::MAX,
            max_condition_growth: f64::INFINITY,
            max_loglik_drift: f64::INFINITY,
            refit_workers: 1,
        }
    }

    /// A reader racing one incremental observe can only ever see the
    /// pre-update or post-update factor — never a torn intermediate — and
    /// what it sees is monotone: once the new point is visible it stays
    /// visible.
    #[test]
    fn check_readers_never_observe_a_torn_factor() {
        let base = base_model();
        let n0 = base.kernel().len();
        let cfg = exa_check::Config {
            max_iterations: 1_500,
            max_preemptions: 3,
            ..Default::default()
        };
        let report = exa_check::check_with(cfg, move || {
            let live = LiveModel::new(Arc::clone(&base), quiet_policy());
            let writer_live = live.clone();
            let writer = exa_check::thread::spawn(move || {
                let rt = Runtime::new(1);
                let outcome = writer_live
                    .observe(&[Location::new(0.41, 0.37)], &[0.2], &rt)
                    .expect("dense observe");
                assert!(outcome.used_incremental, "dense path must update in place");
            });
            // Reader: every snapshot is a whole factor from {before, after},
            // and visibility is monotone across successive snapshots.
            let s1 = live.snapshot();
            let s2 = live.snapshot();
            for s in [&s1, &s2] {
                let n = s.kernel().len();
                assert!(
                    n == n0 || n == n0 + 1,
                    "torn snapshot: {n} points, expected {n0} or {}",
                    n0 + 1
                );
            }
            assert!(
                s2.kernel().len() >= s1.kernel().len(),
                "snapshot visibility went backwards"
            );
            writer.join().unwrap();
            let fin = live.snapshot();
            assert_eq!(fin.kernel().len(), n0 + 1, "ingested point lost");
        });
        report.assert_ok();
        report.assert_explored(1_000);
    }

    /// The full swap/replay dance: a background refactorization racing a
    /// concurrent observe must never lose the logged write — whatever order
    /// the scheduler picks for the refit's swap and the writer's update,
    /// every ingested point is in the final factor and the drift counters
    /// balance.
    #[test]
    fn check_refit_replay_never_loses_a_write() {
        let base = base_model();
        let n0 = base.kernel().len();
        let cfg = exa_check::Config {
            max_iterations: 600,
            ..Default::default()
        };
        let report = exa_check::check_with(cfg, move || {
            let live = LiveModel::new(Arc::clone(&base), quiet_policy());
            // Refit in flight from the start: the concurrent observe below
            // must land in the replay log (or after the swap) but never
            // vanish.
            live.force_refit();
            let writer_live = live.clone();
            let writer = exa_check::thread::spawn(move || {
                let rt = Runtime::new(1);
                writer_live
                    .observe(&[Location::new(0.53, 0.29)], &[0.1], &rt)
                    .expect("dense observe");
            });
            writer.join().unwrap();
            live.wait_refit_idle();
            let fin = live.snapshot();
            assert_eq!(
                fin.kernel().len(),
                n0 + 1,
                "write lost across the refit swap"
            );
            let drift = live.drift();
            assert_eq!(drift.updates_total, 1);
            assert_eq!(drift.points_ingested, 1);
            assert_eq!(drift.refits_triggered, 1);
            assert_eq!(drift.refits_completed, 1, "forced refit must complete");
        });
        report.assert_ok();
        report.assert_explored(600);
    }
}
