//! The legacy MLE driver: maximize ℓ(θ) over the Matérn parameters.
//!
//! Superseded by the kernel-generic [`crate::GeoModel`] session API, which
//! this module now delegates to. [`MleProblem::fit`] remains as a
//! compatibility wrapper producing the same `θ̂` (same optimizer, same
//! log-space search, same defaults); new code should build a
//! `GeoModel::<MaternKernel>` and keep the returned [`crate::FittedModel`] —
//! its cached factorization is what the prediction pipeline reuses.

use crate::likelihood::{Backend, LikelihoodConfig};
use crate::model::{FitOptions, GeoModel, ModelError};
use crate::optimizer::NelderMeadConfig;
use exa_covariance::{DistanceMetric, Location, MaternParams};
use exa_runtime::Runtime;
use std::sync::Arc;

/// An MLE problem: fixed data, choice of backend.
#[deprecated(
    since = "0.2.0",
    note = "use the `GeoModel` builder (`GeoModel::<MaternKernel>::builder()`)"
)]
#[derive(Clone)]
pub struct MleProblem {
    pub locations: Arc<Vec<Location>>,
    pub z: Vec<f64>,
    pub metric: DistanceMetric,
    pub backend: Backend,
    pub config: LikelihoodConfig,
    /// Diagonal regularization carried into every candidate kernel.
    pub nugget: f64,
}

/// Box bounds on the natural parameters `(θ₁, θ₂, θ₃)`.
#[derive(Clone, Debug)]
pub struct ParamBounds {
    pub lo: MaternParams,
    pub hi: MaternParams,
}

impl Default for ParamBounds {
    /// Generous defaults covering the paper's settings: variance and range
    /// over four decades, smoothness in `[0.1, 3]` (θ₃ "rarely above 1–2 in
    /// geophysical applications", §IV).
    fn default() -> Self {
        ParamBounds {
            lo: MaternParams::new(0.01, 0.001, 0.1),
            hi: MaternParams::new(100.0, 100.0, 3.0),
        }
    }
}

/// Result of one MLE fit.
#[derive(Clone, Debug)]
pub struct MleFit {
    /// The estimate `θ̂`.
    pub params: MaternParams,
    /// ℓ(θ̂).
    pub loglik: f64,
    /// Likelihood evaluations spent (each is one full factorization).
    pub evaluations: usize,
    /// Optimizer iterations.
    pub iterations: usize,
    /// Cumulative seconds spent inside likelihood evaluations.
    pub likelihood_seconds: f64,
    /// Best ℓ after each optimizer iteration.
    pub trace: Vec<f64>,
}

#[allow(deprecated)] // the impl of the deprecated wrapper itself
impl MleProblem {
    /// Fits `θ̂` starting from `initial`, under `bounds`.
    ///
    /// Compatibility wrapper over [`GeoModel::fit`]: same search, but the
    /// fitted model's cached factorization is dropped — one `potrf` at `θ̂`
    /// (≈ `1/max_evals` of the search cost) is paid and thrown away. Keep
    /// the [`crate::FittedModel`] instead when prediction follows.
    pub fn fit(
        &self,
        initial: MaternParams,
        bounds: &ParamBounds,
        nm: NelderMeadConfig,
        rt: &Runtime,
    ) -> MleFit {
        let model = GeoModel::<exa_covariance::MaternKernel>::builder()
            .locations(self.locations.clone())
            .data(self.z.clone())
            .metric(self.metric)
            .nugget(self.nugget)
            .backend(self.backend)
            .config(self.config)
            .build()
            .expect("valid MLE problem");
        // Legacy tolerance: the old driver fed `ln(bounds)` straight to the
        // optimizer, so a zero lower bound meant "unbounded below" (ln 0 =
        // −∞) and an infinite upper bound "unbounded above". The session API
        // validates 0 < lo ≤ hi < ∞; map the degenerate legacy shapes onto
        // the widest values it accepts (ln ≈ ∓708 — unbounded in practice).
        let lower = bounds
            .lo
            .to_array()
            .map(|v| if v > 0.0 { v } else { f64::MIN_POSITIVE });
        let upper = bounds
            .hi
            .to_array()
            .map(|v| if v.is_finite() { v } else { f64::MAX });
        let opts = FitOptions {
            initial: Some(initial.to_array().to_vec()),
            lower: Some(lower.to_vec()),
            upper: Some(upper.to_vec()),
            nm,
        };
        match model.fit(&opts, rt) {
            Ok(fitted) => {
                let report = fitted.report();
                MleFit {
                    params: fitted.kernel().params(),
                    loglik: fitted.log_likelihood().expect("fit requires data").value,
                    evaluations: report.evaluations,
                    iterations: report.iterations,
                    likelihood_seconds: report.likelihood_seconds,
                    trace: report.trace.clone(),
                }
            }
            // No feasible point: historical behaviour returned the best
            // simplex point with ℓ = −∞ so studies can count the failure.
            Err(ModelError::Infeasible { theta, report }) => MleFit {
                params: MaternParams::from_array(
                    theta.try_into().expect("matern θ has 3 parameters"),
                ),
                loglik: f64::NEG_INFINITY,
                evaluations: report.evaluations,
                iterations: report.iterations,
                likelihood_seconds: report.likelihood_seconds,
                trace: report.trace,
            },
            Err(e) => panic!("MLE fit failed: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    // The deprecated wrapper stays covered (and equivalent) until removal.
    #![allow(deprecated)]

    use super::*;
    use crate::likelihood::log_likelihood;
    use crate::locations::synthetic_locations;
    use crate::simulate::FieldSimulator;
    use exa_covariance::MaternKernel;
    use exa_util::Rng;

    fn fit_problem(
        truth: MaternParams,
        side: usize,
        backend: Backend,
        seed: u64,
    ) -> (MleFit, MaternParams) {
        let mut rng = Rng::seed_from_u64(seed);
        let locs = Arc::new(synthetic_locations(side, &mut rng));
        let rt = Runtime::new(4);
        let sim = FieldSimulator::new(locs.clone(), truth, DistanceMetric::Euclidean, 0.0, 32, &rt)
            .unwrap();
        let z = sim.draw(&mut rng);
        let problem = MleProblem {
            locations: locs,
            z,
            metric: DistanceMetric::Euclidean,
            backend,
            config: LikelihoodConfig { nb: 32, seed },
            nugget: 1e-8,
        };
        // Start away from the truth.
        let start = MaternParams::new(0.5, 0.05, 0.8);
        let nm = NelderMeadConfig {
            max_evals: 150,
            ftol: 1e-6,
            ..Default::default()
        };
        let fit = problem.fit(start, &ParamBounds::default(), nm, &rt);
        (fit, truth)
    }

    #[test]
    fn full_tile_recovers_parameters() {
        // n = 400 gives usable (if noisy) estimates; accept a broad window
        // around the truth, as the paper's boxplots do.
        let (fit, truth) = fit_problem(MaternParams::new(1.0, 0.1, 0.5), 20, Backend::FullTile, 1);
        // At n = 400 from one realization, (θ₁, θ₂, θ₃) are individually
        // weakly identified (the likelihood has a flat ridge); the defining
        // MLE property is that ℓ(θ̂) dominates ℓ at the generating truth.
        let mut rng2 = Rng::seed_from_u64(1);
        let locs = Arc::new(synthetic_locations(20, &mut rng2));
        let rt = Runtime::new(4);
        let sim = FieldSimulator::new(locs.clone(), truth, DistanceMetric::Euclidean, 0.0, 32, &rt)
            .unwrap();
        let z = sim.draw(&mut rng2);
        let kernel = MaternKernel::new(locs, truth, DistanceMetric::Euclidean, 1e-8);
        let ll_truth = log_likelihood(
            &kernel,
            &z,
            Backend::FullTile,
            LikelihoodConfig { nb: 32, seed: 1 },
            &rt,
        )
        .unwrap()
        .value;
        assert!(
            fit.loglik >= ll_truth - 0.5,
            "ℓ(θ̂) = {} must dominate ℓ(truth) = {}",
            fit.loglik,
            ll_truth
        );
        // Parameters land in loose but sane windows around the truth.
        assert!(
            fit.params.variance > 0.3 && fit.params.variance < 3.0,
            "variance {}",
            fit.params.variance
        );
        assert!(
            fit.params.range > 0.02 && fit.params.range < 0.5,
            "range {}",
            fit.params.range
        );
        assert!(
            (fit.params.smoothness - truth.smoothness).abs() < 0.25,
            "smoothness {}",
            fit.params.smoothness
        );
        assert!(fit.evaluations > 10);
    }

    #[test]
    fn tlr_matches_full_tile_estimate() {
        let truth = MaternParams::new(1.0, 0.1, 0.5);
        let (exact, _) = fit_problem(truth, 16, Backend::FullTile, 2);
        let (approx, _) = fit_problem(truth, 16, Backend::tlr(1e-9), 2);
        // Same data and start: TLR at tight accuracy lands near the exact
        // optimum (paper Figure 6's central claim).
        assert!(
            (exact.params.variance - approx.params.variance).abs() < 0.15,
            "{} vs {}",
            exact.params.variance,
            approx.params.variance
        );
        assert!(
            (exact.params.range - approx.params.range).abs() < 0.05,
            "{} vs {}",
            exact.params.range,
            approx.params.range
        );
        assert!(
            (exact.params.smoothness - approx.params.smoothness).abs() < 0.1,
            "{} vs {}",
            exact.params.smoothness,
            approx.params.smoothness
        );
    }

    #[test]
    fn loglik_at_estimate_beats_start() {
        let truth = MaternParams::new(1.0, 0.1, 0.5);
        let mut rng = Rng::seed_from_u64(3);
        let locs = Arc::new(synthetic_locations(12, &mut rng));
        let rt = Runtime::new(2);
        let sim = FieldSimulator::new(locs.clone(), truth, DistanceMetric::Euclidean, 0.0, 24, &rt)
            .unwrap();
        let z = sim.draw(&mut rng);
        let problem = MleProblem {
            locations: locs.clone(),
            z: z.clone(),
            metric: DistanceMetric::Euclidean,
            backend: Backend::FullTile,
            config: LikelihoodConfig { nb: 24, seed: 3 },
            nugget: 1e-8,
        };
        let start = MaternParams::new(0.3, 0.3, 1.2);
        let kernel = MaternKernel::new(locs, start, DistanceMetric::Euclidean, 1e-8);
        let ll_start = log_likelihood(&kernel, &z, Backend::FullTile, problem.config, &rt)
            .unwrap()
            .value;
        let fit = problem.fit(
            start,
            &ParamBounds::default(),
            NelderMeadConfig {
                max_evals: 120,
                ..Default::default()
            },
            &rt,
        );
        assert!(fit.loglik >= ll_start, "{} < {}", fit.loglik, ll_start);
        assert!(fit.likelihood_seconds > 0.0);
    }
}
