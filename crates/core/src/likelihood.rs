//! The Gaussian log-likelihood (paper Eq. 1) with interchangeable backends.
//!
//! ```text
//! ℓ(θ) = −(n/2)·ln 2π − ½·ln|Σ(θ)| − ½·Zᵀ Σ(θ)⁻¹ Z
//! ```
//!
//! One evaluation = generate `Σ(θ)`, Cholesky-factor it, take the
//! log-determinant off the factor's diagonal, and forward-solve for the
//! quadratic form (`Zᵀ Σ⁻¹ Z = ‖L⁻¹Z‖²`). The three computation techniques
//! the paper compares map to [`Backend`] variants:
//!
//! * [`Backend::FullBlock`] — LAPACK-style fork-join blocked Cholesky on a
//!   dense matrix ("Full-block" in Figure 3).
//! * [`Backend::FullTile`] — Chameleon-style tile Cholesky over the task
//!   runtime ("Full-tile", the machine-precision reference).
//! * [`Backend::Tlr`] — HiCMA-style TLR factorization at an accuracy
//!   threshold (the paper's contribution; `TLR-acc(ε)` series).

use exa_tlr::CompressionMethod;

/// Computation technique for one likelihood evaluation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Backend {
    /// Dense fork-join blocked Cholesky (LAPACK + threaded-BLAS model).
    FullBlock,
    /// Dense tile Cholesky on the task runtime (machine-precision reference).
    FullTile,
    /// Tile Low-Rank factorization at absolute accuracy `eps`.
    Tlr { eps: f64, method: CompressionMethod },
}

impl Backend {
    /// The TLR backend with the default (randomized SVD) compressor.
    pub fn tlr(eps: f64) -> Backend {
        Backend::Tlr {
            eps,
            method: CompressionMethod::Rsvd,
        }
    }
}

impl std::fmt::Display for Backend {
    /// The paper-legend label: `Full-block`, `Full-tile`, `TLR-acc(1e-9)`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::FullBlock => f.write_str("Full-block"),
            Backend::FullTile => f.write_str("Full-tile"),
            Backend::Tlr { eps, .. } => write!(f, "TLR-acc({eps:.0e})"),
        }
    }
}

/// Tuning for likelihood evaluations.
#[derive(Clone, Copy, Debug)]
pub struct LikelihoodConfig {
    /// Tile size (the paper tunes 560 dense / 1900 TLR at cluster scale).
    pub nb: usize,
    /// Random seed for the randomized compressor streams.
    pub seed: u64,
}

impl Default for LikelihoodConfig {
    fn default() -> Self {
        LikelihoodConfig {
            nb: 64,
            seed: 0x5eed,
        }
    }
}

/// One evaluated log-likelihood with its pieces and phase timings.
#[derive(Clone, Debug)]
pub struct LogLikelihood {
    /// ℓ(θ) (Eq. 1).
    pub value: f64,
    /// `ln|Σ(θ)|`.
    pub logdet: f64,
    /// `Zᵀ Σ⁻¹ Z`.
    pub quadratic: f64,
    /// Seconds to generate (and for TLR, compress) `Σ(θ)`.
    pub generation_seconds: f64,
    /// Seconds in the Cholesky factorization.
    pub factorization_seconds: f64,
    /// Seconds in the triangular solve + reductions.
    pub solve_seconds: f64,
    /// Bytes held by the factored representation.
    pub matrix_bytes: usize,
}

impl LogLikelihood {
    /// Total time of the evaluation (the paper's "time of one iteration").
    pub fn total_seconds(&self) -> f64 {
        self.generation_seconds + self.factorization_seconds + self.solve_seconds
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn assemble(
    n: usize,
    logdet: f64,
    quadratic: f64,
    generation_seconds: f64,
    factorization_seconds: f64,
    solve_seconds: f64,
    matrix_bytes: usize,
) -> LogLikelihood {
    let value =
        -0.5 * (n as f64) * (2.0 * std::f64::consts::PI).ln() - 0.5 * logdet - 0.5 * quadratic;
    LogLikelihood {
        value,
        logdet,
        quadratic,
        generation_seconds,
        factorization_seconds,
        solve_seconds,
        matrix_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locations::synthetic_locations;
    use crate::model::eval_log_likelihood as log_likelihood;
    use exa_covariance::{CovarianceKernel, DistanceMetric, Location, MaternKernel, MaternParams};
    use exa_runtime::Runtime;
    use exa_util::Rng;
    use std::sync::Arc;

    fn problem(side: usize, params: MaternParams, seed: u64) -> (MaternKernel, Vec<f64>, Runtime) {
        let mut rng = Rng::seed_from_u64(seed);
        let locs: Arc<Vec<Location>> = Arc::new(synthetic_locations(side, &mut rng));
        let kernel = MaternKernel::new(locs.clone(), params, DistanceMetric::Euclidean, 1e-8);
        let rt = Runtime::new(4);
        let z = crate::simulate::simulate_field(
            &locs,
            params,
            DistanceMetric::Euclidean,
            16,
            &rt,
            &mut rng,
        )
        .unwrap();
        (kernel, z, rt)
    }

    #[test]
    fn backends_agree_at_machine_precision() {
        let (kernel, z, rt) = problem(9, MaternParams::new(1.0, 0.1, 0.5), 1);
        let cfg = LikelihoodConfig { nb: 20, seed: 3 };
        let block = log_likelihood(&kernel, &z, Backend::FullBlock, cfg, &rt).unwrap();
        let tile = log_likelihood(&kernel, &z, Backend::FullTile, cfg, &rt).unwrap();
        let tlr = log_likelihood(&kernel, &z, Backend::tlr(1e-12), cfg, &rt).unwrap();
        assert!(
            (block.value - tile.value).abs() < 1e-7 * block.value.abs(),
            "block {} vs tile {}",
            block.value,
            tile.value
        );
        assert!(
            (tile.value - tlr.value).abs() < 1e-4 * tile.value.abs().max(1.0),
            "tile {} vs tlr {}",
            tile.value,
            tlr.value
        );
    }

    #[test]
    fn tlr_error_shrinks_with_accuracy() {
        let (kernel, z, rt) = problem(10, MaternParams::new(1.0, 0.1, 0.5), 2);
        let cfg = LikelihoodConfig { nb: 25, seed: 5 };
        let exact = log_likelihood(&kernel, &z, Backend::FullTile, cfg, &rt)
            .unwrap()
            .value;
        let loose = log_likelihood(&kernel, &z, Backend::tlr(1e-4), cfg, &rt)
            .unwrap()
            .value;
        let tight = log_likelihood(&kernel, &z, Backend::tlr(1e-10), cfg, &rt)
            .unwrap()
            .value;
        assert!(
            (tight - exact).abs() <= (loose - exact).abs() + 1e-9,
            "loose {loose}, tight {tight}, exact {exact}"
        );
    }

    #[test]
    fn true_parameters_beat_wrong_parameters() {
        // ℓ(θ) evaluated at the generating θ should exceed ℓ at a distant θ
        // (the property the MLE search relies on).
        let truth = MaternParams::new(1.0, 0.1, 0.5);
        let (kernel, z, rt) = problem(10, truth, 3);
        let cfg = LikelihoodConfig { nb: 25, seed: 7 };
        let at_truth = log_likelihood(&kernel, &z, Backend::FullTile, cfg, &rt)
            .unwrap()
            .value;
        let wrong = kernel.with_params(MaternParams::new(4.0, 0.4, 1.5));
        let at_wrong = log_likelihood(&wrong, &z, Backend::FullTile, cfg, &rt)
            .unwrap()
            .value;
        assert!(
            at_truth > at_wrong,
            "truth {at_truth} must beat wrong {at_wrong}"
        );
    }

    #[test]
    fn tlr_uses_less_memory_than_dense() {
        let (kernel, z, rt) = problem(14, MaternParams::new(1.0, 0.03, 0.5), 4);
        let cfg = LikelihoodConfig { nb: 28, seed: 9 };
        let tile = log_likelihood(&kernel, &z, Backend::FullTile, cfg, &rt).unwrap();
        let tlr = log_likelihood(&kernel, &z, Backend::tlr(1e-5), cfg, &rt).unwrap();
        assert!(
            tlr.matrix_bytes < tile.matrix_bytes,
            "TLR {} vs dense {}",
            tlr.matrix_bytes,
            tile.matrix_bytes
        );
    }

    #[test]
    fn quadratic_and_logdet_decompose_value() {
        let (kernel, z, rt) = problem(7, MaternParams::new(1.0, 0.1, 0.5), 5);
        let cfg = LikelihoodConfig { nb: 15, seed: 11 };
        let ll = log_likelihood(&kernel, &z, Backend::FullTile, cfg, &rt).unwrap();
        let n = kernel.len() as f64;
        let recomposed =
            -0.5 * n * (2.0 * std::f64::consts::PI).ln() - 0.5 * ll.logdet - 0.5 * ll.quadratic;
        assert!((ll.value - recomposed).abs() < 1e-12);
        assert!(ll.quadratic > 0.0);
    }
}
