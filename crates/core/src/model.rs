//! The session API: `GeoModel` → `fit`/`at_params` → `FittedModel`.
//!
//! The paper's workflow is a pipeline — generate `Σ(θ)`, factorize, evaluate
//! Eq. 1 inside an optimizer loop, then krige with the fitted `θ̂` (Eq. 4).
//! This module exposes that pipeline as a small session-style surface in the
//! spirit of ExaGeoStatR's API over the same engine:
//!
//! * [`GeoModel`] — the problem description: locations, optional
//!   measurements, a covariance *family* (any [`ParamCovariance`]), a
//!   computation technique ([`Backend`]) and tile/accuracy/nugget settings,
//!   assembled by [`GeoModelBuilder`].
//! * [`FittedModel`] — the model at a concrete `θ̂`, owning the **factored**
//!   `Σ(θ̂)` ([`Factorization`]). Likelihood pieces, kriging prediction,
//!   conditional variances and exact simulation all reuse that cached
//!   factor: after `fit()` no further `potrf` runs (see
//!   [`crate::factor::factorization_count`]).
//!
//! ```
//! use exa_covariance::MaternKernel;
//! use exa_geostat::{Backend, FitOptions, GeoModel};
//! use exa_runtime::Runtime;
//! use exa_util::Rng;
//! use std::sync::Arc;
//!
//! let rt = Runtime::new(2);
//! let mut rng = Rng::seed_from_u64(7);
//! let locations = Arc::new(exa_geostat::synthetic_locations(8, &mut rng));
//!
//! // Simulation session at the true θ…
//! let truth = GeoModel::<MaternKernel>::builder()
//!     .locations(locations.clone())
//!     .backend(Backend::FullTile)
//!     .build()
//!     .unwrap()
//!     .at_params(&[1.0, 0.1, 0.5], &rt)
//!     .unwrap();
//! let z = truth.simulate(&mut rng, &rt);
//!
//! // …then an estimation session over the observed data.
//! let model = GeoModel::<MaternKernel>::builder()
//!     .locations(locations)
//!     .data(z)
//!     .backend(Backend::tlr(1e-9))
//!     .build()
//!     .unwrap();
//! let fitted = model.fit(&FitOptions::default(), &rt).unwrap();
//! assert!(fitted.log_likelihood().unwrap().value.is_finite());
//! ```

use crate::factor::{FactorTimings, Factorization, TriangularSide};
use crate::likelihood::{assemble, Backend, LikelihoodConfig, LogLikelihood};
use crate::optimizer::{nelder_mead_max, Bounds, NelderMeadConfig, OptimResult};
use crate::predict::Prediction;
use exa_check::sync::{Arc, Mutex};
use exa_covariance::{CovarianceKernel, DistanceMetric, Location, ParamCovariance};
use exa_linalg::{LinalgError, Mat};
use exa_runtime::Runtime;
use exa_tile::{tile_gemm, TileMatrix};
use exa_util::Stopwatch;
use std::marker::PhantomData;

/// Errors from building, fitting or using a [`GeoModel`].
#[derive(Debug)]
pub enum ModelError {
    /// A linear-algebra failure (typically Cholesky breakdown at loose TLR
    /// accuracy on strongly correlated data).
    Linalg(LinalgError),
    /// A malformed parameter vector for the kernel family.
    InvalidParams(String),
    /// Inconsistent builder inputs (missing locations, length mismatch…).
    Shape(String),
    /// The operation needs measurement data, but the model was built without
    /// [`GeoModelBuilder::data`].
    NoData,
    /// A malformed prediction query: an empty target set, or a target with
    /// non-finite coordinates. Surfaced as an error (never a panic or NaN
    /// output) so serving layers can reject the request and keep running.
    InvalidQuery(String),
    /// The optimizer never found a feasible point: every likelihood
    /// evaluation hit a factorization breakdown. Carries the best point the
    /// simplex reached and the search report for diagnostics.
    Infeasible { theta: Vec<f64>, report: FitReport },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            ModelError::InvalidParams(msg) => write!(f, "invalid parameters: {msg}"),
            ModelError::Shape(msg) => write!(f, "inconsistent model inputs: {msg}"),
            ModelError::NoData => write!(f, "operation requires measurement data (.data(z))"),
            ModelError::InvalidQuery(msg) => write!(f, "invalid prediction query: {msg}"),
            ModelError::Infeasible { theta, .. } => {
                write!(f, "no feasible point found (best θ = {theta:?})")
            }
        }
    }
}

impl std::error::Error for ModelError {}

impl From<LinalgError> for ModelError {
    fn from(e: LinalgError) -> Self {
        ModelError::Linalg(e)
    }
}

/// Evaluates the Gaussian log-likelihood (paper Eq. 1) for **any** covariance
/// kernel through the shared [`Factorization`] interface.
///
/// This is the kernel-generic engine behind both [`GeoModel`] and the legacy
/// Matérn-only free function.
pub fn eval_log_likelihood<K: CovarianceKernel>(
    kernel: &K,
    z: &[f64],
    backend: Backend,
    cfg: LikelihoodConfig,
    rt: &Runtime,
) -> Result<LogLikelihood, LinalgError> {
    let n = kernel.len();
    assert_eq!(z.len(), n, "measurement vector length mismatch");
    let (mut factor, timings) = Factorization::compute(kernel, backend, cfg, rt)?;
    let mut w = Mat::from_vec(n, 1, z.to_vec());
    Ok(likelihood_from_factor(&mut factor, timings, &mut w, rt))
}

/// Assembles ℓ (Eq. 1) from an already-computed factor: log-determinant,
/// forward solve, quadratic form. Shared by [`eval_log_likelihood`] and the
/// session construction so the two can never drift apart.
///
/// `w` enters as `Z` and leaves **forward-solved** (`L⁻¹Z`); callers that
/// need `α = Σ⁻¹Z` continue with the backward solve.
fn likelihood_from_factor(
    factor: &mut Factorization,
    timings: FactorTimings,
    w: &mut Mat,
    rt: &Runtime,
) -> LogLikelihood {
    let mut sw = Stopwatch::start();
    let logdet = factor.logdet();
    factor.trsm(TriangularSide::Forward, w, rt);
    let quadratic: f64 = w.as_slice().iter().map(|v| v * v).sum();
    assemble(
        w.nrows(),
        logdet,
        quadratic,
        timings.generation_seconds,
        timings.factorization_seconds,
        sw.lap(),
        factor.bytes(),
    )
}

/// Options for [`GeoModel::fit`]: the starting point, box bounds and
/// optimizer settings.
///
/// Every `None` falls back to the kernel family's defaults: bounds from
/// [`ParamCovariance::default_bounds`], the start at their log-space
/// midpoint.
#[derive(Clone, Debug, Default)]
pub struct FitOptions {
    /// Starting `θ` (natural parameters).
    pub initial: Option<Vec<f64>>,
    /// Lower box bounds (natural parameters, strictly positive).
    pub lower: Option<Vec<f64>>,
    /// Upper box bounds (natural parameters).
    pub upper: Option<Vec<f64>>,
    /// Nelder–Mead settings.
    pub nm: NelderMeadConfig,
}

impl FitOptions {
    /// Options starting the search from `theta`.
    pub fn starting_at(theta: &[f64]) -> Self {
        FitOptions {
            initial: Some(theta.to_vec()),
            ..Default::default()
        }
    }
}

/// Diagnostics of one [`GeoModel::fit`] search.
#[derive(Clone, Debug, Default)]
pub struct FitReport {
    /// Likelihood evaluations spent (each is one full factorization).
    pub evaluations: usize,
    /// Optimizer iterations.
    pub iterations: usize,
    /// Cumulative seconds inside likelihood evaluations.
    pub likelihood_seconds: f64,
    /// Best ℓ after each optimizer iteration.
    pub trace: Vec<f64>,
}

/// A geostatistics session: fixed locations (and optionally measurements),
/// a covariance family `K`, a computation technique, and tuning.
///
/// `GeoModel` is cheap to clone-and-vary and does no linear algebra itself;
/// [`GeoModel::fit`] and [`GeoModel::at_params`] produce the factored
/// [`FittedModel`] that the expensive operations run on.
#[derive(Clone, Debug)]
pub struct GeoModel<K: ParamCovariance> {
    locations: Arc<Vec<Location>>,
    z: Option<Vec<f64>>,
    metric: DistanceMetric,
    nugget: f64,
    backend: Backend,
    config: LikelihoodConfig,
    _family: PhantomData<K>,
}

/// Builder for [`GeoModel`]; see the module docs for the workflow.
#[derive(Clone, Debug)]
pub struct GeoModelBuilder<K: ParamCovariance> {
    locations: Option<Arc<Vec<Location>>>,
    z: Option<Vec<f64>>,
    metric: DistanceMetric,
    nugget: f64,
    backend: Backend,
    config: LikelihoodConfig,
    _family: PhantomData<K>,
}

impl<K: ParamCovariance> Default for GeoModelBuilder<K> {
    fn default() -> Self {
        GeoModelBuilder {
            locations: None,
            z: None,
            metric: DistanceMetric::Euclidean,
            // A tiny default nugget keeps borderline geometries (and the
            // ill-conditioned Gaussian family) factorizable; set 0 to
            // reproduce the paper's exact model.
            nugget: 1e-8,
            backend: Backend::FullTile,
            config: LikelihoodConfig::default(),
            _family: PhantomData,
        }
    }
}

impl<K: ParamCovariance> GeoModelBuilder<K> {
    /// The spatial locations (required).
    pub fn locations(mut self, locations: Arc<Vec<Location>>) -> Self {
        self.locations = Some(locations);
        self
    }

    /// The measurement vector `Z` (one value per location). Optional:
    /// simulation-only sessions omit it.
    pub fn data(mut self, z: Vec<f64>) -> Self {
        self.z = Some(z);
        self
    }

    /// Distance metric (default: Euclidean).
    pub fn metric(mut self, metric: DistanceMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Diagonal regularization τ² (default `1e-8`; 0 = the paper's exact
    /// model).
    pub fn nugget(mut self, nugget: f64) -> Self {
        self.nugget = nugget;
        self
    }

    /// Computation technique (default: [`Backend::FullTile`]).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Full likelihood tuning block (tile size + compressor seed).
    pub fn config(mut self, config: LikelihoodConfig) -> Self {
        self.config = config;
        self
    }

    /// Tile size `nb` (default 64).
    pub fn tile_size(mut self, nb: usize) -> Self {
        self.config.nb = nb;
        self
    }

    /// Seed for the randomized compressor streams.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Validates the inputs and produces the session.
    pub fn build(self) -> Result<GeoModel<K>, ModelError> {
        let locations = self
            .locations
            .ok_or_else(|| ModelError::Shape("locations are required".into()))?;
        if locations.is_empty() {
            return Err(ModelError::Shape("location set is empty".into()));
        }
        if let Some(z) = &self.z {
            if z.len() != locations.len() {
                return Err(ModelError::Shape(format!(
                    "{} measurements for {} locations",
                    z.len(),
                    locations.len()
                )));
            }
        }
        if !(self.nugget >= 0.0 && self.nugget.is_finite()) {
            return Err(ModelError::Shape(format!(
                "nugget must be non-negative, got {}",
                self.nugget
            )));
        }
        Ok(GeoModel {
            locations,
            z: self.z,
            metric: self.metric,
            nugget: self.nugget,
            backend: self.backend,
            config: self.config,
            _family: PhantomData,
        })
    }
}

impl<K: ParamCovariance> GeoModel<K> {
    /// Starts a builder for the family `K`
    /// (e.g. `GeoModel::<MaternKernel>::builder()`).
    pub fn builder() -> GeoModelBuilder<K> {
        GeoModelBuilder::default()
    }

    /// Number of locations.
    pub fn len(&self) -> usize {
        self.locations.len()
    }

    /// True when the location set is empty (unreachable via the builder).
    pub fn is_empty(&self) -> bool {
        self.locations.is_empty()
    }

    /// The location set.
    pub fn locations(&self) -> &Arc<Vec<Location>> {
        &self.locations
    }

    /// The measurement vector, when present.
    pub fn data(&self) -> Option<&[f64]> {
        self.z.as_deref()
    }

    /// The computation technique.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The likelihood tuning block.
    pub fn config(&self) -> LikelihoodConfig {
        self.config
    }

    /// The kernel instance at `theta` over this model's locations.
    pub fn kernel_at(&self, theta: &[f64]) -> Result<K, ModelError> {
        K::from_parts(self.locations.clone(), theta, self.metric, self.nugget)
            .map_err(ModelError::InvalidParams)
    }

    /// Evaluates ℓ(θ) (Eq. 1) at one parameter vector. One factorization,
    /// discarded afterwards — use [`GeoModel::at_params`] to keep the factor.
    pub fn log_likelihood_at(
        &self,
        theta: &[f64],
        rt: &Runtime,
    ) -> Result<LogLikelihood, ModelError> {
        let z = self.z.as_ref().ok_or(ModelError::NoData)?;
        let kernel = self.kernel_at(theta)?;
        eval_log_likelihood(&kernel, z, self.backend, self.config, rt).map_err(ModelError::from)
    }

    /// Factorizes `Σ(θ)` at a known parameter vector and returns the session
    /// positioned there — no optimizer run.
    pub fn at_params(&self, theta: &[f64], rt: &Runtime) -> Result<FittedModel<K>, ModelError> {
        let kernel = self.kernel_at(theta)?;
        FittedModel::factorize(
            kernel,
            self.z.clone(),
            self.backend,
            self.config,
            FitReport::default(),
            rt,
        )
    }

    /// Maximizes ℓ(θ) by Nelder–Mead in log-parameter space (positivity is
    /// structural, §IV) and returns the model factored at `θ̂`.
    ///
    /// Factorization breakdowns during the search are treated as infeasible
    /// points the simplex retreats from; if *no* point ever succeeds the fit
    /// reports [`ModelError::Infeasible`].
    pub fn fit(&self, opts: &FitOptions, rt: &Runtime) -> Result<FittedModel<K>, ModelError> {
        let z = self.z.as_ref().ok_or(ModelError::NoData)?;
        let p = K::n_params();
        let (dlo, dhi) = K::default_bounds();
        let lo = opts.lower.clone().unwrap_or(dlo);
        let hi = opts.upper.clone().unwrap_or(dhi);
        if lo.len() != p || hi.len() != p {
            return Err(ModelError::InvalidParams(format!(
                "{} expects {p} parameters, bounds have {}/{}",
                K::FAMILY,
                lo.len(),
                hi.len()
            )));
        }
        for (i, (&l, &h)) in lo.iter().zip(&hi).enumerate() {
            // lo == hi is legal and fixes that parameter (the optimizer's
            // box bounds are inclusive and clamp to the point).
            if !(l > 0.0 && h >= l && h.is_finite()) {
                return Err(ModelError::InvalidParams(format!(
                    "bounds for {} must satisfy 0 < lo ≤ hi < ∞, got [{l}, {h}]",
                    K::param_names()[i]
                )));
            }
        }
        // Both box corners must lie inside the family's parameter domain
        // (e.g. a powered-exponential power bound above 2 would otherwise
        // panic mid-search when the simplex reaches it).
        for corner in [&lo, &hi] {
            self.kernel_at(corner)?;
        }
        // Log-space start: the given point, or the bounds' geometric midpoint.
        let x0: Vec<f64> = match &opts.initial {
            Some(theta) => {
                if theta.len() != p {
                    return Err(ModelError::InvalidParams(format!(
                        "{} expects {p} parameters, initial has {}",
                        K::FAMILY,
                        theta.len()
                    )));
                }
                theta.iter().map(|t| t.ln()).collect()
            }
            None => lo
                .iter()
                .zip(&hi)
                .map(|(&l, &h)| 0.5 * (l.ln() + h.ln()))
                .collect(),
        };
        // Validate the starting point eagerly so a malformed initial θ
        // surfaces as an error, not a silently-infeasible search.
        self.kernel_at(&x0.iter().map(|x| x.exp()).collect::<Vec<_>>())?;
        let spent = std::cell::Cell::new(0.0f64);
        let objective = |x: &[f64]| -> f64 {
            let theta: Vec<f64> = x.iter().map(|v| v.exp()).collect();
            // from_parts, not with_params_vec: exp∘ln rounding at a domain
            // boundary (e.g. a powered-exponential power bound of exactly 2)
            // can land a hair outside the family's domain on some libms —
            // that is an infeasible point, like a Cholesky breakdown, not a
            // panic.
            let Ok(k) = K::from_parts(self.locations.clone(), &theta, self.metric, self.nugget)
            else {
                return f64::NEG_INFINITY;
            };
            match eval_log_likelihood(&k, z, self.backend, self.config, rt) {
                Ok(ll) => {
                    spent.set(spent.get() + ll.total_seconds());
                    ll.value
                }
                Err(_) => f64::NEG_INFINITY,
            }
        };
        let bounds = Bounds::new(
            lo.iter().map(|v| v.ln()).collect(),
            hi.iter().map(|v| v.ln()).collect(),
        );
        let OptimResult {
            x,
            fx,
            evaluations,
            iterations,
            trace,
            ..
        } = nelder_mead_max(objective, &x0, &bounds, opts.nm);
        let theta_hat: Vec<f64> = x.iter().map(|v| v.exp()).collect();
        let report = FitReport {
            evaluations,
            iterations,
            likelihood_seconds: spent.get(),
            trace,
        };
        if !fx.is_finite() {
            return Err(ModelError::Infeasible {
                theta: theta_hat,
                report,
            });
        }
        // fx is finite, so the objective accepted θ̂: this cannot fail.
        let kernel = self.kernel_at(&theta_hat)?;
        FittedModel::factorize(
            kernel,
            Some(z.clone()),
            self.backend,
            self.config,
            report,
            rt,
        )
    }
}

/// Four-accumulator dot product: fixed summation order (deterministic under
/// any threading), with independent partial sums so the compiler can
/// vectorize the reduction the serial chain of a plain fold would block.
fn dot_unrolled(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let mut acc = [0.0f64; 4];
    let (xc, xr) = x.split_at(x.len() - x.len() % 4);
    let (yc, yr) = y.split_at(xc.len());
    for (cx, cy) in xc.chunks_exact(4).zip(yc.chunks_exact(4)) {
        acc[0] += cx[0] * cy[0];
        acc[1] += cx[1] * cy[1];
        acc[2] += cx[2] * cy[2];
        acc[3] += cx[3] * cy[3];
    }
    let mut tail = 0.0;
    for (cx, cy) in xr.iter().zip(yr) {
        tail += cx * cy;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Rejects empty or non-finite prediction queries (the error message is
/// wrapped into [`ModelError::InvalidQuery`] by the callers).
fn validate_query(targets: &[Location]) -> Result<(), String> {
    if targets.is_empty() {
        return Err("empty target set".into());
    }
    for (i, t) in targets.iter().enumerate() {
        if !(t.x.is_finite() && t.y.is_finite()) {
            return Err(format!(
                "target {i} has non-finite coordinates ({}, {})",
                t.x, t.y
            ));
        }
    }
    Ok(())
}

/// Batch-level query validation: every coalesced request must be non-empty
/// and finite, and the error names the offending request.
fn validate_batch(requests: &[&[Location]]) -> Result<(), ModelError> {
    for (idx, targets) in requests.iter().enumerate() {
        validate_query(targets)
            .map_err(|msg| ModelError::InvalidQuery(format!("request {idx}: {msg}")))?;
    }
    Ok(())
}

/// A [`GeoModel`] positioned at a concrete `θ̂`, owning the factored
/// `Σ(θ̂)`.
///
/// Prediction, conditional variances and simulation reuse the cached
/// [`Factorization`] — zero further `potrf` calls. The factor sits behind a
/// mutex only because the tile/TLR solvers create their raw views through
/// `&mut`; no method mutates it.
pub struct FittedModel<K: ParamCovariance> {
    kernel: K,
    z: Option<Vec<f64>>,
    backend: Backend,
    config: LikelihoodConfig,
    factor: Mutex<Factorization>,
    timings: FactorTimings,
    /// Observed coordinates in structure-of-arrays layout, split once at
    /// construction: the batched prediction path fills cross-covariance rows
    /// against contiguous coordinate streams (SIMD-friendly; see
    /// [`ParamCovariance::fill_cross_row`]).
    obs_x: Vec<f64>,
    obs_y: Vec<f64>,
    /// `α = Σ(θ̂)⁻¹ Z` as an `n × 1` column, solved once at construction:
    /// every subsequent prediction is just the cross-covariance product
    /// `Σ₁₂ · α`, with no per-call copy of `α`.
    alpha: Option<Mat>,
    /// Seconds of the `α` pre-solve phase at construction (logdet read,
    /// forward + backward triangular solves, quadratic form).
    alpha_seconds: f64,
    likelihood: Option<LogLikelihood>,
    report: FitReport,
}

impl<K: ParamCovariance> FittedModel<K> {
    /// Factors `Σ(θ)` once and pre-solves `α = Σ⁻¹Z` (when data is present).
    fn factorize(
        kernel: K,
        z: Option<Vec<f64>>,
        backend: Backend,
        config: LikelihoodConfig,
        report: FitReport,
        rt: &Runtime,
    ) -> Result<Self, ModelError> {
        let n = kernel.len();
        let (mut factor, timings) = Factorization::compute(&kernel, backend, config, rt)?;
        let (alpha, likelihood, alpha_seconds) = match &z {
            Some(z) => {
                let mut w = Mat::from_vec(n, 1, z.clone());
                let ll = likelihood_from_factor(&mut factor, timings, &mut w, rt);
                let mut sw = Stopwatch::start();
                factor.trsm(TriangularSide::Backward, &mut w, rt);
                let alpha_seconds = ll.solve_seconds + sw.lap();
                (Some(w), Some(ll), alpha_seconds)
            }
            None => (None, None, 0.0),
        };
        let observed = kernel.locations_arc();
        let obs_x: Vec<f64> = observed.iter().map(|l| l.x).collect();
        let obs_y: Vec<f64> = observed.iter().map(|l| l.y).collect();
        Ok(FittedModel {
            kernel,
            z,
            backend,
            config,
            factor: Mutex::new(factor),
            timings,
            obs_x,
            obs_y,
            alpha,
            alpha_seconds,
            likelihood,
            report,
        })
    }

    /// The kernel instance at `θ̂`.
    pub fn kernel(&self) -> &K {
        &self.kernel
    }

    /// The fitted parameter vector `θ̂`.
    pub fn params(&self) -> Vec<f64> {
        self.kernel.params_vec()
    }

    /// ℓ(θ̂) with its pieces and timings (`None` for data-less sessions).
    pub fn log_likelihood(&self) -> Option<&LogLikelihood> {
        self.likelihood.as_ref()
    }

    /// The optimizer's search diagnostics (all-default for
    /// [`GeoModel::at_params`] sessions).
    pub fn report(&self) -> &FitReport {
        &self.report
    }

    /// Generation/factorization timings of the cached factor.
    pub fn factor_timings(&self) -> FactorTimings {
        self.timings
    }

    /// Seconds of the `α = Σ⁻¹Z` pre-solve phase at construction: the
    /// log-determinant read, both triangular solves and the quadratic form
    /// (0 for data-less sessions). Together with
    /// [`FittedModel::factor_timings`] this accounts for the full one-off
    /// cost predictions amortize.
    pub fn alpha_solve_seconds(&self) -> f64 {
        self.alpha_seconds
    }

    /// The computation technique the factor was built with.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Bytes held by the factored representation.
    pub fn factor_bytes(&self) -> usize {
        self.factor.lock().expect("factor lock").bytes()
    }

    /// Diagonal-ratio condition estimate of the cached factor (see
    /// [`Factorization::condition_estimate`]); `None` for tile/TLR storage.
    pub fn factor_condition_estimate(&self) -> Option<f64> {
        self.factor
            .lock()
            .expect("factor lock")
            .condition_estimate()
    }

    /// Kriging prediction `Ẑ₁ = Σ₁₂ Σ₂₂⁻¹ Z₂` (Eq. 4) at the target
    /// locations, **reusing** the cached factor and pre-solved `α`: the cost
    /// is one rectangular cross-covariance product, no factorization and no
    /// solve.
    ///
    /// This is the general one-shot path: the cross-covariance block is
    /// built in tile layout and the product runs over the task runtime, so a
    /// single large query scales with the runtime's workers. Serving
    /// workloads with many small queries should coalesce them through
    /// [`FittedModel::predict_batch`] instead, which amortizes the per-call
    /// setup into one lean blocked pass.
    pub fn predict(&self, targets: &[Location], rt: &Runtime) -> Result<Prediction, ModelError> {
        let alpha = self.alpha.as_ref().ok_or(ModelError::NoData)?;
        validate_query(targets).map_err(ModelError::InvalidQuery)?;
        let m = targets.len();
        let n = self.kernel.len();
        let mut sw = Stopwatch::start();
        // Σ₁₂ over the joint list: rows = targets (0..m), cols = observed.
        let kj = self.joint_kernel(targets);
        let sigma12 = TileMatrix::from_kernel_rect(&kj, 0, m, m, n, self.config.nb);
        let values = tile_gemm(&sigma12, alpha, rt.num_workers())
            .as_slice()
            .to_vec();
        Ok(Prediction {
            values,
            factorization_seconds: 0.0,
            solve_seconds: sw.lap(),
        })
    }

    /// Kriging with per-target conditional variances (Eq. 3):
    /// `Var[Z₁|Z₂] = diag(Σ₁₁ − Σ₁₂ Σ₂₂⁻¹ Σ₂₁)`, through the cached factor
    /// (one block solve with `m` right-hand sides, no factorization).
    ///
    /// The cross-covariance block is generated **once** (each entry costs a
    /// kernel evaluation — a Bessel call for Matérn): the mean predictor is
    /// its product with the cached `α`, and a pre-solve copy feeds the
    /// variance dot products.
    pub fn predict_with_variance(
        &self,
        targets: &[Location],
        rt: &Runtime,
    ) -> Result<(Prediction, Vec<f64>), ModelError> {
        let alpha = self.alpha.as_ref().ok_or(ModelError::NoData)?;
        validate_query(targets).map_err(ModelError::InvalidQuery)?;
        let m = targets.len();
        let n = self.kernel.len();
        let mut sw = Stopwatch::start();
        let kj = self.joint_kernel(targets);
        // Σ₂₁ (n × m) as one dense block. The mean predictor reads it before
        // the solve; the variance term needs only the *forward* solve, since
        // Σ₁₂ Σ₂₂⁻¹ Σ₂₁ (j,j) = ‖L⁻¹ Σ₂₁(:,j)‖².
        let mut s21 = Mat::from_fn(n, m, |i, j| kj.entry(m + i, j));
        // Ẑ₁(j) = Σ₁₂(j,:) · α = Σ₂₁(:,j)ᵀ · α.
        let a = alpha.col(0);
        let values: Vec<f64> = (0..m)
            .map(|j| s21.col(j).iter().zip(a).map(|(c, x)| c * x).sum())
            .collect();
        self.factor
            .lock()
            .expect("factor lock")
            .trsm(TriangularSide::Forward, &mut s21, rt);
        let sill = self.kernel.sill();
        let variances = (0..m)
            .map(|j| {
                let acc: f64 = s21.col(j).iter().map(|x| x * x).sum();
                // Clamp tiny negatives from approximation error.
                (sill - acc).max(0.0)
            })
            .collect();
        let prediction = Prediction {
            values,
            factorization_seconds: 0.0,
            solve_seconds: sw.lap(),
        };
        Ok((prediction, variances))
    }

    /// Coalesced kriging for a micro-batch of point-prediction requests
    /// (the `exa-serve` hot path).
    ///
    /// All requests' targets are answered in **one blocked pass** over the
    /// observed coordinates: per target one SIMD-friendly cross-covariance
    /// row fill ([`ParamCovariance::fill_cross_row`], against the
    /// structure-of-arrays coordinates cached at construction) and one dot
    /// product with the pre-solved `α` — no per-request location cloning,
    /// tile assembly, or task-graph setup, and of course no factorization.
    /// The flat result block is partitioned back into one [`Prediction`]
    /// per request (batch time attributed proportionally to request size).
    ///
    /// Deliberately single-threaded per batch: a prediction server scales
    /// across micro-batches with its worker threads, so the per-batch kernel
    /// stays lean instead of forking. Vectorized family fills may differ
    /// from the entry-wise [`FittedModel::predict`] path by ≤ ~3·10⁻¹³
    /// relative error.
    ///
    /// Errors with [`ModelError::InvalidQuery`] if any request is empty or
    /// contains non-finite coordinates; zero requests yield zero responses.
    pub fn predict_batch(&self, requests: &[&[Location]]) -> Result<Vec<Prediction>, ModelError> {
        let alpha = self.alpha.as_ref().ok_or(ModelError::NoData)?;
        validate_batch(requests)?;
        let mut sw = Stopwatch::start();
        let a = alpha.col(0);
        let n = self.kernel.len();
        let total: usize = requests.iter().map(|r| r.len()).sum();
        let mut row = vec![0.0f64; n];
        let mut out = Vec::with_capacity(requests.len());
        for targets in requests {
            let mut values = Vec::with_capacity(targets.len());
            for t in *targets {
                self.kernel
                    .fill_cross_row(t, &self.obs_x, &self.obs_y, &mut row);
                values.push(dot_unrolled(&row, a));
            }
            out.push(Prediction {
                values,
                factorization_seconds: 0.0,
                solve_seconds: 0.0,
            });
        }
        let elapsed = sw.lap();
        for (p, targets) in out.iter_mut().zip(requests) {
            p.solve_seconds = elapsed * targets.len() as f64 / total as f64;
        }
        Ok(out)
    }

    /// Coalesced kriging **with conditional variances** for a micro-batch of
    /// requests (Eq. 3 and 4 over one shared block).
    ///
    /// The batched win over per-request [`FittedModel::predict_with_variance`]
    /// calls: all targets share **one** `n × m_total` cross-covariance build
    /// and **one** blocked forward solve through the cached factor — the
    /// per-request BLAS-2 triangular solve becomes an amortized BLAS-3
    /// multi-RHS solve. Results partition back per request.
    pub fn predict_batch_with_variance(
        &self,
        requests: &[&[Location]],
        rt: &Runtime,
    ) -> Result<Vec<(Prediction, Vec<f64>)>, ModelError> {
        let alpha = self.alpha.as_ref().ok_or(ModelError::NoData)?;
        validate_batch(requests)?;
        let total: usize = requests.iter().map(|r| r.len()).sum();
        if total == 0 {
            return Ok(vec![]);
        }
        let mut sw = Stopwatch::start();
        let n = self.kernel.len();
        // Σ₂₁ over the whole batch: column j = cross-covariances of
        // coalesced target j (columns are contiguous, so each is one
        // blocked row fill).
        let mut s21 = Mat::zeros(n, total);
        let mut col = 0usize;
        for targets in requests {
            for t in *targets {
                self.kernel
                    .fill_cross_row(t, &self.obs_x, &self.obs_y, s21.col_mut(col));
                col += 1;
            }
        }
        // Means before the solve consumes the block: Ẑ(j) = Σ₂₁(:,j)ᵀ · α —
        // same unrolled reduction as `predict_batch`, so the two batch paths
        // return bitwise-identical means for the same query.
        let a = alpha.col(0);
        let means: Vec<f64> = (0..total).map(|j| dot_unrolled(s21.col(j), a)).collect();
        // One multi-RHS forward solve for every request in the batch.
        self.factor
            .lock()
            .expect("factor lock")
            .trsm(TriangularSide::Forward, &mut s21, rt);
        let sill = self.kernel.sill();
        let variances: Vec<f64> = (0..total)
            .map(|j| {
                let acc: f64 = s21.col(j).iter().map(|x| x * x).sum();
                (sill - acc).max(0.0)
            })
            .collect();
        let elapsed = sw.lap();
        let mut out = Vec::with_capacity(requests.len());
        let mut col = 0usize;
        for targets in requests {
            let m = targets.len();
            out.push((
                Prediction {
                    values: means[col..col + m].to_vec(),
                    factorization_seconds: 0.0,
                    solve_seconds: elapsed * m as f64 / total as f64,
                },
                variances[col..col + m].to_vec(),
            ));
            col += m;
        }
        Ok(out)
    }

    /// Draws one exact realization `Z = L·w`, `w ~ N(0, I)`, through the
    /// cached factor (the ExaGeoStat data generator).
    pub fn simulate(&self, rng: &mut exa_util::Rng, rt: &Runtime) -> Vec<f64> {
        let mut w = Mat::zeros(self.kernel.len(), 1);
        rng.fill_gaussian(w.as_mut_slice());
        self.factor
            .lock()
            .expect("factor lock")
            .apply_factor(&w, rt)
            .as_slice()
            .to_vec()
    }

    /// Draws `count` independent realizations through the cached factor.
    ///
    /// The draws form one `n × count` block so the factor is applied once —
    /// for the TLR backend in particular, its densification happens once per
    /// batch, not once per draw. The Gaussian stream (and therefore every
    /// realization) is identical to `count` sequential
    /// [`FittedModel::simulate`] calls.
    pub fn simulate_many(
        &self,
        count: usize,
        rng: &mut exa_util::Rng,
        rt: &Runtime,
    ) -> Vec<Vec<f64>> {
        if count == 0 {
            return vec![];
        }
        let mut w = Mat::zeros(self.kernel.len(), count);
        rng.fill_gaussian(w.as_mut_slice());
        let y = self
            .factor
            .lock()
            .expect("factor lock")
            .apply_factor(&w, rt);
        (0..count).map(|c| y.col(c).to_vec()).collect()
    }

    /// The measurement vector, when present.
    pub fn data(&self) -> Option<&[f64]> {
        self.z.as_deref()
    }

    /// The kernel family over targets ++ observed, for cross-covariance
    /// blocks (row/column offsets never meet the diagonal, so the nugget the
    /// kernel carries is never applied).
    fn joint_kernel(&self, targets: &[Location]) -> K {
        let observed = self.kernel.locations_arc();
        let mut joint = Vec::with_capacity(targets.len() + observed.len());
        joint.extend_from_slice(targets);
        joint.extend_from_slice(observed);
        self.kernel.with_locations(Arc::new(joint))
    }

    /// A new session absorbing `points`/`values` at the tail of the observed
    /// set via a rank-k Cholesky **update** of the cached factor — `O(n²·k)`
    /// instead of the `O(n³)` refit, with the leading `n×n` factor block
    /// bitwise untouched. Re-solves `α` through the grown factor (two
    /// triangular solves) and rebuilds the coordinate SoA and likelihood.
    ///
    /// Returns `Ok(None)` when the factor's storage scheme cannot update
    /// incrementally (tile/TLR): the caller should refactorize instead. This
    /// is the engine under [`crate::live::LiveModel::observe`].
    pub fn with_appended(
        &self,
        points: &[Location],
        values: &[f64],
        rt: &Runtime,
    ) -> Result<Option<Self>, ModelError> {
        let (kernel, z_new) = self.appended_parts(points, values)?;
        let dense = match &*self.factor.lock().expect("factor lock") {
            Factorization::Dense(l) => l.clone(),
            _ => return Ok(None),
        };
        let mut factor = Factorization::Dense(dense);
        factor.append(&kernel, points.len())?;
        Ok(Some(Self::resolved(
            kernel,
            z_new,
            factor,
            self.backend,
            self.config,
            self.timings,
            self.report.clone(),
            rt,
        )))
    }

    /// The full-refit twin of [`FittedModel::with_appended`]: same joint
    /// location set and data, but factored from scratch. Used as the
    /// synchronous fallback when the storage scheme cannot update
    /// incrementally, and by agreement tests as the exact reference.
    pub fn refit_appended(
        &self,
        points: &[Location],
        values: &[f64],
        rt: &Runtime,
    ) -> Result<Self, ModelError> {
        let (kernel, z_new) = self.appended_parts(points, values)?;
        Self::factorize(
            kernel,
            Some(z_new),
            self.backend,
            self.config,
            self.report.clone(),
            rt,
        )
    }

    /// Validates an ingest batch and builds the joint (observed ++ new)
    /// kernel and extended data vector.
    fn appended_parts(
        &self,
        points: &[Location],
        values: &[f64],
    ) -> Result<(K, Vec<f64>), ModelError> {
        let z = self.z.as_ref().ok_or(ModelError::NoData)?;
        if points.len() != values.len() {
            return Err(ModelError::Shape(format!(
                "{} points but {} values",
                points.len(),
                values.len()
            )));
        }
        validate_query(points).map_err(ModelError::InvalidQuery)?;
        if values.iter().any(|v| !v.is_finite()) {
            return Err(ModelError::InvalidQuery(
                "observed values must be finite".into(),
            ));
        }
        let observed = self.kernel.locations_arc();
        let mut joint = Vec::with_capacity(observed.len() + points.len());
        joint.extend_from_slice(observed);
        joint.extend_from_slice(points);
        let mut z_new = z.clone();
        z_new.extend_from_slice(values);
        Ok((self.kernel.with_locations(Arc::new(joint)), z_new))
    }

    /// A new session with the observations at `indices` expired via Cholesky
    /// **downdates** of the cached factor (`O(n²)` per removed row), then
    /// `α` re-solved and the SoA/likelihood rebuilt over the survivors.
    ///
    /// Returns `Ok(None)` for tile/TLR factors (refit instead); rejects
    /// out-of-range indices and removing the entire observation set.
    pub fn with_removed(
        &self,
        indices: &[usize],
        rt: &Runtime,
    ) -> Result<Option<Self>, ModelError> {
        let (kernel, kept_z, drop) = self.removed_parts(indices)?;
        let dense = match &*self.factor.lock().expect("factor lock") {
            Factorization::Dense(l) => l.clone(),
            _ => return Ok(None),
        };
        let mut factor = Factorization::Dense(dense);
        factor.remove(&drop);
        Ok(Some(Self::resolved(
            kernel,
            kept_z,
            factor,
            self.backend,
            self.config,
            self.timings,
            self.report.clone(),
            rt,
        )))
    }

    /// The full-refit twin of [`FittedModel::with_removed`].
    pub fn refit_removed(&self, indices: &[usize], rt: &Runtime) -> Result<Self, ModelError> {
        let (kernel, kept_z, _) = self.removed_parts(indices)?;
        Self::factorize(
            kernel,
            Some(kept_z),
            self.backend,
            self.config,
            self.report.clone(),
            rt,
        )
    }

    /// Validates expiry indices and builds the surviving kernel/data pair
    /// (plus the sorted, deduplicated index list for the factor downdate).
    #[allow(clippy::type_complexity)]
    fn removed_parts(&self, indices: &[usize]) -> Result<(K, Vec<f64>, Vec<usize>), ModelError> {
        let z = self.z.as_ref().ok_or(ModelError::NoData)?;
        let n = self.kernel.len();
        let mut drop: Vec<usize> = indices.to_vec();
        drop.sort_unstable();
        drop.dedup();
        if drop.last().is_some_and(|&i| i >= n) {
            return Err(ModelError::InvalidQuery(format!(
                "removal index {} out of range for {n} observations",
                drop.last().unwrap()
            )));
        }
        if drop.len() >= n {
            return Err(ModelError::InvalidQuery(
                "cannot expire every observation".into(),
            ));
        }
        let observed = self.kernel.locations_arc();
        let mut kept_locs = Vec::with_capacity(n - drop.len());
        let mut kept_z = Vec::with_capacity(n - drop.len());
        let mut next = drop.iter().copied().peekable();
        for i in 0..n {
            if next.peek() == Some(&i) {
                next.next();
            } else {
                kept_locs.push(observed[i]);
                kept_z.push(z[i]);
            }
        }
        Ok((
            self.kernel.with_locations(Arc::new(kept_locs)),
            kept_z,
            drop,
        ))
    }

    /// Assembles a session around an already-updated factor: re-solves
    /// `α = Σ⁻¹Z`, recomputes the likelihood pieces through the factor, and
    /// rebuilds the coordinate SoA. Shared tail of the incremental-ingest
    /// constructors.
    #[allow(clippy::too_many_arguments)]
    fn resolved(
        kernel: K,
        z: Vec<f64>,
        mut factor: Factorization,
        backend: Backend,
        config: LikelihoodConfig,
        timings: FactorTimings,
        report: FitReport,
        rt: &Runtime,
    ) -> Self {
        let n = kernel.len();
        debug_assert_eq!(z.len(), n);
        let mut w = Mat::from_vec(n, 1, z.clone());
        let ll = likelihood_from_factor(&mut factor, timings, &mut w, rt);
        let mut sw = Stopwatch::start();
        factor.trsm(TriangularSide::Backward, &mut w, rt);
        let alpha_seconds = ll.solve_seconds + sw.lap();
        let observed = kernel.locations_arc();
        let obs_x: Vec<f64> = observed.iter().map(|l| l.x).collect();
        let obs_y: Vec<f64> = observed.iter().map(|l| l.y).collect();
        FittedModel {
            kernel,
            z: Some(z),
            backend,
            config,
            factor: Mutex::new(factor),
            timings,
            obs_x,
            obs_y,
            alpha: Some(w),
            alpha_seconds,
            likelihood: Some(ll),
            report,
        }
    }

    /// A from-scratch refactorization of this session at the same `θ̂`,
    /// backend and data — the background-refit path of
    /// [`crate::live::LiveModel`]. Unlike the incremental constructors this
    /// runs the full `O(n³)` [`Factorization::compute`].
    pub fn refactored(&self, rt: &Runtime) -> Result<Self, ModelError> {
        Self::factorize(
            self.kernel.clone(),
            self.z.clone(),
            self.backend,
            self.config,
            self.report.clone(),
            rt,
        )
    }
}

/// Compile-time proof that sessions are shareable across threads: the
/// `exa-serve` prediction workers hold `Arc<FittedModel<K>>` and call the
/// prediction paths concurrently. The generic form covers **every** kernel
/// family (`ParamCovariance` is `Send + Sync`); the `const` items pin the
/// concrete types the serving layer registers today.
#[allow(dead_code)]
fn assert_sessions_are_send_sync<K: ParamCovariance>() {
    fn check<T: Send + Sync>() {}
    check::<GeoModel<K>>();
    check::<FittedModel<K>>();
}
const _: () = {
    const fn check<T: Send + Sync>() {}
    check::<FittedModel<exa_covariance::MaternKernel>>();
    check::<FittedModel<exa_covariance::GaussianKernel>>();
    check::<FittedModel<exa_covariance::PoweredExponentialKernel>>();
    check::<GeoModel<exa_covariance::MaternKernel>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locations::{holdout_split, synthetic_locations};
    use exa_covariance::{GaussianKernel, MaternKernel, PoweredExponentialKernel};
    use exa_util::Rng;

    fn matern_model(side: usize, seed: u64, backend: Backend) -> (GeoModel<MaternKernel>, Runtime) {
        let mut rng = Rng::seed_from_u64(seed);
        let locations = Arc::new(synthetic_locations(side, &mut rng));
        let rt = Runtime::new(4);
        let gen = GeoModel::<MaternKernel>::builder()
            .locations(locations.clone())
            .nugget(0.0)
            .tile_size(32)
            .build()
            .unwrap()
            .at_params(&[1.0, 0.1, 0.5], &rt)
            .unwrap();
        let z = gen.simulate(&mut rng, &rt);
        let model = GeoModel::<MaternKernel>::builder()
            .locations(locations)
            .data(z)
            .backend(backend)
            .tile_size(32)
            .seed(seed)
            .build()
            .unwrap();
        (model, rt)
    }

    #[test]
    fn builder_validates_inputs() {
        assert!(matches!(
            GeoModel::<MaternKernel>::builder().build(),
            Err(ModelError::Shape(_))
        ));
        let locs = Arc::new(vec![Location::new(0.0, 0.0), Location::new(1.0, 1.0)]);
        assert!(matches!(
            GeoModel::<MaternKernel>::builder()
                .locations(locs.clone())
                .data(vec![1.0])
                .build(),
            Err(ModelError::Shape(_))
        ));
        assert!(GeoModel::<MaternKernel>::builder()
            .locations(locs)
            .build()
            .is_ok());
    }

    #[test]
    fn kernel_at_rejects_malformed_theta() {
        let locs = Arc::new(vec![Location::new(0.0, 0.0)]);
        let model = GeoModel::<MaternKernel>::builder()
            .locations(locs)
            .build()
            .unwrap();
        assert!(matches!(
            model.kernel_at(&[1.0, 0.1]),
            Err(ModelError::InvalidParams(_))
        ));
        assert!(matches!(
            model.kernel_at(&[1.0, -0.1, 0.5]),
            Err(ModelError::InvalidParams(_))
        ));
    }

    #[test]
    fn data_less_session_simulates_but_cannot_fit() {
        let mut rng = Rng::seed_from_u64(9);
        let locs = Arc::new(synthetic_locations(5, &mut rng));
        let rt = Runtime::new(2);
        let model = GeoModel::<MaternKernel>::builder()
            .locations(locs)
            .tile_size(16)
            .build()
            .unwrap();
        assert!(matches!(
            model.fit(&FitOptions::default(), &rt),
            Err(ModelError::NoData)
        ));
        let at = model.at_params(&[1.0, 0.1, 0.5], &rt).unwrap();
        assert!(at.log_likelihood().is_none());
        assert!(matches!(at.predict(&[], &rt), Err(ModelError::NoData)));
        let z = at.simulate(&mut rng, &rt);
        assert_eq!(z.len(), 25);
    }

    #[test]
    fn fit_improves_on_start_and_predicts() {
        let (model, rt) = matern_model(12, 11, Backend::FullTile);
        let start = [0.5, 0.05, 0.8];
        let at_start = model.log_likelihood_at(&start, &rt).unwrap().value;
        let fitted = model
            .fit(
                &FitOptions {
                    initial: Some(start.to_vec()),
                    nm: NelderMeadConfig {
                        max_evals: 60,
                        ftol: 1e-4,
                        ..Default::default()
                    },
                    ..Default::default()
                },
                &rt,
            )
            .unwrap();
        let ll = fitted.log_likelihood().unwrap();
        assert!(ll.value >= at_start, "{} < {at_start}", ll.value);
        assert!(fitted.report().evaluations > 5);
        assert!(fitted.report().likelihood_seconds > 0.0);
        // Prediction at a handful of interior points stays bounded.
        let targets = [Location::new(0.5, 0.5), Location::new(0.25, 0.75)];
        let p = fitted.predict(&targets, &rt).unwrap();
        assert_eq!(p.values.len(), 2);
        assert!(p.values.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn factor_reuse_performs_zero_potrf() {
        let (model, rt) = matern_model(10, 13, Backend::FullTile);
        let fitted = model.at_params(&[1.0, 0.1, 0.5], &rt).unwrap();
        let targets = [Location::new(0.4, 0.4), Location::new(0.9, 0.2)];
        let before = crate::factor::factorization_count();
        let p1 = fitted.predict(&targets, &rt).unwrap();
        let p2 = fitted.predict(&targets, &rt).unwrap();
        let (_, vars) = fitted.predict_with_variance(&targets, &rt).unwrap();
        assert_eq!(
            crate::factor::factorization_count(),
            before,
            "prediction after fitting must not re-factorize"
        );
        assert_eq!(p1.values, p2.values);
        assert_eq!(vars.len(), 2);
        assert_eq!(p1.factorization_seconds, 0.0);
    }

    #[test]
    fn batched_predictions_match_serial_paths() {
        // One coalesced predict_batch call must agree with issuing the same
        // requests one-by-one through predict / predict_with_variance, for
        // every backend (fast vectorized exponential: ≤ ~1e-12 relative).
        for backend in [Backend::FullBlock, Backend::FullTile, Backend::tlr(1e-11)] {
            let (model, rt) = matern_model(10, 29, backend);
            let fitted = model.at_params(&[1.0, 0.1, 0.5], &rt).unwrap();
            let requests: Vec<Vec<Location>> = vec![
                vec![Location::new(0.3, 0.4)],
                vec![Location::new(0.7, 0.2), Location::new(0.1, 0.9)],
                vec![Location::new(0.5, 0.5)],
            ];
            let slices: Vec<&[Location]> = requests.iter().map(|r| r.as_slice()).collect();
            let before = crate::factor::factorization_count();
            let batch = fitted.predict_batch(&slices).unwrap();
            let batch_var = fitted.predict_batch_with_variance(&slices, &rt).unwrap();
            assert_eq!(
                crate::factor::factorization_count(),
                before,
                "batched prediction must not factorize"
            );
            assert_eq!(batch.len(), requests.len());
            for (req, (bp, (bv, vars))) in requests.iter().zip(batch.iter().zip(&batch_var)) {
                let serial = fitted.predict(req, &rt).unwrap();
                let (_, serial_vars) = fitted.predict_with_variance(req, &rt).unwrap();
                assert_eq!(bp.values.len(), req.len());
                for (a, b) in bp.values.iter().zip(&serial.values) {
                    assert!(
                        (a - b).abs() <= 1e-10 * b.abs().max(1.0),
                        "{backend:?}: batch {a} vs serial {b}"
                    );
                }
                for (a, b) in bv.values.iter().zip(&serial.values) {
                    assert!((a - b).abs() <= 1e-10 * b.abs().max(1.0));
                }
                for (a, b) in vars.iter().zip(&serial_vars) {
                    assert!(
                        (a - b).abs() <= 1e-8,
                        "{backend:?}: batch var {a} vs serial {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_and_non_finite_queries_are_structured_errors() {
        // Regression: malformed queries must come back as InvalidQuery, not
        // panic or NaN output — a serving layer rejects and keeps running.
        let (model, rt) = matern_model(6, 37, Backend::FullTile);
        let fitted = model.at_params(&[1.0, 0.1, 0.5], &rt).unwrap();
        assert!(matches!(
            fitted.predict(&[], &rt),
            Err(ModelError::InvalidQuery(_))
        ));
        assert!(matches!(
            fitted.predict_with_variance(&[], &rt),
            Err(ModelError::InvalidQuery(_))
        ));
        for bad in [
            Location::new(f64::NAN, 0.5),
            Location::new(0.5, f64::INFINITY),
            Location::new(f64::NEG_INFINITY, f64::NAN),
        ] {
            assert!(matches!(
                fitted.predict(&[Location::new(0.1, 0.1), bad], &rt),
                Err(ModelError::InvalidQuery(_))
            ));
            assert!(matches!(
                fitted.predict_with_variance(&[bad], &rt),
                Err(ModelError::InvalidQuery(_))
            ));
            let good = [Location::new(0.2, 0.2)];
            let bad_req = [bad];
            let reqs: Vec<&[Location]> = vec![&good, &bad_req];
            let err = fitted.predict_batch(&reqs).unwrap_err();
            assert!(
                matches!(&err, ModelError::InvalidQuery(msg) if msg.contains("request 1")),
                "{err}"
            );
            assert!(matches!(
                fitted.predict_batch_with_variance(&reqs, &rt),
                Err(ModelError::InvalidQuery(_))
            ));
        }
        // A batch containing an empty request names it too.
        let good = [Location::new(0.2, 0.2)];
        let reqs: Vec<&[Location]> = vec![&good, &[]];
        assert!(matches!(
            fitted.predict_batch(&reqs),
            Err(ModelError::InvalidQuery(_))
        ));
        // Zero requests are a no-op, not an error.
        assert!(fitted.predict_batch(&[]).unwrap().is_empty());
        assert!(fitted
            .predict_batch_with_variance(&[], &rt)
            .unwrap()
            .is_empty());
        // And a well-formed query still produces finite values.
        let p = fitted.predict(&[Location::new(0.4, 0.4)], &rt).unwrap();
        assert!(p.values[0].is_finite());
    }

    #[test]
    fn backends_agree_through_the_session_api() {
        let theta = [1.0, 0.1, 0.5];
        let mut values: Vec<(f64, Vec<f64>)> = Vec::new();
        for backend in [Backend::FullBlock, Backend::FullTile, Backend::tlr(1e-12)] {
            let (model, rt) = matern_model(9, 17, backend);
            let fitted = model.at_params(&theta, &rt).unwrap();
            let ll = fitted.log_likelihood().unwrap().value;
            let targets = [Location::new(0.3, 0.6), Location::new(0.8, 0.8)];
            let p = fitted.predict(&targets, &rt).unwrap();
            values.push((ll, p.values));
        }
        let (ll0, p0) = &values[0];
        for (ll, p) in &values[1..] {
            assert!((ll - ll0).abs() < 1e-6 * ll0.abs(), "{ll} vs {ll0}");
            for (a, b) in p.iter().zip(p0) {
                assert!((a - b).abs() < 1e-7 * b.abs().max(1.0), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn all_three_families_fit_and_krige_end_to_end() {
        // The acceptance path: MLE fit + kriging through the same generic
        // code for Matérn, powered-exponential and Gaussian families.
        let mut rng = Rng::seed_from_u64(23);
        let locations = Arc::new(synthetic_locations(10, &mut rng));
        let rt = Runtime::new(4);
        let split = holdout_split(locations.len(), 15, &mut rng);
        let nm = NelderMeadConfig {
            max_evals: 40,
            ftol: 1e-4,
            ..Default::default()
        };

        fn run<K: ParamCovariance>(
            locations: &Arc<Vec<Location>>,
            split: &crate::locations::HoldoutSplit,
            truth: &[f64],
            start: &[f64],
            nm: NelderMeadConfig,
            rng: &mut Rng,
            rt: &Runtime,
        ) -> f64 {
            let gen = GeoModel::<K>::builder()
                .locations(locations.clone())
                .tile_size(32)
                .build()
                .unwrap()
                .at_params(truth, rt)
                .unwrap();
            let z = gen.simulate(rng, rt);
            let observed: Vec<Location> = split.estimation.iter().map(|&i| locations[i]).collect();
            let z_obs: Vec<f64> = split.estimation.iter().map(|&i| z[i]).collect();
            let targets: Vec<Location> = split.validation.iter().map(|&i| locations[i]).collect();
            let truth_vals: Vec<f64> = split.validation.iter().map(|&i| z[i]).collect();
            let fitted = GeoModel::<K>::builder()
                .locations(Arc::new(observed))
                .data(z_obs)
                .tile_size(32)
                .build()
                .unwrap()
                .fit(
                    &FitOptions {
                        initial: Some(start.to_vec()),
                        nm,
                        ..Default::default()
                    },
                    rt,
                )
                .unwrap();
            assert_eq!(fitted.params().len(), K::n_params());
            let p = fitted.predict(&targets, rt).unwrap();
            crate::predict::prediction_mse(&truth_vals, &p.values)
        }

        let mse_matern = run::<MaternKernel>(
            &locations,
            &split,
            &[1.0, 0.15, 0.5],
            &[0.5, 0.08, 0.8],
            nm,
            &mut rng,
            &rt,
        );
        let mse_powexp = run::<PoweredExponentialKernel>(
            &locations,
            &split,
            &[1.0, 0.15, 1.0],
            &[0.5, 0.08, 1.4],
            nm,
            &mut rng,
            &rt,
        );
        let mse_gauss = run::<GaussianKernel>(
            &locations,
            &split,
            &[1.0, 0.15],
            &[0.5, 0.08],
            nm,
            &mut rng,
            &rt,
        );
        // Kriging must beat the trivial zero predictor (marginal variance 1)
        // for every family on its own data.
        for (family, mse) in [
            ("matern", mse_matern),
            ("powered-exponential", mse_powexp),
            ("gaussian", mse_gauss),
        ] {
            assert!(mse.is_finite() && mse < 1.0, "{family}: MSE {mse}");
        }
    }

    #[test]
    fn equal_bounds_fix_a_parameter() {
        // lo == hi pins a coordinate (the optimizer's inclusive box clamps
        // to the point) — the legacy driver allowed this and the session
        // API must too, not reject or panic.
        let (model, rt) = matern_model(8, 41, Backend::FullTile);
        let fitted = model
            .fit(
                &FitOptions {
                    initial: Some(vec![1.0, 0.1, 0.5]),
                    lower: Some(vec![0.01, 0.001, 0.5]),
                    upper: Some(vec![100.0, 100.0, 0.5]),
                    nm: NelderMeadConfig {
                        max_evals: 25,
                        ftol: 1e-4,
                        ..Default::default()
                    },
                },
                &rt,
            )
            .unwrap();
        let theta = fitted.params();
        assert!(
            (theta[2] - 0.5).abs() < 1e-12,
            "smoothness must stay pinned at 0.5, got {}",
            theta[2]
        );
    }

    #[test]
    fn fit_rejects_out_of_domain_bounds_up_front() {
        // A powered-exponential power bound above 2 leaves the family's
        // positive-definiteness domain: the fit must refuse immediately
        // instead of panicking when the simplex reaches the corner.
        let mut rng = Rng::seed_from_u64(31);
        let locs = Arc::new(synthetic_locations(4, &mut rng));
        let rt = Runtime::new(1);
        let model = GeoModel::<PoweredExponentialKernel>::builder()
            .locations(locs)
            .data(vec![0.1; 16])
            .tile_size(8)
            .build()
            .unwrap();
        let out = model.fit(
            &FitOptions {
                upper: Some(vec![100.0, 100.0, 3.0]),
                ..Default::default()
            },
            &rt,
        );
        assert!(
            matches!(out, Err(ModelError::InvalidParams(_))),
            "{:?}",
            out.map(|f| f.params())
        );
    }

    #[test]
    fn infeasible_fit_reports_best_point() {
        // A Gaussian fit with zero nugget on a dense grid breaks down at
        // every proposed θ: the session must say so rather than return junk.
        let side = 12;
        let locations: Vec<Location> = (0..side * side)
            .map(|k| {
                Location::new(
                    (k % side) as f64 / side as f64,
                    (k / side) as f64 / side as f64,
                )
            })
            .collect();
        let rt = Runtime::new(2);
        let model = GeoModel::<GaussianKernel>::builder()
            .locations(Arc::new(locations))
            .data(vec![0.1; side * side])
            .nugget(0.0)
            .tile_size(48)
            .build()
            .unwrap();
        let out = model.fit(
            &FitOptions {
                initial: Some(vec![1.0, 5.0]),
                nm: NelderMeadConfig {
                    max_evals: 12,
                    ..Default::default()
                },
                ..Default::default()
            },
            &rt,
        );
        match out {
            Err(ModelError::Infeasible { theta, report }) => {
                assert_eq!(theta.len(), 2);
                assert!(report.evaluations > 0);
            }
            other => panic!("expected Infeasible, got {:?}", other.map(|f| f.params())),
        }
    }
}
