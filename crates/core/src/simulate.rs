//! Exact Gaussian random field simulation (the ExaGeoStat data generator).
//!
//! Measurement vectors come from the exact factorization route the paper
//! uses for its Monte-Carlo studies (§VIII-D1): build `Σ(θ)` densely in tile
//! layout, factor `Σ = L Lᵀ` at machine precision, and return `Z = L·w` with
//! `w ~ N(0, I)`. The paper stresses that *generation* is always exact so
//! every approximation technique sees identical data.

use exa_check::sync::Arc;
use exa_covariance::{DistanceMetric, Location, MaternKernel, MaternParams};
use exa_linalg::{LinalgError, Mat};
use exa_runtime::Runtime;
use exa_tile::{tile_potrf, tile_trmm_lower, TileMatrix};
use exa_util::Rng;

/// A factored exact simulator: one Cholesky, many measurement draws.
pub struct FieldSimulator {
    factor: TileMatrix,
    n: usize,
    workers: usize,
}

impl FieldSimulator {
    /// Factors `Σ(θ)` over the locations at machine precision.
    ///
    /// `nugget` adds `τ²·I` (0 reproduces the paper's exact model; a tiny
    /// value guards borderline-SPD geometries).
    pub fn new(
        locations: Arc<Vec<Location>>,
        params: MaternParams,
        metric: DistanceMetric,
        nugget: f64,
        nb: usize,
        rt: &Runtime,
    ) -> Result<Self, LinalgError> {
        let n = locations.len();
        let kernel = MaternKernel::new(locations, params, metric, nugget);
        let mut sigma = TileMatrix::from_kernel_symmetric_lower(&kernel, nb, rt.num_workers());
        tile_potrf(&mut sigma, rt)?;
        Ok(FieldSimulator {
            factor: sigma,
            n,
            workers: rt.num_workers(),
        })
    }

    /// Number of locations.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the location set is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Draws one measurement vector `Z = L·w`, `w ~ N(0, I)`.
    pub fn draw(&self, rng: &mut Rng) -> Vec<f64> {
        let mut w = Mat::zeros(self.n, 1);
        rng.fill_gaussian(w.as_mut_slice());
        tile_trmm_lower(&self.factor, &w, self.workers)
            .as_slice()
            .to_vec()
    }

    /// Draws `count` independent measurement vectors.
    pub fn draw_many(&self, count: usize, rng: &mut Rng) -> Vec<Vec<f64>> {
        (0..count).map(|_| self.draw(rng)).collect()
    }
}

/// One-shot convenience: locations + parameters → a single realization.
pub fn simulate_field(
    locations: &Arc<Vec<Location>>,
    params: MaternParams,
    metric: DistanceMetric,
    nb: usize,
    rt: &Runtime,
    rng: &mut Rng,
) -> Result<Vec<f64>, LinalgError> {
    let sim = FieldSimulator::new(locations.clone(), params, metric, 1e-10, nb, rt)?;
    Ok(sim.draw(rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locations::synthetic_locations;
    use exa_util::stats::{mean, sample_variance};

    fn setup(side: usize, _params: MaternParams, seed: u64) -> (Arc<Vec<Location>>, Runtime) {
        let mut rng = Rng::seed_from_u64(seed);
        let locs = Arc::new(synthetic_locations(side, &mut rng));
        (locs, Runtime::new(4))
    }

    #[test]
    fn marginal_variance_matches_theta1() {
        // Across many draws, each site's variance is θ₁; pooled over sites
        // and draws the sample variance must land near it.
        let params = MaternParams::new(2.0, 0.1, 0.5);
        let (locs, rt) = setup(10, params, 1);
        let sim =
            FieldSimulator::new(locs, params, DistanceMetric::Euclidean, 0.0, 25, &rt).unwrap();
        let mut rng = Rng::seed_from_u64(2);
        let mut pooled = Vec::new();
        for _ in 0..30 {
            pooled.extend(sim.draw(&mut rng));
        }
        let v = sample_variance(&pooled);
        assert!((v - 2.0).abs() < 0.3, "pooled variance {v}");
        assert!(mean(&pooled).abs() < 0.1, "mean {}", mean(&pooled));
    }

    #[test]
    fn correlation_strength_tracks_range_parameter() {
        // Strong correlation (θ₂ = 0.3) vs weak (θ₂ = 0.03): index-adjacent
        // (Morton-neighbouring) sites must co-move far more under the former.
        let neighbour_corr = |range: f64, seed: u64| {
            let params = MaternParams::new(1.0, range, 0.5);
            let (locs, rt) = setup(8, params, seed);
            let sim =
                FieldSimulator::new(locs, params, DistanceMetric::Euclidean, 0.0, 16, &rt).unwrap();
            let mut rng = Rng::seed_from_u64(seed + 100);
            let mut acc = 0.0;
            let reps = 60;
            for _ in 0..reps {
                let z = sim.draw(&mut rng);
                let a: Vec<f64> = z[..z.len() - 1].to_vec();
                let b: Vec<f64> = z[1..].to_vec();
                let ma = mean(&a);
                let mb = mean(&b);
                let cov: f64 = a
                    .iter()
                    .zip(&b)
                    .map(|(x, y)| (x - ma) * (y - mb))
                    .sum::<f64>()
                    / (a.len() - 1) as f64;
                acc += cov / (sample_variance(&a).sqrt() * sample_variance(&b).sqrt());
            }
            acc / reps as f64
        };
        let strong = neighbour_corr(0.3, 3);
        let weak = neighbour_corr(0.03, 3);
        assert!(strong > 0.25, "strong-range neighbour correlation {strong}");
        assert!(
            strong > weak + 0.15,
            "strong {strong} must clearly exceed weak {weak}"
        );
    }

    #[test]
    fn draws_are_independent_and_deterministic() {
        let params = MaternParams::new(1.0, 0.1, 0.5);
        let (locs, rt) = setup(6, params, 5);
        let sim =
            FieldSimulator::new(locs, params, DistanceMetric::Euclidean, 0.0, 12, &rt).unwrap();
        let z1 = sim.draw(&mut Rng::seed_from_u64(10));
        let z2 = sim.draw(&mut Rng::seed_from_u64(10));
        assert_eq!(z1, z2, "same RNG seed must reproduce the draw");
        let z3 = sim.draw(&mut Rng::seed_from_u64(11));
        assert_ne!(z1, z3, "different seeds must differ");
    }

    #[test]
    fn draw_many_counts() {
        let params = MaternParams::new(1.0, 0.03, 0.5);
        let (locs, rt) = setup(5, params, 6);
        let sim =
            FieldSimulator::new(locs, params, DistanceMetric::Euclidean, 0.0, 10, &rt).unwrap();
        let mut rng = Rng::seed_from_u64(7);
        let all = sim.draw_many(4, &mut rng);
        assert_eq!(all.len(), 4);
        assert!(all.iter().all(|z| z.len() == 25));
    }
}
