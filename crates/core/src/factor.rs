//! Factored covariance representations: the one Cholesky every pipeline
//! stage shares.
//!
//! The paper's workflow factorizes `Σ(θ)` once per likelihood evaluation and
//! then *reuses* the factor for the log-determinant, the quadratic form, and
//! — at the fitted `θ̂` — the kriging solves of Eq. 4. [`Factorization`] is
//! that factor as a value: one of the three computation techniques' factored
//! forms behind a common `solve` / `logdet` / `bytes` interface, so
//! likelihood evaluation, prediction, conditional variances and simulation
//! all consume the same object instead of re-running `potrf`.

use crate::likelihood::{Backend, LikelihoodConfig};
use exa_covariance::CovarianceKernel;
use exa_linalg::{
    chol::{chol_append, chol_remove, logdet_from_cholesky},
    dtrsm, LinalgError, Mat, Side, Trans,
};
use exa_runtime::Runtime;
pub use exa_tile::TriangularSide;
use exa_tile::{block_potrf, tile_logdet, tile_potrf, tile_trmm_lower, tile_trsm, TileMatrix};
use exa_tlr::{tlr_factor_to_dense, tlr_logdet, tlr_potrf, tlr_trsm, TlrMatrix};
use exa_util::Stopwatch;
use std::cell::Cell;

thread_local! {
    static POTRF_COUNT: Cell<usize> = const { Cell::new(0) };
}

/// Number of Cholesky factorizations ([`Factorization::compute`] calls) this
/// thread has performed.
///
/// Thread-local on purpose: tests assert "zero `potrf` after `fit`" by
/// differencing this counter around a prediction call without seeing
/// factorizations from concurrently running tests.
pub fn factorization_count() -> usize {
    POTRF_COUNT.with(|c| c.get())
}

/// Phase timings of one [`Factorization::compute`] call.
#[derive(Clone, Copy, Debug, Default)]
pub struct FactorTimings {
    /// Seconds to generate (and for TLR, compress) `Σ(θ)`.
    pub generation_seconds: f64,
    /// Seconds in the Cholesky factorization itself.
    pub factorization_seconds: f64,
}

/// What an incremental factor edit ([`Factorization::append`] /
/// [`Factorization::remove`]) did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IngestOutcome {
    /// The factor was updated in place (dense storage, `O(n²·k)`).
    Updated,
    /// This storage scheme cannot update incrementally (tile/TLR); the
    /// factor is untouched and the caller should refactorize.
    NeedsRefit,
}

/// The Cholesky factor of a covariance matrix `Σ(θ)` in one of the paper's
/// three storage schemes.
///
/// Solves take `&mut self` only because the tile and TLR layers create raw
/// tile views through `&mut`; no solve mutates the factor.
pub enum Factorization {
    /// Dense column-major factor from the fork-join blocked Cholesky
    /// (`L` in the lower triangle, the upper triangle untouched).
    Dense(Mat),
    /// Tile-layout factor from the task-based tile Cholesky.
    Tile(TileMatrix),
    /// Tile Low-Rank factor at the backend's accuracy threshold.
    Tlr(TlrMatrix),
}

impl Factorization {
    /// Generates `Σ(θ)` from `kernel` with the technique selected by
    /// `backend` and factorizes it (`Σ = L·Lᵀ`), returning the factor and
    /// the phase timings.
    ///
    /// This is the **only** place the pipeline runs `potrf`; every call
    /// increments [`factorization_count`]. Errors surface Cholesky
    /// breakdowns, which the optimizer treats as rejected points (§VIII-D).
    pub fn compute<K: CovarianceKernel>(
        kernel: &K,
        backend: Backend,
        cfg: LikelihoodConfig,
        rt: &Runtime,
    ) -> Result<(Self, FactorTimings), LinalgError> {
        let n = kernel.len();
        assert!(n > 0, "empty problem");
        let workers = rt.num_workers();
        let mut sw = Stopwatch::start();
        POTRF_COUNT.with(|c| c.set(c.get() + 1));
        let (factor, generation_seconds) = match backend {
            Backend::FullBlock => {
                let mut sigma = Mat::from_fn(n, n, |i, j| kernel.entry(i, j));
                let g = sw.lap();
                block_potrf(&mut sigma, workers)?;
                (Factorization::Dense(sigma), g)
            }
            Backend::FullTile => {
                let mut sigma = TileMatrix::from_kernel_symmetric_lower(kernel, cfg.nb, workers);
                let g = sw.lap();
                tile_potrf(&mut sigma, rt)?;
                (Factorization::Tile(sigma), g)
            }
            Backend::Tlr { eps, method } => {
                let mut sigma =
                    TlrMatrix::from_kernel(kernel, cfg.nb, eps, method, workers, cfg.seed)?;
                let g = sw.lap();
                tlr_potrf(&mut sigma, rt)?;
                (Factorization::Tlr(sigma), g)
            }
        };
        let factorization_seconds = sw.lap();
        Ok((
            factor,
            FactorTimings {
                generation_seconds,
                factorization_seconds,
            },
        ))
    }

    /// Matrix order `n`.
    pub fn n(&self) -> usize {
        match self {
            Factorization::Dense(l) => l.nrows(),
            Factorization::Tile(l) => l.m,
            Factorization::Tlr(l) => l.n,
        }
    }

    /// `ln|Σ(θ)|`, read off the factor's diagonal.
    pub fn logdet(&self) -> f64 {
        match self {
            Factorization::Dense(l) => logdet_from_cholesky(l.nrows(), l.as_slice(), l.nrows()),
            Factorization::Tile(l) => tile_logdet(l),
            Factorization::Tlr(l) => tlr_logdet(l),
        }
    }

    /// Bytes held by the factored representation (the paper's memory
    /// footprint axis).
    pub fn bytes(&self) -> usize {
        match self {
            Factorization::Dense(l) => l.nrows() * l.ncols() * 8,
            Factorization::Tile(l) => l.bytes(),
            Factorization::Tlr(l) => l.bytes(),
        }
    }

    /// A cheap condition-number estimate from the factor's diagonal range:
    /// `(max dᵢ / min dᵢ)²` bounds `κ₂(Σ)` from below in `O(n)`. `None` for
    /// tile/TLR storage (the live-ingest drift tracker only needs it on the
    /// dense, incrementally-updated path).
    pub fn condition_estimate(&self) -> Option<f64> {
        let Factorization::Dense(l) = self else {
            return None;
        };
        let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
        for i in 0..l.nrows() {
            let d = l[(i, i)].abs();
            lo = lo.min(d);
            hi = hi.max(d);
        }
        Some(if lo > 0.0 {
            (hi / lo) * (hi / lo)
        } else {
            f64::INFINITY
        })
    }

    /// One triangular solve in place on `b`: `L·X = B` (forward) or
    /// `Lᵀ·X = B` (backward).
    pub fn trsm(&mut self, side: TriangularSide, b: &mut Mat, rt: &Runtime) {
        match self {
            Factorization::Dense(l) => {
                let n = l.nrows();
                let trans = match side {
                    TriangularSide::Forward => Trans::No,
                    TriangularSide::Backward => Trans::Yes,
                };
                dtrsm(
                    Side::Left,
                    trans,
                    n,
                    b.ncols(),
                    1.0,
                    l.as_slice(),
                    n,
                    b.as_mut_slice(),
                    n,
                );
            }
            Factorization::Tile(l) => {
                tile_trsm(l, side, b, rt);
            }
            Factorization::Tlr(l) => {
                tlr_trsm(l, side, b, rt);
            }
        }
    }

    /// Full SPD solve in place on `b`: `Σ·X = B` through `L·Lᵀ`.
    pub fn solve(&mut self, b: &mut Mat, rt: &Runtime) {
        self.trsm(TriangularSide::Forward, b, rt);
        self.trsm(TriangularSide::Backward, b, rt);
    }

    /// Incrementally grows the factor after `k` observations are appended,
    /// in `O(n²·k)` via [`chol_append`] — **without** running `potrf` on
    /// the full matrix (only the `k × k` Schur block is factored, and
    /// [`factorization_count`] is *not* bumped: this is an update, not a
    /// factorization).
    ///
    /// `kernel` must be the **joint** kernel over the old locations followed
    /// by the appended ones (`kernel.len() == self.n() + k`); only the new
    /// rows are evaluated. Only the dense variant updates in place —
    /// tile/TLR factors report [`IngestOutcome::NeedsRefit`] so the caller
    /// falls back to a staleness-triggered refactorization, leaving the
    /// factor untouched.
    pub fn append<K: CovarianceKernel>(
        &mut self,
        kernel: &K,
        k: usize,
    ) -> Result<IngestOutcome, LinalgError> {
        let Factorization::Dense(l) = self else {
            return Ok(IngestOutcome::NeedsRefit);
        };
        let n = l.nrows();
        let m = n + k;
        assert_eq!(
            kernel.len(),
            m,
            "append wants the joint kernel over old ++ new locations"
        );
        if k == 0 {
            return Ok(IngestOutcome::Updated);
        }
        // Copy the existing factor's lower triangle into a grown buffer and
        // fill the appended rows (cross block + new diagonal block) from the
        // kernel — O(n²) copy + O(n·k) kernel evaluations.
        let mut grown = Mat::zeros(m, m);
        for j in 0..n {
            for i in j..n {
                grown[(i, j)] = l[(i, j)];
            }
        }
        for j in 0..m {
            for i in n.max(j)..m {
                grown[(i, j)] = kernel.entry(i, j);
            }
        }
        chol_append(n, k, grown.as_mut_slice(), m)?;
        *self = Factorization::Dense(grown);
        Ok(IngestOutcome::Updated)
    }

    /// Incrementally shrinks the factor after the observations at `indices`
    /// are expired, via repeated [`chol_remove`] (each `O(n²)`; tail
    /// indices degenerate to truncation, so expiring just-appended points
    /// restores the prior factor bit-identically).
    ///
    /// `indices` must be in-range and need not be sorted; duplicates are
    /// ignored. Removing every row is rejected (an empty model has no
    /// factor). As with [`Factorization::append`], only the dense variant
    /// updates in place; tile/TLR report [`IngestOutcome::NeedsRefit`].
    pub fn remove(&mut self, indices: &[usize]) -> IngestOutcome {
        let Factorization::Dense(l) = self else {
            return IngestOutcome::NeedsRefit;
        };
        let n = l.nrows();
        let mut drop: Vec<usize> = indices.to_vec();
        drop.sort_unstable();
        drop.dedup();
        assert!(
            drop.last().is_none_or(|&i| i < n),
            "removal index out of range"
        );
        assert!(drop.len() < n, "cannot remove every observation");
        if drop.is_empty() {
            return IngestOutcome::Updated;
        }
        // Remove highest-first inside the original leading dimension, then
        // compact into a buffer with the final shape.
        let mut dim = n;
        for &idx in drop.iter().rev() {
            chol_remove(dim, l.as_mut_slice(), n, idx);
            dim -= 1;
        }
        let mut shrunk = Mat::zeros(dim, dim);
        for j in 0..dim {
            for i in j..dim {
                shrunk[(i, j)] = l.as_slice()[i + j * n];
            }
        }
        *self = Factorization::Dense(shrunk);
        IngestOutcome::Updated
    }

    /// Applies the factor itself: `L·W` (the exact-simulation product
    /// `Z = L·w` of the ExaGeoStat data generator).
    ///
    /// For the TLR factor this densifies `L` first — simulation through an
    /// approximate factor is an `O(n²)`-memory convenience, not a paper
    /// workload (the paper always generates data exactly).
    pub fn apply_factor(&self, w: &Mat, rt: &Runtime) -> Mat {
        match self {
            Factorization::Dense(l) => trmm_lower_dense(l, w),
            Factorization::Tile(l) => tile_trmm_lower(l, w, rt.num_workers()),
            Factorization::Tlr(l) => trmm_lower_dense(&tlr_factor_to_dense(l), w),
        }
    }
}

/// `L·W` for a dense factor whose strict upper triangle may hold garbage.
fn trmm_lower_dense(l: &Mat, w: &Mat) -> Mat {
    let n = l.nrows();
    assert_eq!(w.nrows(), n, "factor/vector size mismatch");
    let mut out = Mat::zeros(n, w.ncols());
    for c in 0..w.ncols() {
        let src = w.col(c);
        for i in 0..n {
            let mut acc = 0.0;
            for (j, &s) in src.iter().enumerate().take(i + 1) {
                acc += l[(i, j)] * s;
            }
            out[(i, c)] = acc;
        }
    }
    out
}

// Compile-time proof that factors move between threads: `exa-serve` shares
// one factorization across prediction workers (behind `FittedModel`'s
// mutex), so every variant's storage must be `Send + Sync`.
const _: () = {
    const fn check<T: Send + Sync>() {}
    check::<Factorization>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locations::synthetic_locations;
    use exa_covariance::{DistanceMetric, MaternKernel, MaternParams};
    use exa_util::Rng;
    use std::sync::Arc;

    fn kernel(side: usize, seed: u64) -> MaternKernel {
        let mut rng = Rng::seed_from_u64(seed);
        MaternKernel::new(
            Arc::new(synthetic_locations(side, &mut rng)),
            MaternParams::new(1.0, 0.1, 0.5),
            DistanceMetric::Euclidean,
            1e-8,
        )
    }

    #[test]
    fn three_backends_agree_on_logdet_and_solve() {
        let k = kernel(8, 1);
        let rt = Runtime::new(2);
        let cfg = LikelihoodConfig { nb: 16, seed: 1 };
        let mut rng = Rng::seed_from_u64(2);
        let b = Mat::gaussian(64, 2, &mut rng);
        let mut results = Vec::new();
        for backend in [Backend::FullBlock, Backend::FullTile, Backend::tlr(1e-12)] {
            let (mut f, _) = Factorization::compute(&k, backend, cfg, &rt).unwrap();
            assert_eq!(f.n(), 64);
            let mut x = b.clone();
            f.solve(&mut x, &rt);
            results.push((f.logdet(), x));
        }
        for (ld, x) in &results[1..] {
            assert!((ld - results[0].0).abs() < 1e-7 * results[0].0.abs());
            for (a, r) in x.as_slice().iter().zip(results[0].1.as_slice()) {
                assert!((a - r).abs() < 1e-6 * r.abs().max(1.0), "{a} vs {r}");
            }
        }
    }

    #[test]
    fn apply_factor_matches_across_backends() {
        let k = kernel(6, 3);
        let rt = Runtime::new(2);
        let cfg = LikelihoodConfig { nb: 12, seed: 3 };
        let mut rng = Rng::seed_from_u64(4);
        let w = Mat::gaussian(36, 1, &mut rng);
        let reference: Vec<f64> = {
            let (f, _) = Factorization::compute(&k, Backend::FullTile, cfg, &rt).unwrap();
            f.apply_factor(&w, &rt).as_slice().to_vec()
        };
        for backend in [Backend::FullBlock, Backend::tlr(1e-12)] {
            let (f, _) = Factorization::compute(&k, backend, cfg, &rt).unwrap();
            let got = f.apply_factor(&w, &rt);
            for (a, r) in got.as_slice().iter().zip(&reference) {
                assert!(
                    (a - r).abs() < 1e-7 * r.abs().max(1.0),
                    "{backend:?}: {a} vs {r}"
                );
            }
        }
    }

    fn kernel_over(locs: &[exa_covariance::Location]) -> MaternKernel {
        MaternKernel::new(
            Arc::new(locs.to_vec()),
            MaternParams::new(1.0, 0.1, 0.5),
            DistanceMetric::Euclidean,
            1e-8,
        )
    }

    fn dense(f: &Factorization) -> &Mat {
        match f {
            Factorization::Dense(l) => l,
            _ => panic!("expected dense factor"),
        }
    }

    #[test]
    fn append_grows_dense_factor_to_match_joint_compute() {
        use crate::locations::synthetic_locations_n;
        let mut rng = Rng::seed_from_u64(11);
        let locs = synthetic_locations_n(48, &mut rng);
        let (n, k) = (40, 8);
        let rt = Runtime::new(2);
        let cfg = LikelihoodConfig { nb: 16, seed: 7 };

        let base = kernel_over(&locs[..n]);
        let joint = kernel_over(&locs);
        let (mut f, _) = Factorization::compute(&base, Backend::FullBlock, cfg, &rt).unwrap();
        let before = dense(&f).clone();
        assert_eq!(f.append(&joint, k), Ok(IngestOutcome::Updated));
        assert_eq!(f.n(), n + k);

        // Leading n×n block is bitwise untouched by the update.
        let grown = dense(&f);
        for j in 0..n {
            for i in j..n {
                assert_eq!(grown[(i, j)].to_bits(), before[(i, j)].to_bits());
            }
        }

        // And the whole factor agrees with a from-scratch factorization.
        let (fresh, _) = Factorization::compute(&joint, Backend::FullBlock, cfg, &rt).unwrap();
        let fresh = dense(&fresh);
        for j in 0..n + k {
            for i in j..n + k {
                let (a, b) = (grown[(i, j)], fresh[(i, j)]);
                assert!((a - b).abs() <= 1e-10 * b.abs().max(1.0), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn remove_shrinks_dense_factor_to_match_subset_compute() {
        use crate::locations::synthetic_locations_n;
        let mut rng = Rng::seed_from_u64(13);
        let locs = synthetic_locations_n(32, &mut rng);
        let rt = Runtime::new(2);
        let cfg = LikelihoodConfig { nb: 16, seed: 9 };
        let drop = [3usize, 17, 31];

        let full = kernel_over(&locs);
        let kept: Vec<_> = locs
            .iter()
            .enumerate()
            .filter(|(i, _)| !drop.contains(i))
            .map(|(_, l)| *l)
            .collect();
        let (mut f, _) = Factorization::compute(&full, Backend::FullBlock, cfg, &rt).unwrap();
        assert_eq!(f.remove(&drop), IngestOutcome::Updated);
        assert_eq!(f.n(), kept.len());

        let (fresh, _) =
            Factorization::compute(&kernel_over(&kept), Backend::FullBlock, cfg, &rt).unwrap();
        let (shrunk, fresh) = (dense(&f), dense(&fresh));
        for j in 0..kept.len() {
            for i in j..kept.len() {
                let (a, b) = (shrunk[(i, j)], fresh[(i, j)]);
                assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn tile_and_tlr_factors_report_needs_refit() {
        let k = kernel(6, 21);
        let rt = Runtime::new(2);
        let cfg = LikelihoodConfig { nb: 12, seed: 21 };
        for backend in [Backend::FullTile, Backend::tlr(1e-9)] {
            let (mut f, _) = Factorization::compute(&k, backend, cfg, &rt).unwrap();
            let n = f.n();
            assert_eq!(f.append(&k, 0).unwrap(), IngestOutcome::NeedsRefit);
            assert_eq!(f.remove(&[0]), IngestOutcome::NeedsRefit);
            assert_eq!(f.n(), n, "{backend:?} factor must be untouched");
        }
    }

    #[test]
    fn counter_increments_once_per_compute() {
        let k = kernel(4, 5);
        let rt = Runtime::new(1);
        let cfg = LikelihoodConfig { nb: 8, seed: 5 };
        let before = factorization_count();
        let (mut f, timings) = Factorization::compute(&k, Backend::FullTile, cfg, &rt).unwrap();
        assert_eq!(factorization_count(), before + 1);
        // Solves and reads do not factorize.
        let mut b = Mat::zeros(16, 1);
        f.solve(&mut b, &rt);
        let _ = f.logdet();
        let _ = f.bytes();
        assert_eq!(factorization_count(), before + 1);
        assert!(timings.factorization_seconds >= 0.0);
        assert!(f.bytes() > 0);
    }
}
