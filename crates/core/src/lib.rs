//! ExaGeoStat-style large-scale geostatistics: the paper's primary
//! contribution.
//!
//! This crate assembles the substrates (`exa-linalg`, `exa-runtime`,
//! `exa-tile`, `exa-tlr`, `exa-covariance`) into the operations the paper
//! describes and benchmarks:
//!
//! * [`model`] — **the session API**: [`GeoModel`] (builder-constructed
//!   problem description, generic over any
//!   [`ParamCovariance`](exa_covariance::ParamCovariance) family) →
//!   [`FittedModel`] (owns the factored `Σ(θ̂)`; likelihood, prediction,
//!   conditional variances and simulation all reuse that factor).
//! * [`factor`] — [`Factorization`]: the Dense / Tile / TLR Cholesky factor
//!   behind one `solve`/`logdet`/`bytes` interface, plus incremental
//!   `append`/`remove` edits (rank-k Cholesky up/downdates on dense
//!   storage).
//! * [`live`] — **streaming ingestion**: [`LiveModel`] wraps a fitted
//!   session so observations stream in ([`LiveModel::observe`]) and expire
//!   ([`LiveModel::expire`]) without `O(n³)` refits, with drift-triggered
//!   background refactorization behind atomic snapshots.
//! * [`locations`] — synthetic jittered-grid location generation (Figure 2)
//!   and estimation/validation splits.
//! * [`simulate`] — exact Gaussian-random-field simulation (`Z = L·w`), the
//!   ExaGeoStat data generator.
//! * [`likelihood`] — the Gaussian log-likelihood (Eq. 1) under three
//!   interchangeable computation techniques ([`Backend::FullBlock`],
//!   [`Backend::FullTile`], [`Backend::Tlr`]).
//! * [`optimizer`] — Nelder–Mead with box constraints (the NLopt
//!   substitute).
//! * [`mod@predict`] — the prediction result type and the prediction MSE
//!   (Eq. 7); the entry points live on [`FittedModel`], including the
//!   serving-oriented coalesced `predict_batch` family.
//! * [`montecarlo`] — the Monte-Carlo estimation studies behind Figures 6–7.
//! * [`realdata`] — simulated stand-ins for the soil-moisture and wind-speed
//!   datasets (Tables I–II, Figure 8), with great-circle distances.

pub mod factor;
pub mod likelihood;
pub mod live;
pub mod locations;
pub mod model;
pub mod montecarlo;
pub mod optimizer;
pub mod predict;
pub mod realdata;
pub mod simulate;

pub use factor::{factorization_count, FactorTimings, Factorization, IngestOutcome};
pub use likelihood::{Backend, LikelihoodConfig, LogLikelihood};
pub use live::{DriftStats, LiveModel, LivePolicy, ObserveOutcome};
pub use locations::{
    gridded_locations_in, holdout_split, synthetic_locations, synthetic_locations_n, HoldoutSplit,
};
pub use model::{
    eval_log_likelihood, FitOptions, FitReport, FittedModel, GeoModel, GeoModelBuilder, ModelError,
};
pub use montecarlo::{
    generate_data, run_technique, MonteCarloConfig, MonteCarloData, TechniqueOutcome,
};
pub use optimizer::{nelder_mead_max, Bounds, NelderMeadConfig, OptimResult, StopReason};
pub use predict::{prediction_mse, Prediction};
pub use realdata::{
    ascii_map, generate_region, soil_regions, wind_regions, RegionDataset, RegionSpec,
};
pub use simulate::{simulate_field, FieldSimulator};
