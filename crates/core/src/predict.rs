//! Kriging prediction of unsampled locations (paper Eq. 2–4, Eq. 7).
//!
//! With `Z₂` observed at `n` locations and `m` target locations, the
//! zero-mean conditional expectation is `Ẑ₁ = Σ₁₂ Σ₂₂⁻¹ Z₂`: one Cholesky of
//! `Σ₂₂` (full-tile or TLR — the paper's Figure 5 measures exactly this),
//! forward/backward solves, and a rectangular product with the
//! cross-covariance `Σ₁₂`. Accuracy is scored with the paper's mean squared
//! error (Eq. 7) against held-out truth.

use crate::likelihood::{Backend, LikelihoodConfig};
use crate::model::{GeoModel, ModelError};
use exa_covariance::{DistanceMetric, Location, MaternKernel, MaternParams};
use exa_linalg::LinalgError;
use exa_runtime::Runtime;
use std::sync::Arc;

/// Result of one prediction run.
#[derive(Clone, Debug)]
pub struct Prediction {
    /// Predicted values `Ẑ₁` at the target locations.
    pub values: Vec<f64>,
    /// Seconds in the `Σ₂₂` factorization.
    pub factorization_seconds: f64,
    /// Seconds in the solves + cross-covariance product.
    pub solve_seconds: f64,
}

impl Prediction {
    /// The empty-target result (no work performed).
    pub fn empty() -> Self {
        Prediction {
            values: vec![],
            factorization_seconds: 0.0,
            solve_seconds: 0.0,
        }
    }
}

/// Flattens a [`ModelError`] into the legacy [`LinalgError`] surface; the
/// wrappers validate their inputs up front, so only factorization
/// breakdowns can reach the caller.
fn into_linalg(e: ModelError) -> LinalgError {
    match e {
        ModelError::Linalg(l) => l,
        other => panic!("unexpected model error in legacy wrapper: {other}"),
    }
}

/// Builds the one-shot prediction session the legacy entry points delegate
/// to: a Matérn [`GeoModel`] over the observed set, factored at `params`.
#[allow(clippy::too_many_arguments)]
fn legacy_session(
    observed: &[Location],
    z: &[f64],
    params: MaternParams,
    metric: DistanceMetric,
    nugget: f64,
    backend: Backend,
    cfg: LikelihoodConfig,
    rt: &Runtime,
) -> Result<crate::model::FittedModel<MaternKernel>, LinalgError> {
    GeoModel::<MaternKernel>::builder()
        .locations(Arc::new(observed.to_vec()))
        .data(z.to_vec())
        .metric(metric)
        .nugget(nugget)
        .backend(backend)
        .config(cfg)
        .build()
        .expect("valid prediction inputs")
        .at_params(&params.to_array(), rt)
        .map_err(into_linalg)
}

/// Predicts `m` unknown measurements from `n` observed ones (Eq. 4).
///
/// * `observed`: the `n` sampled locations with their measurements `z`.
/// * `targets`: the `m` unsampled locations.
/// * `params`: the (estimated) Matérn parameter vector `θ̂`.
///
/// Thin compatibility wrapper: every call factorizes `Σ₂₂` from scratch.
/// Keep the [`crate::FittedModel`] returned by [`GeoModel::fit`] /
/// [`GeoModel::at_params`] and call its `predict` to reuse the factor
/// already computed at `θ̂`.
#[deprecated(
    since = "0.2.0",
    note = "use `GeoModel::at_params(θ̂).predict(targets)` — after `fit()` the factor is reused"
)]
#[allow(clippy::too_many_arguments)] // mirrors the ExaGeoStat prediction entry point
pub fn predict(
    observed: &[Location],
    z: &[f64],
    targets: &[Location],
    params: MaternParams,
    metric: DistanceMetric,
    nugget: f64,
    backend: Backend,
    cfg: LikelihoodConfig,
    rt: &Runtime,
) -> Result<Prediction, LinalgError> {
    assert_eq!(z.len(), observed.len(), "measurement count mismatch");
    if targets.is_empty() {
        return Ok(Prediction::empty());
    }
    assert!(!observed.is_empty(), "need observations to predict from");
    let fitted = legacy_session(observed, z, params, metric, nugget, backend, cfg, rt)?;
    let mut p = fitted.predict(targets, rt).map_err(into_linalg)?;
    // Legacy semantics: this call paid for the factorization and the
    // Σ₂₂⁻¹Z solves; report them in the historical fields.
    let t = fitted.factor_timings();
    p.factorization_seconds = t.generation_seconds + t.factorization_seconds;
    p.solve_seconds += fitted.alpha_solve_seconds();
    Ok(p)
}

/// Kriging with per-target conditional variances (paper Eq. 3):
/// `Var[Z₁|Z₂] = diag(Σ₁₁ − Σ₁₂ Σ₂₂⁻¹ Σ₂₁)`.
///
/// The paper states the conditional distribution but only evaluates the
/// mean predictor; the variance is the natural extension (it prices the
/// prediction's uncertainty) and costs one extra block solve
/// `Σ₂₂⁻¹ Σ₂₁` with `m` right-hand sides.
///
/// Thin compatibility wrapper; see [`predict`] for the factor-reuse
/// alternative ([`crate::FittedModel::predict_with_variance`]).
#[deprecated(
    since = "0.2.0",
    note = "use `FittedModel::predict_with_variance`, which reuses the fitted factor"
)]
#[allow(clippy::too_many_arguments)]
pub fn predict_with_variance(
    observed: &[Location],
    z: &[f64],
    targets: &[Location],
    params: MaternParams,
    metric: DistanceMetric,
    nugget: f64,
    backend: Backend,
    cfg: LikelihoodConfig,
    rt: &Runtime,
) -> Result<(Prediction, Vec<f64>), LinalgError> {
    assert_eq!(z.len(), observed.len(), "measurement count mismatch");
    if targets.is_empty() {
        return Ok((Prediction::empty(), vec![]));
    }
    assert!(!observed.is_empty(), "need observations to predict from");
    let fitted = legacy_session(observed, z, params, metric, nugget, backend, cfg, rt)?;
    let (mut p, variances) = fitted
        .predict_with_variance(targets, rt)
        .map_err(into_linalg)?;
    let t = fitted.factor_timings();
    p.factorization_seconds = t.generation_seconds + t.factorization_seconds;
    p.solve_seconds += fitted.alpha_solve_seconds();
    Ok((p, variances))
}

/// The paper's prediction MSE (Eq. 7): `(1/m)·Σ (Y_i − Ŷ_i)²`.
pub fn prediction_mse(truth: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(truth.len(), predicted.len(), "length mismatch");
    assert!(!truth.is_empty(), "empty prediction set");
    truth
        .iter()
        .zip(predicted)
        .map(|(t, p)| (t - p) * (t - p))
        .sum::<f64>()
        / truth.len() as f64
}

#[cfg(test)]
mod tests {
    // The deprecated wrappers stay covered (and equivalent) until removal.
    #![allow(deprecated)]

    use super::*;
    use crate::locations::{holdout_split, synthetic_locations};
    use crate::simulate::FieldSimulator;
    use exa_util::Rng;

    /// Simulates a field, holds out `m` sites, predicts them back.
    fn holdout_experiment(
        params: MaternParams,
        side: usize,
        m: usize,
        backend: Backend,
        seed: u64,
    ) -> (f64, Vec<f64>, Vec<f64>) {
        let mut rng = Rng::seed_from_u64(seed);
        let locs = Arc::new(synthetic_locations(side, &mut rng));
        let rt = Runtime::new(4);
        let sim = FieldSimulator::new(
            locs.clone(),
            params,
            DistanceMetric::Euclidean,
            0.0,
            32,
            &rt,
        )
        .unwrap();
        let z = sim.draw(&mut rng);
        let split = holdout_split(locs.len(), m, &mut rng);
        let observed: Vec<Location> = split.estimation.iter().map(|&i| locs[i]).collect();
        let z_obs: Vec<f64> = split.estimation.iter().map(|&i| z[i]).collect();
        let targets: Vec<Location> = split.validation.iter().map(|&i| locs[i]).collect();
        let truth: Vec<f64> = split.validation.iter().map(|&i| z[i]).collect();
        let p = predict(
            &observed,
            &z_obs,
            &targets,
            params,
            DistanceMetric::Euclidean,
            1e-8,
            backend,
            LikelihoodConfig { nb: 32, seed },
            &rt,
        )
        .unwrap();
        (prediction_mse(&truth, &p.values), truth, p.values)
    }

    #[test]
    fn strong_correlation_gives_low_mse() {
        // §VIII-D1: prediction MSE falls as correlation strengthens
        // (paper: 0.124 weak / 0.036 medium / 0.012 strong at 40K).
        let (weak, _, _) = holdout_experiment(
            MaternParams::new(1.0, 0.03, 0.5),
            18,
            30,
            Backend::FullTile,
            1,
        );
        let (strong, _, _) = holdout_experiment(
            MaternParams::new(1.0, 0.3, 0.5),
            18,
            30,
            Backend::FullTile,
            1,
        );
        assert!(
            strong < weak,
            "strong-corr MSE {strong} must beat weak-corr {weak}"
        );
        assert!(strong < 0.2, "strong-correlation MSE {strong}");
    }

    #[test]
    fn tlr_prediction_matches_full_tile() {
        let params = MaternParams::new(1.0, 0.1, 0.5);
        let (mse_full, _, pred_full) = holdout_experiment(params, 16, 25, Backend::FullTile, 2);
        let (mse_tlr, _, pred_tlr) = holdout_experiment(params, 16, 25, Backend::tlr(1e-9), 2);
        // Identical data (same seed): per-point predictions nearly coincide.
        for (a, b) in pred_full.iter().zip(&pred_tlr) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
        assert!((mse_full - mse_tlr).abs() < 1e-3);
    }

    #[test]
    fn prediction_beats_trivial_zero_predictor() {
        let params = MaternParams::new(1.0, 0.3, 0.5);
        let (mse, truth, _) = holdout_experiment(params, 16, 25, Backend::FullTile, 3);
        let zero_mse = prediction_mse(&truth, &vec![0.0; truth.len()]);
        assert!(
            mse < zero_mse,
            "kriging MSE {mse} must beat marginal variance {zero_mse}"
        );
    }

    #[test]
    fn block_and_tile_backends_agree() {
        let params = MaternParams::new(1.0, 0.1, 0.5);
        let (_, _, p_block) = holdout_experiment(params, 12, 10, Backend::FullBlock, 4);
        let (_, _, p_tile) = holdout_experiment(params, 12, 10, Backend::FullTile, 4);
        for (a, b) in p_block.iter().zip(&p_tile) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn empty_target_set() {
        let mut rng = Rng::seed_from_u64(5);
        let locs = synthetic_locations(5, &mut rng);
        let rt = Runtime::new(1);
        let p = predict(
            &locs,
            &[0.5; 25],
            &[],
            MaternParams::new(1.0, 0.1, 0.5),
            DistanceMetric::Euclidean,
            1e-8,
            Backend::FullTile,
            LikelihoodConfig::default(),
            &rt,
        )
        .unwrap();
        assert!(p.values.is_empty());
    }

    #[test]
    fn conditional_variance_is_bounded_and_orders_by_distance() {
        // 0 ≤ Var[Z₁|Z₂] ≤ θ₁, and a target far from every observation is
        // more uncertain than one surrounded by observations.
        let params = MaternParams::new(1.0, 0.2, 0.5);
        let rt = Runtime::new(2);
        let mut rng = Rng::seed_from_u64(10);
        let locs = synthetic_locations(10, &mut rng);
        let z = vec![0.3; 100];
        // Near target: the grid centre; far target: well outside the square.
        let targets = vec![Location::new(0.5, 0.5), Location::new(3.0, 3.0)];
        let (_, vars) = predict_with_variance(
            &locs,
            &z,
            &targets,
            params,
            DistanceMetric::Euclidean,
            1e-8,
            Backend::FullTile,
            LikelihoodConfig { nb: 25, seed: 10 },
            &rt,
        )
        .unwrap();
        assert!(
            vars.iter().all(|&v| (0.0..=1.0 + 1e-9).contains(&v)),
            "{vars:?}"
        );
        assert!(
            vars[0] < 0.5 && vars[1] > 0.9,
            "near {} should be certain, far {} nearly marginal",
            vars[0],
            vars[1]
        );
    }

    #[test]
    fn tlr_variance_matches_full_tile() {
        let params = MaternParams::new(1.0, 0.1, 0.5);
        let rt = Runtime::new(2);
        let mut rng = Rng::seed_from_u64(11);
        let locs = synthetic_locations(9, &mut rng);
        let z = vec![0.1; 81];
        let targets = vec![Location::new(0.4, 0.6), Location::new(0.9, 0.1)];
        let run = |backend| {
            predict_with_variance(
                &locs,
                &z,
                &targets,
                params,
                DistanceMetric::Euclidean,
                1e-8,
                backend,
                LikelihoodConfig { nb: 27, seed: 11 },
                &rt,
            )
            .unwrap()
            .1
        };
        let exact = run(Backend::FullTile);
        let approx = run(Backend::tlr(1e-10));
        for (a, b) in exact.iter().zip(&approx) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mse_validates_lengths() {
        prediction_mse(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "empty prediction set")]
    fn mse_rejects_empty_input_instead_of_nan() {
        // Regression guard: 0/0 on empty input must not silently yield NaN.
        prediction_mse(&[], &[]);
    }
}
