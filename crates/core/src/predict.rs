//! Kriging prediction of unsampled locations (paper Eq. 2–4, Eq. 7).
//!
//! With `Z₂` observed at `n` locations and `m` target locations, the
//! zero-mean conditional expectation is `Ẑ₁ = Σ₁₂ Σ₂₂⁻¹ Z₂`: one Cholesky of
//! `Σ₂₂` (full-tile or TLR — the paper's Figure 5 measures exactly this),
//! forward/backward solves, and a rectangular product with the
//! cross-covariance `Σ₁₂`. Accuracy is scored with the paper's mean squared
//! error (Eq. 7) against held-out truth.

use crate::likelihood::{Backend, LikelihoodConfig};
use exa_covariance::{CovarianceKernel, DistanceMetric, Location, MaternKernel, MaternParams};
use exa_linalg::{dtrsm, LinalgError, Mat, Side, Trans};
use exa_runtime::Runtime;
use exa_tile::{block_potrf, tile_gemm, tile_potrf, tile_potrs, TileMatrix};
use exa_tlr::{tlr_potrf, tlr_potrs, TlrMatrix};
use exa_util::Stopwatch;

/// Result of one prediction run.
#[derive(Clone, Debug)]
pub struct Prediction {
    /// Predicted values `Ẑ₁` at the target locations.
    pub values: Vec<f64>,
    /// Seconds in the `Σ₂₂` factorization.
    pub factorization_seconds: f64,
    /// Seconds in the solves + cross-covariance product.
    pub solve_seconds: f64,
}

/// Predicts `m` unknown measurements from `n` observed ones (Eq. 4).
///
/// * `observed`: the `n` sampled locations with their measurements `z`.
/// * `targets`: the `m` unsampled locations.
/// * `params`: the (estimated) Matérn parameter vector `θ̂`.
#[allow(clippy::too_many_arguments)] // mirrors the ExaGeoStat prediction entry point
pub fn predict(
    observed: &[Location],
    z: &[f64],
    targets: &[Location],
    params: MaternParams,
    metric: DistanceMetric,
    nugget: f64,
    backend: Backend,
    cfg: LikelihoodConfig,
    rt: &Runtime,
) -> Result<Prediction, LinalgError> {
    let n = observed.len();
    let m = targets.len();
    assert_eq!(z.len(), n, "measurement count mismatch");
    if m == 0 {
        return Ok(Prediction {
            values: vec![],
            factorization_seconds: 0.0,
            solve_seconds: 0.0,
        });
    }
    assert!(n > 0, "need observations to predict from");
    let workers = rt.num_workers();

    // Kernel over the observed set only (Σ₂₂).
    let k22 = MaternKernel::new(
        std::sync::Arc::new(observed.to_vec()),
        params,
        metric,
        nugget,
    );

    let mut sw = Stopwatch::start();
    // x = Σ₂₂⁻¹ Z₂ through the chosen factorization.
    let mut x = Mat::from_vec(n, 1, z.to_vec());
    let factorization_seconds;
    match backend {
        Backend::FullBlock => {
            let mut sigma = Mat::from_fn(n, n, |i, j| k22.entry(i, j));
            block_potrf(&mut sigma, workers)?;
            factorization_seconds = sw.lap();
            dtrsm(
                Side::Left,
                Trans::No,
                n,
                1,
                1.0,
                sigma.as_slice(),
                n,
                x.as_mut_slice(),
                n,
            );
            dtrsm(
                Side::Left,
                Trans::Yes,
                n,
                1,
                1.0,
                sigma.as_slice(),
                n,
                x.as_mut_slice(),
                n,
            );
        }
        Backend::FullTile => {
            let mut sigma = TileMatrix::from_kernel_symmetric_lower(&k22, cfg.nb, workers);
            tile_potrf(&mut sigma, rt)?;
            factorization_seconds = sw.lap();
            tile_potrs(&mut sigma, &mut x, rt);
        }
        Backend::Tlr { eps, method } => {
            let mut sigma = TlrMatrix::from_kernel(&k22, cfg.nb, eps, method, workers, cfg.seed)?;
            tlr_potrf(&mut sigma, rt)?;
            factorization_seconds = sw.lap();
            tlr_potrs(&mut sigma, &mut x, rt);
        }
    }

    // Ẑ₁ = Σ₁₂ x. Build the cross-covariance over the joint location list:
    // rows = targets (0..m), columns = observed (m..m+n).
    let mut joint = Vec::with_capacity(m + n);
    joint.extend_from_slice(targets);
    joint.extend_from_slice(observed);
    let kj = MaternKernel::new(std::sync::Arc::new(joint), params, metric, 0.0);
    let sigma12 = TileMatrix::from_kernel_rect(&kj, 0, m, m, n, cfg.nb);
    let values = tile_gemm(&sigma12, &x, workers).as_slice().to_vec();
    let solve_seconds = sw.lap();
    Ok(Prediction {
        values,
        factorization_seconds,
        solve_seconds,
    })
}

/// Kriging with per-target conditional variances (paper Eq. 3):
/// `Var[Z₁|Z₂] = diag(Σ₁₁ − Σ₁₂ Σ₂₂⁻¹ Σ₂₁)`.
///
/// The paper states the conditional distribution but only evaluates the
/// mean predictor; the variance is the natural extension (it prices the
/// prediction's uncertainty) and costs one extra block solve
/// `Σ₂₂⁻¹ Σ₂₁` with `m` right-hand sides.
#[allow(clippy::too_many_arguments)]
pub fn predict_with_variance(
    observed: &[Location],
    z: &[f64],
    targets: &[Location],
    params: MaternParams,
    metric: DistanceMetric,
    nugget: f64,
    backend: Backend,
    cfg: LikelihoodConfig,
    rt: &Runtime,
) -> Result<(Prediction, Vec<f64>), LinalgError> {
    let n = observed.len();
    let m = targets.len();
    let prediction = predict(
        observed, z, targets, params, metric, nugget, backend, cfg, rt,
    )?;
    if m == 0 {
        return Ok((prediction, vec![]));
    }
    // Σ₂₁ (n × m) as dense RHS block, solved through the chosen factor.
    let mut joint = Vec::with_capacity(m + n);
    joint.extend_from_slice(targets);
    joint.extend_from_slice(observed);
    let kj = MaternKernel::new(std::sync::Arc::new(joint), params, metric, 0.0);
    let mut s21 = Mat::from_fn(n, m, |i, j| kj.entry(m + i, j));
    let k22 = MaternKernel::new(
        std::sync::Arc::new(observed.to_vec()),
        params,
        metric,
        nugget,
    );
    let workers = rt.num_workers();
    match backend {
        Backend::FullBlock => {
            let mut sigma = Mat::from_fn(n, n, |i, j| k22.entry(i, j));
            block_potrf(&mut sigma, workers)?;
            dtrsm(
                Side::Left,
                Trans::No,
                n,
                m,
                1.0,
                sigma.as_slice(),
                n,
                s21.as_mut_slice(),
                n,
            );
            dtrsm(
                Side::Left,
                Trans::Yes,
                n,
                m,
                1.0,
                sigma.as_slice(),
                n,
                s21.as_mut_slice(),
                n,
            );
        }
        Backend::FullTile => {
            let mut sigma = TileMatrix::from_kernel_symmetric_lower(&k22, cfg.nb, workers);
            tile_potrf(&mut sigma, rt)?;
            tile_potrs(&mut sigma, &mut s21, rt);
        }
        Backend::Tlr { eps, method } => {
            let mut sigma = TlrMatrix::from_kernel(&k22, cfg.nb, eps, method, workers, cfg.seed)?;
            tlr_potrf(&mut sigma, rt)?;
            tlr_potrs(&mut sigma, &mut s21, rt);
        }
    }
    // Var_j = Σ₁₁(j,j) − Σ₁₂(j,:) · (Σ₂₂⁻¹ Σ₂₁)(:,j). Σ₁₁ diagonal is the
    // marginal variance (+ nothing: targets carry no nugget).
    let mut variances = Vec::with_capacity(m);
    for (j, target) in targets.iter().enumerate() {
        let col = s21.col(j);
        let mut acc = 0.0;
        for (i, obs) in observed.iter().enumerate() {
            acc += kj.params().covariance(metric.distance(target, obs)) * col[i];
        }
        // Clamp tiny negative values from approximation error.
        variances.push((params.variance - acc).max(0.0));
    }
    Ok((prediction, variances))
}

/// The paper's prediction MSE (Eq. 7): `(1/m)·Σ (Y_i − Ŷ_i)²`.
pub fn prediction_mse(truth: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(truth.len(), predicted.len(), "length mismatch");
    assert!(!truth.is_empty(), "empty prediction set");
    truth
        .iter()
        .zip(predicted)
        .map(|(t, p)| (t - p) * (t - p))
        .sum::<f64>()
        / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locations::{holdout_split, synthetic_locations};
    use crate::simulate::FieldSimulator;
    use exa_util::Rng;
    use std::sync::Arc;

    /// Simulates a field, holds out `m` sites, predicts them back.
    fn holdout_experiment(
        params: MaternParams,
        side: usize,
        m: usize,
        backend: Backend,
        seed: u64,
    ) -> (f64, Vec<f64>, Vec<f64>) {
        let mut rng = Rng::seed_from_u64(seed);
        let locs = Arc::new(synthetic_locations(side, &mut rng));
        let rt = Runtime::new(4);
        let sim = FieldSimulator::new(
            locs.clone(),
            params,
            DistanceMetric::Euclidean,
            0.0,
            32,
            &rt,
        )
        .unwrap();
        let z = sim.draw(&mut rng);
        let split = holdout_split(locs.len(), m, &mut rng);
        let observed: Vec<Location> = split.estimation.iter().map(|&i| locs[i]).collect();
        let z_obs: Vec<f64> = split.estimation.iter().map(|&i| z[i]).collect();
        let targets: Vec<Location> = split.validation.iter().map(|&i| locs[i]).collect();
        let truth: Vec<f64> = split.validation.iter().map(|&i| z[i]).collect();
        let p = predict(
            &observed,
            &z_obs,
            &targets,
            params,
            DistanceMetric::Euclidean,
            1e-8,
            backend,
            LikelihoodConfig { nb: 32, seed },
            &rt,
        )
        .unwrap();
        (prediction_mse(&truth, &p.values), truth, p.values)
    }

    #[test]
    fn strong_correlation_gives_low_mse() {
        // §VIII-D1: prediction MSE falls as correlation strengthens
        // (paper: 0.124 weak / 0.036 medium / 0.012 strong at 40K).
        let (weak, _, _) = holdout_experiment(
            MaternParams::new(1.0, 0.03, 0.5),
            18,
            30,
            Backend::FullTile,
            1,
        );
        let (strong, _, _) = holdout_experiment(
            MaternParams::new(1.0, 0.3, 0.5),
            18,
            30,
            Backend::FullTile,
            1,
        );
        assert!(
            strong < weak,
            "strong-corr MSE {strong} must beat weak-corr {weak}"
        );
        assert!(strong < 0.2, "strong-correlation MSE {strong}");
    }

    #[test]
    fn tlr_prediction_matches_full_tile() {
        let params = MaternParams::new(1.0, 0.1, 0.5);
        let (mse_full, _, pred_full) = holdout_experiment(params, 16, 25, Backend::FullTile, 2);
        let (mse_tlr, _, pred_tlr) = holdout_experiment(params, 16, 25, Backend::tlr(1e-9), 2);
        // Identical data (same seed): per-point predictions nearly coincide.
        for (a, b) in pred_full.iter().zip(&pred_tlr) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
        assert!((mse_full - mse_tlr).abs() < 1e-3);
    }

    #[test]
    fn prediction_beats_trivial_zero_predictor() {
        let params = MaternParams::new(1.0, 0.3, 0.5);
        let (mse, truth, _) = holdout_experiment(params, 16, 25, Backend::FullTile, 3);
        let zero_mse = prediction_mse(&truth, &vec![0.0; truth.len()]);
        assert!(
            mse < zero_mse,
            "kriging MSE {mse} must beat marginal variance {zero_mse}"
        );
    }

    #[test]
    fn block_and_tile_backends_agree() {
        let params = MaternParams::new(1.0, 0.1, 0.5);
        let (_, _, p_block) = holdout_experiment(params, 12, 10, Backend::FullBlock, 4);
        let (_, _, p_tile) = holdout_experiment(params, 12, 10, Backend::FullTile, 4);
        for (a, b) in p_block.iter().zip(&p_tile) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn empty_target_set() {
        let mut rng = Rng::seed_from_u64(5);
        let locs = synthetic_locations(5, &mut rng);
        let rt = Runtime::new(1);
        let p = predict(
            &locs,
            &[0.5; 25],
            &[],
            MaternParams::new(1.0, 0.1, 0.5),
            DistanceMetric::Euclidean,
            1e-8,
            Backend::FullTile,
            LikelihoodConfig::default(),
            &rt,
        )
        .unwrap();
        assert!(p.values.is_empty());
    }

    #[test]
    fn conditional_variance_is_bounded_and_orders_by_distance() {
        // 0 ≤ Var[Z₁|Z₂] ≤ θ₁, and a target far from every observation is
        // more uncertain than one surrounded by observations.
        let params = MaternParams::new(1.0, 0.2, 0.5);
        let rt = Runtime::new(2);
        let mut rng = Rng::seed_from_u64(10);
        let locs = synthetic_locations(10, &mut rng);
        let z = vec![0.3; 100];
        // Near target: the grid centre; far target: well outside the square.
        let targets = vec![Location::new(0.5, 0.5), Location::new(3.0, 3.0)];
        let (_, vars) = predict_with_variance(
            &locs,
            &z,
            &targets,
            params,
            DistanceMetric::Euclidean,
            1e-8,
            Backend::FullTile,
            LikelihoodConfig { nb: 25, seed: 10 },
            &rt,
        )
        .unwrap();
        assert!(
            vars.iter().all(|&v| (0.0..=1.0 + 1e-9).contains(&v)),
            "{vars:?}"
        );
        assert!(
            vars[0] < 0.5 && vars[1] > 0.9,
            "near {} should be certain, far {} nearly marginal",
            vars[0],
            vars[1]
        );
    }

    #[test]
    fn tlr_variance_matches_full_tile() {
        let params = MaternParams::new(1.0, 0.1, 0.5);
        let rt = Runtime::new(2);
        let mut rng = Rng::seed_from_u64(11);
        let locs = synthetic_locations(9, &mut rng);
        let z = vec![0.1; 81];
        let targets = vec![Location::new(0.4, 0.6), Location::new(0.9, 0.1)];
        let run = |backend| {
            predict_with_variance(
                &locs,
                &z,
                &targets,
                params,
                DistanceMetric::Euclidean,
                1e-8,
                backend,
                LikelihoodConfig { nb: 27, seed: 11 },
                &rt,
            )
            .unwrap()
            .1
        };
        let exact = run(Backend::FullTile);
        let approx = run(Backend::tlr(1e-10));
        for (a, b) in exact.iter().zip(&approx) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mse_validates_lengths() {
        prediction_mse(&[1.0, 2.0], &[1.0]);
    }
}
