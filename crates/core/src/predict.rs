//! Kriging prediction results and accuracy scoring (paper Eq. 2–4, Eq. 7).
//!
//! With `Z₂` observed at `n` locations and `m` target locations, the
//! zero-mean conditional expectation is `Ẑ₁ = Σ₁₂ Σ₂₂⁻¹ Z₂`. The prediction
//! entry points live on [`crate::FittedModel`] — `predict`,
//! `predict_with_variance`, and the serving-oriented coalesced
//! `predict_batch` family — all of which reuse the factor computed at `θ̂`.
//! This module holds the shared [`Prediction`] result type and the paper's
//! mean-squared-error score (Eq. 7) against held-out truth.

/// Result of one prediction run.
#[derive(Clone, Debug)]
pub struct Prediction {
    /// Predicted values `Ẑ₁` at the target locations.
    pub values: Vec<f64>,
    /// Seconds in the `Σ₂₂` factorization (0 for factor-reusing session
    /// predictions; retained for harnesses that account full pipelines).
    pub factorization_seconds: f64,
    /// Seconds in the solves + cross-covariance product.
    pub solve_seconds: f64,
}

/// The paper's prediction MSE (Eq. 7): `(1/m)·Σ (Y_i − Ŷ_i)²`.
pub fn prediction_mse(truth: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(truth.len(), predicted.len(), "length mismatch");
    assert!(!truth.is_empty(), "empty prediction set");
    truth
        .iter()
        .zip(predicted)
        .map(|(t, p)| (t - p) * (t - p))
        .sum::<f64>()
        / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::likelihood::{Backend, LikelihoodConfig};
    use crate::locations::{holdout_split, synthetic_locations};
    use crate::model::GeoModel;
    use crate::simulate::FieldSimulator;
    use exa_covariance::{DistanceMetric, Location, MaternKernel, MaternParams};
    use exa_runtime::Runtime;
    use exa_util::Rng;
    use std::sync::Arc;

    /// Simulates a field, holds out `m` sites, predicts them back through a
    /// session factored at the generating parameters.
    fn holdout_experiment(
        params: MaternParams,
        side: usize,
        m: usize,
        backend: Backend,
        seed: u64,
    ) -> (f64, Vec<f64>, Vec<f64>) {
        let mut rng = Rng::seed_from_u64(seed);
        let locs = Arc::new(synthetic_locations(side, &mut rng));
        let rt = Runtime::new(4);
        let sim = FieldSimulator::new(
            locs.clone(),
            params,
            DistanceMetric::Euclidean,
            0.0,
            32,
            &rt,
        )
        .unwrap();
        let z = sim.draw(&mut rng);
        let split = holdout_split(locs.len(), m, &mut rng);
        let observed: Vec<Location> = split.estimation.iter().map(|&i| locs[i]).collect();
        let z_obs: Vec<f64> = split.estimation.iter().map(|&i| z[i]).collect();
        let targets: Vec<Location> = split.validation.iter().map(|&i| locs[i]).collect();
        let truth: Vec<f64> = split.validation.iter().map(|&i| z[i]).collect();
        let fitted = GeoModel::<MaternKernel>::builder()
            .locations(Arc::new(observed))
            .data(z_obs)
            .nugget(1e-8)
            .backend(backend)
            .config(LikelihoodConfig { nb: 32, seed })
            .build()
            .unwrap()
            .at_params(&params.to_array(), &rt)
            .unwrap();
        let p = fitted.predict(&targets, &rt).unwrap();
        (prediction_mse(&truth, &p.values), truth, p.values)
    }

    #[test]
    fn strong_correlation_gives_low_mse() {
        // §VIII-D1: prediction MSE falls as correlation strengthens
        // (paper: 0.124 weak / 0.036 medium / 0.012 strong at 40K).
        let (weak, _, _) = holdout_experiment(
            MaternParams::new(1.0, 0.03, 0.5),
            18,
            30,
            Backend::FullTile,
            1,
        );
        let (strong, _, _) = holdout_experiment(
            MaternParams::new(1.0, 0.3, 0.5),
            18,
            30,
            Backend::FullTile,
            1,
        );
        assert!(
            strong < weak,
            "strong-corr MSE {strong} must beat weak-corr {weak}"
        );
        assert!(strong < 0.2, "strong-correlation MSE {strong}");
    }

    #[test]
    fn tlr_prediction_matches_full_tile() {
        let params = MaternParams::new(1.0, 0.1, 0.5);
        let (mse_full, _, pred_full) = holdout_experiment(params, 16, 25, Backend::FullTile, 2);
        let (mse_tlr, _, pred_tlr) = holdout_experiment(params, 16, 25, Backend::tlr(1e-9), 2);
        // Identical data (same seed): per-point predictions nearly coincide.
        for (a, b) in pred_full.iter().zip(&pred_tlr) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
        assert!((mse_full - mse_tlr).abs() < 1e-3);
    }

    #[test]
    fn prediction_beats_trivial_zero_predictor() {
        let params = MaternParams::new(1.0, 0.3, 0.5);
        let (mse, truth, _) = holdout_experiment(params, 16, 25, Backend::FullTile, 3);
        let zero_mse = prediction_mse(&truth, &vec![0.0; truth.len()]);
        assert!(
            mse < zero_mse,
            "kriging MSE {mse} must beat marginal variance {zero_mse}"
        );
    }

    #[test]
    fn block_and_tile_backends_agree() {
        let params = MaternParams::new(1.0, 0.1, 0.5);
        let (_, _, p_block) = holdout_experiment(params, 12, 10, Backend::FullBlock, 4);
        let (_, _, p_tile) = holdout_experiment(params, 12, 10, Backend::FullTile, 4);
        for (a, b) in p_block.iter().zip(&p_tile) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn conditional_variance_is_bounded_and_orders_by_distance() {
        // 0 ≤ Var[Z₁|Z₂] ≤ θ₁, and a target far from every observation is
        // more uncertain than one surrounded by observations.
        let params = MaternParams::new(1.0, 0.2, 0.5);
        let rt = Runtime::new(2);
        let mut rng = Rng::seed_from_u64(10);
        let locs = synthetic_locations(10, &mut rng);
        let z = vec![0.3; 100];
        // Near target: the grid centre; far target: well outside the square.
        let targets = vec![Location::new(0.5, 0.5), Location::new(3.0, 3.0)];
        let fitted = GeoModel::<MaternKernel>::builder()
            .locations(Arc::new(locs))
            .data(z)
            .nugget(1e-8)
            .config(LikelihoodConfig { nb: 25, seed: 10 })
            .build()
            .unwrap()
            .at_params(&params.to_array(), &rt)
            .unwrap();
        let (_, vars) = fitted.predict_with_variance(&targets, &rt).unwrap();
        assert!(
            vars.iter().all(|&v| (0.0..=1.0 + 1e-9).contains(&v)),
            "{vars:?}"
        );
        assert!(
            vars[0] < 0.5 && vars[1] > 0.9,
            "near {} should be certain, far {} nearly marginal",
            vars[0],
            vars[1]
        );
    }

    #[test]
    fn tlr_variance_matches_full_tile() {
        let params = MaternParams::new(1.0, 0.1, 0.5);
        let rt = Runtime::new(2);
        let mut rng = Rng::seed_from_u64(11);
        let locs = synthetic_locations(9, &mut rng);
        let z = vec![0.1; 81];
        let targets = vec![Location::new(0.4, 0.6), Location::new(0.9, 0.1)];
        let run = |backend| {
            GeoModel::<MaternKernel>::builder()
                .locations(Arc::new(locs.clone()))
                .data(z.clone())
                .nugget(1e-8)
                .backend(backend)
                .config(LikelihoodConfig { nb: 27, seed: 11 })
                .build()
                .unwrap()
                .at_params(&params.to_array(), &rt)
                .unwrap()
                .predict_with_variance(&targets, &rt)
                .unwrap()
                .1
        };
        let exact = run(Backend::FullTile);
        let approx = run(Backend::tlr(1e-10));
        for (a, b) in exact.iter().zip(&approx) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mse_validates_lengths() {
        prediction_mse(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "empty prediction set")]
    fn mse_rejects_empty_input_instead_of_nan() {
        // Regression guard: 0/0 on empty input must not silently yield NaN.
        prediction_mse(&[], &[]);
    }
}
