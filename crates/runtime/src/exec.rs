//! Work-stealing execution of [`TaskGraph`]s.
//!
//! The executor plays StarPU's role: a pool of workers drains the ready
//! frontier, decrementing successor counters as tasks retire. Ready tasks go
//! to the executing worker's local deque (LIFO, cache-friendly "follow the
//! data" order); idle workers steal FIFO from peers or the global injector.
//! High-priority tasks (the factorization panel, i.e. the critical path) are
//! published to a dedicated injector that every worker polls first.

use crate::graph::TaskGraph;
use crate::trace::{ExecStats, TaskSpan};
use crossbeam_deque::{Injector, Stealer, Worker as Deque};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::time::Instant;

/// Shared executor configuration.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Number of worker threads (including the caller's thread).
    pub num_workers: usize,
    /// Record per-task spans (name, worker, start/end) into the stats.
    pub trace: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            num_workers: default_parallelism(),
            trace: false,
        }
    }
}

/// Available hardware parallelism (≥ 1).
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The task-graph executor (StarPU substitute).
pub struct Runtime {
    config: RuntimeConfig,
}

/// A task body in its executor slot; the executing worker takes it exactly
/// once.
type TaskSlot = Mutex<Option<Box<dyn FnOnce() + Send>>>;

struct Shared<'g> {
    tasks: Vec<TaskSlot>,
    succs: Vec<&'g [u32]>,
    preds_left: Vec<AtomicU32>,
    priority: Vec<u8>,
    names: Vec<&'static str>,
    remaining: AtomicUsize,
    injector: Injector<u32>,
    hi_injector: Injector<u32>,
    stealers: Vec<Stealer<u32>>,
}

impl Runtime {
    /// Executor with `num_workers` threads (clamped to ≥ 1), no tracing.
    pub fn new(num_workers: usize) -> Self {
        Runtime {
            config: RuntimeConfig {
                num_workers: num_workers.max(1),
                trace: false,
            },
        }
    }

    /// Executor using all available cores.
    pub fn max_parallel() -> Self {
        Runtime {
            config: RuntimeConfig::default(),
        }
    }

    /// Executor from an explicit configuration.
    pub fn with_config(config: RuntimeConfig) -> Self {
        let mut config = config;
        config.num_workers = config.num_workers.max(1);
        Runtime { config }
    }

    pub fn num_workers(&self) -> usize {
        self.config.num_workers
    }

    /// Executes every task in the graph, respecting the inferred
    /// dependencies; returns scheduling statistics.
    ///
    /// Panics in task bodies propagate after all workers stop (fail-fast is
    /// not attempted; numerical error handling is done via shared state by
    /// the tile layer, see `exa-tile`).
    pub fn run(&self, mut graph: TaskGraph) -> ExecStats {
        let n = graph.tasks.len();
        let start = Instant::now();
        if n == 0 {
            return ExecStats::empty(self.config.num_workers);
        }
        let nw = self.config.num_workers.min(n).max(1);

        // Decompose the graph into executor-friendly arrays.
        let mut funcs: Vec<TaskSlot> = Vec::with_capacity(n);
        let mut preds_left = Vec::with_capacity(n);
        let mut priority = Vec::with_capacity(n);
        let mut names = Vec::with_capacity(n);
        for t in graph.tasks.iter_mut() {
            funcs.push(Mutex::new(t.func.take()));
            preds_left.push(AtomicU32::new(t.n_preds));
            priority.push(t.priority);
            names.push(t.name);
        }
        let succs: Vec<&[u32]> = graph.tasks.iter().map(|t| t.succs.as_slice()).collect();

        let deques: Vec<Deque<u32>> = (0..nw).map(|_| Deque::new_fifo()).collect();
        let stealers: Vec<Stealer<u32>> = deques.iter().map(|d| d.stealer()).collect();

        let shared = Shared {
            tasks: funcs,
            succs,
            preds_left,
            priority,
            names,
            remaining: AtomicUsize::new(n),
            injector: Injector::new(),
            hi_injector: Injector::new(),
            stealers,
        };
        // Seed the ready frontier.
        for root in graph.roots() {
            if shared.priority[root as usize] > 0 {
                shared.hi_injector.push(root);
            } else {
                shared.injector.push(root);
            }
        }

        let spans: Vec<Mutex<Vec<TaskSpan>>> = (0..nw).map(|_| Mutex::new(Vec::new())).collect();
        let executed: Vec<AtomicUsize> = (0..nw).map(|_| AtomicUsize::new(0)).collect();
        let busy_ns: Vec<AtomicUsize> = (0..nw).map(|_| AtomicUsize::new(0)).collect();
        let trace = self.config.trace;

        std::thread::scope(|scope| {
            let shared = &shared;
            let spans = &spans;
            let executed = &executed;
            let busy_ns = &busy_ns;
            let mut deque_iter = deques.into_iter();
            let my_deque = deque_iter.next().expect("at least one worker");
            for (wid, deque) in deque_iter.enumerate() {
                scope.spawn(move || {
                    worker_loop(
                        wid + 1,
                        deque,
                        shared,
                        trace,
                        start,
                        &spans[wid + 1],
                        &executed[wid + 1],
                        &busy_ns[wid + 1],
                    );
                });
            }
            // The calling thread is worker 0.
            worker_loop(
                0,
                my_deque,
                shared,
                trace,
                start,
                &spans[0],
                &executed[0],
                &busy_ns[0],
            );
        });

        let wall = start.elapsed().as_secs_f64();
        let mut all_spans = Vec::new();
        for s in &spans {
            all_spans.extend(s.lock().drain(..));
        }
        all_spans.sort_by(|a, b| a.start.total_cmp(&b.start));
        ExecStats {
            wall_seconds: wall,
            tasks_executed: n,
            edges: graph.n_edges,
            workers: nw,
            per_worker_tasks: executed.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            busy_seconds: busy_ns
                .iter()
                .map(|c| c.load(Ordering::Relaxed) as f64 * 1e-9)
                .sum(),
            critical_path_tasks: graph.critical_path_len(),
            spans: all_spans,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    wid: usize,
    local: Deque<u32>,
    shared: &Shared<'_>,
    trace: bool,
    epoch: Instant,
    span_sink: &Mutex<Vec<TaskSpan>>,
    executed: &AtomicUsize,
    busy_ns: &AtomicUsize,
) {
    let mut spins = 0u32;
    loop {
        if shared.remaining.load(Ordering::Acquire) == 0 {
            return;
        }
        let task = find_task(&local, shared);
        let Some(tid) = task else {
            // Nothing runnable right now: back off politely.
            spins += 1;
            if spins > 64 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
            continue;
        };
        spins = 0;
        let func = shared.tasks[tid as usize]
            .lock()
            .take()
            .expect("task executed twice");
        let t0 = Instant::now();
        let s0 = t0.duration_since(epoch).as_secs_f64();
        func();
        let dur = t0.elapsed();
        busy_ns.fetch_add(dur.as_nanos() as usize, Ordering::Relaxed);
        executed.fetch_add(1, Ordering::Relaxed);
        if trace {
            span_sink.lock().push(TaskSpan {
                name: shared.names[tid as usize],
                worker: wid,
                start: s0,
                end: s0 + dur.as_secs_f64(),
            });
        }
        // Retire: release successors.
        for &s in shared.succs[tid as usize] {
            // ORDERING: AcqRel — Release publishes this task's tile writes to
            // the successor; the final decrement's Acquire pairs with every
            // predecessor's Release so the successor sees all of them.
            if shared.preds_left[s as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                if shared.priority[s as usize] > 0 {
                    shared.hi_injector.push(s);
                } else {
                    local.push(s);
                }
            }
        }
        // ORDERING: AcqRel — the zero-observing decrement's Acquire pairs
        // with every worker's Release, so whoever sees completion also sees
        // all task effects.
        shared.remaining.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Task acquisition order: high-priority injector, local deque, global
/// injector, then steal from peers.
fn find_task(local: &Deque<u32>, shared: &Shared<'_>) -> Option<u32> {
    loop {
        match shared.hi_injector.steal() {
            crossbeam_deque::Steal::Success(t) => return Some(t),
            crossbeam_deque::Steal::Retry => continue,
            crossbeam_deque::Steal::Empty => break,
        }
    }
    if let Some(t) = local.pop() {
        return Some(t);
    }
    loop {
        match shared.injector.steal() {
            crossbeam_deque::Steal::Success(t) => return Some(t),
            crossbeam_deque::Steal::Retry => continue,
            crossbeam_deque::Steal::Empty => break,
        }
    }
    for st in &shared.stealers {
        loop {
            match st.steal() {
                crossbeam_deque::Steal::Success(t) => return Some(t),
                crossbeam_deque::Steal::Retry => continue,
                crossbeam_deque::Steal::Empty => break,
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Access, TaskGraph};
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn executes_every_task_once() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut g = TaskGraph::new();
        let hs = g.register_many(32);
        for &h in &hs {
            for _ in 0..4 {
                let c = counter.clone();
                g.submit("inc", 0, &[(h, Access::ReadWrite)], move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        }
        let stats = Runtime::new(4).run(g);
        assert_eq!(counter.load(Ordering::Relaxed), 128);
        assert_eq!(stats.tasks_executed, 128);
        assert_eq!(stats.per_worker_tasks.iter().sum::<usize>(), 128);
    }

    #[test]
    fn write_chain_executes_in_submission_order() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut g = TaskGraph::new();
        let h = g.register();
        for i in 0..64 {
            let log = log.clone();
            g.submit("w", 0, &[(h, Access::Write)], move || {
                log.lock().push(i);
            });
        }
        Runtime::new(8).run(g);
        let log = log.lock();
        assert_eq!(*log, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn stf_version_semantics_hold_under_parallel_execution() {
        // Random accesses over several handles; each task checks it observes
        // exactly the handle versions implied by the sequential order.
        let mut rng = exa_util::Rng::seed_from_u64(1234);
        let n_handles = 6;
        let versions: Arc<Vec<AtomicU64>> =
            Arc::new((0..n_handles).map(|_| AtomicU64::new(0)).collect());
        let errors = Arc::new(AtomicUsize::new(0));
        let mut expected = vec![0u64; n_handles];
        let mut g = TaskGraph::new();
        let hs = g.register_many(n_handles);
        for _ in 0..500 {
            let h_idx = rng.next_below(n_handles as u64) as usize;
            let write = rng.next_f64() < 0.4;
            let ver = versions.clone();
            let errs = errors.clone();
            if write {
                let expect = expected[h_idx];
                expected[h_idx] += 1;
                g.submit("w", 0, &[(hs[h_idx], Access::Write)], move || {
                    // A writer must observe the version produced by the
                    // previous writer, with no concurrent readers running.
                    if ver[h_idx]
                        .compare_exchange(expect, expect + 1, Ordering::SeqCst, Ordering::SeqCst)
                        .is_err()
                    {
                        errs.fetch_add(1, Ordering::Relaxed);
                    }
                });
            } else {
                let expect = expected[h_idx];
                g.submit("r", 0, &[(hs[h_idx], Access::Read)], move || {
                    if ver[h_idx].load(Ordering::SeqCst) != expect {
                        errs.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        }
        Runtime::new(8).run(g);
        assert_eq!(errors.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn diamond_dependency_ordering() {
        // a -> {b, c} -> d: d must see both b and c done.
        let state = Arc::new(Mutex::new(Vec::new()));
        let mut g = TaskGraph::new();
        let h = g.register();
        let h2 = g.register();
        let s = state.clone();
        g.submit(
            "a",
            0,
            &[(h, Access::Write), (h2, Access::Write)],
            move || s.lock().push("a"),
        );
        let s = state.clone();
        g.submit("b", 0, &[(h, Access::ReadWrite)], move || {
            s.lock().push("b")
        });
        let s = state.clone();
        g.submit("c", 0, &[(h2, Access::ReadWrite)], move || {
            s.lock().push("c")
        });
        let s = state.clone();
        g.submit(
            "d",
            0,
            &[(h, Access::Read), (h2, Access::Read)],
            move || s.lock().push("d"),
        );
        Runtime::new(4).run(g);
        let log = state.lock();
        assert_eq!(log[0], "a");
        assert_eq!(log[3], "d");
    }

    #[test]
    fn single_worker_runs_everything() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut g = TaskGraph::new();
        let h = g.register();
        for _ in 0..10 {
            let c = counter.clone();
            g.submit("t", 0, &[(h, Access::Read)], move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        let stats = Runtime::new(1).run(g);
        assert_eq!(counter.load(Ordering::Relaxed), 10);
        assert_eq!(stats.workers, 1);
    }

    #[test]
    fn empty_graph_is_fine() {
        let stats = Runtime::new(4).run(TaskGraph::new());
        assert_eq!(stats.tasks_executed, 0);
    }

    #[test]
    fn trace_spans_respect_dependencies() {
        let mut g = TaskGraph::new();
        let h = g.register();
        for _ in 0..20 {
            g.submit("w", 0, &[(h, Access::Write)], || {
                std::hint::black_box(busy_work(1000));
            });
        }
        let rt = Runtime::with_config(RuntimeConfig {
            num_workers: 4,
            trace: true,
        });
        let stats = rt.run(g);
        assert_eq!(stats.spans.len(), 20);
        // Serialized chain: spans must not overlap.
        for w in stats.spans.windows(2) {
            assert!(w[1].start >= w[0].end - 1e-9);
        }
        assert!(stats.busy_seconds > 0.0);
        assert_eq!(stats.critical_path_tasks, 20);
    }

    fn busy_work(n: u64) -> u64 {
        let mut acc = 0u64;
        for i in 0..n {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        acc
    }

    #[test]
    fn parallel_speedup_on_independent_tasks() {
        // Not a strict perf assertion (CI machines vary); just checks that
        // many independent tasks spread across workers.
        let mut g = TaskGraph::new();
        let hs = g.register_many(64);
        for &h in &hs {
            g.submit("t", 0, &[(h, Access::Write)], || {
                std::hint::black_box(busy_work(2_000_000));
            });
        }
        let stats = Runtime::new(4).run(g);
        let nonzero = stats.per_worker_tasks.iter().filter(|&&c| c > 0).count();
        assert!(
            nonzero >= 2,
            "work not distributed: {:?}",
            stats.per_worker_tasks
        );
    }

    #[test]
    fn high_priority_tasks_front_run_the_queue() {
        // All tasks are independent; priority ones should be picked first by
        // the single worker after the seed ordering.
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut g = TaskGraph::new();
        for i in 0..10 {
            let h = g.register();
            let ord = order.clone();
            let pri = if i >= 5 { 1 } else { 0 };
            g.submit("t", pri, &[(h, Access::Write)], move || {
                ord.lock().push(i);
            });
        }
        Runtime::new(1).run(g);
        let order = order.lock();
        // The five high-priority tasks (5..10) must all run before the
        // low-priority ones.
        let pos_hi: Vec<usize> = order
            .iter()
            .enumerate()
            .filter(|(_, &v)| v >= 5)
            .map(|(p, _)| p)
            .collect();
        assert!(pos_hi.iter().all(|&p| p < 5), "order={order:?}");
    }
}
