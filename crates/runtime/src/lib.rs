//! A StarPU-like sequential-task-flow (STF) runtime.
//!
//! The paper's software stack executes its tile algorithms through the
//! [StarPU](https://starpu.gitlabpages.inria.fr/) dynamic runtime: algorithms
//! are written as sequential loop nests submitting *tasks* that declare how
//! they access *data handles*; the runtime infers the dependency DAG and
//! executes it asynchronously over the machine. This crate rebuilds that
//! model from scratch:
//!
//! * [`TaskGraph`] — handle registration, task submission with
//!   [`Access::Read`]/[`Access::Write`]/[`Access::ReadWrite`] modes, automatic
//!   dependency inference (last-writer/readers tracking).
//! * [`Runtime`] — work-stealing execution over `crossbeam-deque`, with a
//!   dedicated fast path for high-priority (critical-path) tasks and
//!   per-worker statistics ([`ExecStats`]).
//! * [`parallel_for`]/[`parallel_map`] — bulk-synchronous fork-join helpers
//!   used by the paper's "Full-block" baseline and by data generation.
//!
//! # Example
//!
//! ```
//! use exa_runtime::{Access, Runtime, TaskGraph};
//! use std::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//!
//! let mut graph = TaskGraph::new();
//! let data = Arc::new(AtomicUsize::new(0));
//! let h = graph.register();
//! for _ in 0..10 {
//!     let d = data.clone();
//!     graph.submit("inc", 0, &[(h, Access::ReadWrite)], move || {
//!         d.fetch_add(1, Ordering::Relaxed);
//!     });
//! }
//! let stats = Runtime::new(4).run(graph);
//! assert_eq!(data.load(Ordering::Relaxed), 10);
//! assert_eq!(stats.tasks_executed, 10);
//! ```

pub mod exec;
pub mod graph;
pub mod parallel;
pub mod trace;

pub use exec::{default_parallelism, Runtime, RuntimeConfig};
pub use graph::{Access, Handle, Priority, TaskGraph, TaskId};
pub use parallel::{parallel_for, parallel_map};
pub use trace::{ExecStats, TaskSpan};
