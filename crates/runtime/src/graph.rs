//! Sequential-task-flow (STF) graph construction.
//!
//! Mirrors StarPU's programming model: the algorithm is written as a
//! *sequential* loop nest that submits tasks declaring how they access data
//! handles (`Read`, `Write`, `ReadWrite`); the graph derives the dependency
//! DAG from the submission order:
//!
//! * a reader depends on the last writer of each handle it reads;
//! * a writer depends on the last writer **and** every reader that appeared
//!   since (readers may run concurrently with each other, never with a
//!   writer).
//!
//! This is exactly the dependency semantics that lets the dense tile Cholesky
//! and the TLR Cholesky in this workspace be written as their textbook
//! sequential loop nests while executing fully asynchronously.

/// How a task accesses a data handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Access {
    Read,
    Write,
    ReadWrite,
}

/// An opaque identifier for a logical piece of data (e.g. one tile).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Handle(pub(crate) u32);

/// Identifier of a submitted task within its graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TaskId(pub(crate) u32);

/// Task priority: higher values are scheduled preferentially. The tile
/// Cholesky gives panel tasks (POTRF/TRSM) high priority, as the paper's
/// Chameleon/HiCMA configuration does.
pub type Priority = u8;

pub(crate) struct TaskNode {
    pub(crate) func: Option<Box<dyn FnOnce() + Send>>,
    pub(crate) succs: Vec<u32>,
    pub(crate) n_preds: u32,
    pub(crate) priority: Priority,
    pub(crate) name: &'static str,
}

#[derive(Default)]
struct HandleState {
    last_writer: Option<u32>,
    readers_since_write: Vec<u32>,
}

/// A task graph under construction (one StarPU "session").
#[derive(Default)]
pub struct TaskGraph {
    pub(crate) tasks: Vec<TaskNode>,
    handles: Vec<HandleState>,
    pub(crate) n_edges: usize,
}

impl TaskGraph {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a logical datum and returns its handle.
    pub fn register(&mut self) -> Handle {
        let id = self.handles.len() as u32;
        self.handles.push(HandleState::default());
        Handle(id)
    }

    /// Registers `n` handles at once (e.g. one per tile).
    pub fn register_many(&mut self, n: usize) -> Vec<Handle> {
        (0..n).map(|_| self.register()).collect()
    }

    /// Number of submitted tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when no tasks have been submitted.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Number of dependency edges inferred so far.
    pub fn edge_count(&self) -> usize {
        self.n_edges
    }

    /// Submits a task accessing the given handles; dependencies on previously
    /// submitted tasks are inferred from the access modes.
    ///
    /// `name` is a static label used by execution traces and error messages.
    pub fn submit(
        &mut self,
        name: &'static str,
        priority: Priority,
        accesses: &[(Handle, Access)],
        func: impl FnOnce() + Send + 'static,
    ) -> TaskId {
        let id = self.tasks.len() as u32;
        let mut preds: Vec<u32> = Vec::new();
        for &(h, mode) in accesses {
            let state = &mut self.handles[h.0 as usize];
            match mode {
                Access::Read => {
                    if let Some(w) = state.last_writer {
                        preds.push(w);
                    }
                    state.readers_since_write.push(id);
                }
                Access::Write | Access::ReadWrite => {
                    if let Some(w) = state.last_writer {
                        preds.push(w);
                    }
                    preds.extend_from_slice(&state.readers_since_write);
                    state.readers_since_write.clear();
                    state.last_writer = Some(id);
                }
            }
        }
        preds.sort_unstable();
        preds.dedup();
        preds.retain(|&p| p != id);
        let n_preds = preds.len() as u32;
        self.n_edges += preds.len();
        for &p in &preds {
            self.tasks[p as usize].succs.push(id);
        }
        self.tasks.push(TaskNode {
            func: Some(Box::new(func)),
            succs: Vec::new(),
            n_preds,
            priority,
            name,
        });
        TaskId(id)
    }

    /// The task IDs with no predecessors (the initial ready frontier).
    pub(crate) fn roots(&self) -> Vec<u32> {
        self.tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.n_preds == 0)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Length (in task count) of the longest dependency chain; a unit-cost
    /// critical path used by scheduler statistics and tests.
    pub fn critical_path_len(&self) -> usize {
        let n = self.tasks.len();
        let mut depth = vec![0u32; n];
        // Tasks are topologically ordered by construction (edges only point
        // from lower to higher ids).
        let mut longest = 0u32;
        for i in 0..n {
            let d = depth[i] + 1;
            longest = longest.max(d);
            for &s in &self.tasks[i].succs {
                depth[s as usize] = depth[s as usize].max(d);
            }
        }
        longest as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop() {}

    #[test]
    fn chain_of_writers_serializes() {
        let mut g = TaskGraph::new();
        let h = g.register();
        let _t0 = g.submit("w0", 0, &[(h, Access::Write)], noop);
        let _t1 = g.submit("w1", 0, &[(h, Access::Write)], noop);
        let _t2 = g.submit("w2", 0, &[(h, Access::Write)], noop);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.critical_path_len(), 3);
        assert_eq!(g.roots(), vec![0]);
    }

    #[test]
    fn readers_run_concurrently_between_writers() {
        let mut g = TaskGraph::new();
        let h = g.register();
        g.submit("w", 0, &[(h, Access::Write)], noop);
        g.submit("r1", 0, &[(h, Access::Read)], noop);
        g.submit("r2", 0, &[(h, Access::Read)], noop);
        g.submit("w2", 0, &[(h, Access::Write)], noop);
        // r1, r2 depend on w; w2 depends on w (dedup via readers) + r1 + r2.
        assert_eq!(g.tasks[0].succs, vec![1, 2, 3]);
        assert_eq!(g.tasks[3].n_preds, 3);
        // Readers are mutually independent: critical path = w -> r -> w2.
        assert_eq!(g.critical_path_len(), 3);
    }

    #[test]
    fn duplicate_handle_access_deduplicates_preds() {
        let mut g = TaskGraph::new();
        let a = g.register();
        let b = g.register();
        g.submit("w", 0, &[(a, Access::Write), (b, Access::Write)], noop);
        let t = g.submit("rw", 0, &[(a, Access::Read), (b, Access::ReadWrite)], noop);
        assert_eq!(g.tasks[t.0 as usize].n_preds, 1);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn independent_handles_no_edges() {
        let mut g = TaskGraph::new();
        let hs = g.register_many(8);
        for &h in &hs {
            g.submit("w", 0, &[(h, Access::Write)], noop);
        }
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.critical_path_len(), 1);
        assert_eq!(g.roots().len(), 8);
    }

    #[test]
    fn read_after_read_after_write_tracks_last_writer_only() {
        let mut g = TaskGraph::new();
        let h = g.register();
        g.submit("w", 0, &[(h, Access::Write)], noop);
        g.submit("r1", 0, &[(h, Access::Read)], noop);
        let r2 = g.submit("r2", 0, &[(h, Access::Read)], noop);
        // r2 depends only on the writer, not on r1.
        assert_eq!(g.tasks[r2.0 as usize].n_preds, 1);
    }
}
