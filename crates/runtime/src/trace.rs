//! Execution statistics and per-task traces.
//!
//! The paper's §VIII-C discusses how the StarPU execution hides the
//! latency-bound TLR kernels; [`ExecStats`] exposes the quantities needed to
//! reason about that here: wall time, aggregate busy time (their ratio is the
//! parallel efficiency), per-worker load, and the unit-cost critical path.

/// One executed task instance (recorded when tracing is enabled).
#[derive(Clone, Copy, Debug)]
pub struct TaskSpan {
    /// Static task label (e.g. `"potrf"`).
    pub name: &'static str,
    /// Worker that executed the task.
    pub worker: usize,
    /// Start offset in seconds from the run epoch.
    pub start: f64,
    /// End offset in seconds from the run epoch.
    pub end: f64,
}

/// Statistics for one [`crate::Runtime::run`] invocation.
#[derive(Clone, Debug)]
pub struct ExecStats {
    /// Wall-clock seconds for the whole graph.
    pub wall_seconds: f64,
    /// Number of tasks retired.
    pub tasks_executed: usize,
    /// Number of dependency edges in the graph.
    pub edges: usize,
    /// Workers used.
    pub workers: usize,
    /// Tasks retired per worker.
    pub per_worker_tasks: Vec<usize>,
    /// Sum of task execution times across workers.
    pub busy_seconds: f64,
    /// Longest dependency chain (unit task cost).
    pub critical_path_tasks: usize,
    /// Per-task spans (empty unless tracing was enabled).
    pub spans: Vec<TaskSpan>,
}

impl ExecStats {
    /// Statistics for a run that executed nothing (empty task graph).
    pub fn empty(workers: usize) -> Self {
        ExecStats {
            wall_seconds: 0.0,
            tasks_executed: 0,
            edges: 0,
            workers,
            per_worker_tasks: vec![0; workers],
            busy_seconds: 0.0,
            critical_path_tasks: 0,
            spans: Vec::new(),
        }
    }

    /// Busy time divided by `workers × wall`: 1.0 means perfectly packed.
    pub fn parallel_efficiency(&self) -> f64 {
        if self.wall_seconds <= 0.0 || self.workers == 0 {
            return 0.0;
        }
        self.busy_seconds / (self.wall_seconds * self.workers as f64)
    }

    /// Coefficient of variation of per-worker task counts (load imbalance).
    pub fn load_imbalance(&self) -> f64 {
        if self.per_worker_tasks.is_empty() {
            return 0.0;
        }
        let counts: Vec<f64> = self.per_worker_tasks.iter().map(|&c| c as f64).collect();
        let m = exa_util::stats::mean(&counts);
        if m == 0.0 {
            return 0.0;
        }
        let sd = exa_util::stats::sample_variance(&counts).sqrt();
        if sd.is_nan() {
            0.0
        } else {
            sd / m
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_of_empty_stats_is_zero() {
        let s = ExecStats::empty(4);
        assert_eq!(s.parallel_efficiency(), 0.0);
        assert_eq!(s.load_imbalance(), 0.0);
    }

    #[test]
    fn efficiency_formula() {
        let s = ExecStats {
            wall_seconds: 2.0,
            tasks_executed: 8,
            edges: 0,
            workers: 4,
            per_worker_tasks: vec![2, 2, 2, 2],
            busy_seconds: 6.0,
            critical_path_tasks: 2,
            spans: vec![],
        };
        assert!((s.parallel_efficiency() - 0.75).abs() < 1e-12);
        assert_eq!(s.load_imbalance(), 0.0);
    }

    #[test]
    fn imbalance_detects_skew() {
        let s = ExecStats {
            wall_seconds: 1.0,
            tasks_executed: 4,
            edges: 0,
            workers: 2,
            per_worker_tasks: vec![4, 0],
            busy_seconds: 1.0,
            critical_path_tasks: 4,
            spans: vec![],
        };
        assert!(s.load_imbalance() > 1.0);
    }
}
