//! Fork-join data parallelism helpers.
//!
//! The paper's "Full-block" baseline is a LAPACK-style *block* algorithm:
//! each step is a bulk-synchronous parallel region (multi-threaded BLAS)
//! separated by barriers, in contrast to the tile algorithms' asynchronous
//! DAG execution. [`parallel_for`] provides exactly that fork-join shape, and
//! is also used for embarrassingly parallel work like covariance matrix
//! generation.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `body(start, end)` over disjoint chunks of `0..n` on `num_workers`
/// threads (the calling thread participates). Chunks are distributed
/// dynamically via an atomic cursor, so irregular per-chunk cost balances
/// out.
pub fn parallel_for(
    num_workers: usize,
    n: usize,
    chunk: usize,
    body: impl Fn(usize, usize) + Sync,
) {
    let chunk = chunk.max(1);
    let nw = num_workers.max(1).min(n.div_ceil(chunk).max(1));
    if nw == 1 || n == 0 {
        let mut s = 0;
        while s < n {
            let e = (s + chunk).min(n);
            body(s, e);
            s = e;
        }
        return;
    }
    let cursor = AtomicUsize::new(0);
    let worker = |_: usize| loop {
        let s = cursor.fetch_add(chunk, Ordering::Relaxed);
        if s >= n {
            break;
        }
        let e = (s + chunk).min(n);
        body(s, e);
    };
    std::thread::scope(|scope| {
        for w in 1..nw {
            let worker = &worker;
            scope.spawn(move || worker(w));
        }
        worker(0);
    });
}

/// Parallel map over `0..n`, collecting results in index order.
pub fn parallel_map<T: Send>(
    num_workers: usize,
    n: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let cell = SyncSlice(std::cell::UnsafeCell::new(out.as_mut_slice()));
    // Capture the wrapper by reference (not its UnsafeCell field) so the
    // closure is `Sync` via the manual impl below.
    let cell_ref = &cell;
    parallel_for(num_workers, n, 64, |s, e| {
        // SAFETY: ranges [s, e) from parallel_for are disjoint, so each slot
        // is written by exactly one thread.
        let slice: &mut [Option<T>] = unsafe { &mut *cell_ref.0.get() };
        for (i, slot) in slice[s..e].iter_mut().enumerate() {
            *slot = Some(f(s + i));
        }
    });
    out.into_iter().map(|o| o.expect("slot filled")).collect()
}

/// Wrapper making a raw mutable slice shareable across the scoped threads;
/// disjointness of writes is guaranteed by `parallel_for`'s chunking.
struct SyncSlice<'a, T>(std::cell::UnsafeCell<&'a mut [Option<T>]>);
// SAFETY: `parallel_for` hands each worker a disjoint [s, e) range, so no
// slot is ever written from two threads; T: Send keeps the values movable.
unsafe impl<T: Send> Sync for SyncSlice<'_, T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn covers_all_indices_exactly_once() {
        let n = 10_007;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        parallel_for(8, n, 13, |s, e| {
            for h in hits.iter().take(e).skip(s) {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn single_worker_sequential_path() {
        let n = 100;
        let acc = AtomicUsize::new(0);
        parallel_for(1, n, 7, |s, e| {
            acc.fetch_add(e - s, Ordering::Relaxed);
        });
        assert_eq!(acc.load(Ordering::Relaxed), n);
    }

    #[test]
    fn zero_items_is_noop() {
        parallel_for(4, 0, 16, |_, _| panic!("must not be called"));
    }

    #[test]
    fn parallel_map_preserves_order() {
        let v = parallel_map(4, 1000, |i| i * i);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i * i);
        }
    }

    #[test]
    fn parallel_map_empty() {
        let v: Vec<usize> = parallel_map(4, 0, |i| i);
        assert!(v.is_empty());
    }
}
