//! Property-based tests of the STF runtime: for random task graphs, the
//! execution must respect every inferred dependency (no reader before its
//! writer, no writer racing a reader), produce deterministic results, and
//! retire every task exactly once — for any worker count.

use exa_runtime::{Access, Runtime, TaskGraph};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A randomly generated task spec: which handles it touches and how.
#[derive(Clone, Debug)]
struct TaskSpec {
    handle_accesses: Vec<(usize, bool)>, // (handle index, is_write)
}

/// Observation log: per task, the `(handle, counter value)` pairs it saw.
type SeenLog = Arc<Mutex<Vec<(usize, Vec<(usize, usize)>)>>>;

fn task_strategy(handles: usize) -> impl Strategy<Value = TaskSpec> {
    proptest::collection::vec((0..handles, any::<bool>()), 1..3).prop_map(|mut v| {
        // One access per handle (duplicates collapse to the strongest mode).
        v.sort_by_key(|&(h, _)| h);
        v.dedup_by_key(|&mut (h, _)| h);
        TaskSpec { handle_accesses: v }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn execution_respects_sequential_consistency(
        specs in proptest::collection::vec(task_strategy(4), 1..40),
        workers in 1usize..5,
    ) {
        // Each handle is a counter; a writer records the count it saw.
        // Sequential-task-flow semantics demand every task observes exactly
        // the state the *program order* prefix of writers produced.
        let counters: Vec<Arc<AtomicUsize>> =
            (0..4).map(|_| Arc::new(AtomicUsize::new(0))).collect();
        let log: SeenLog = Arc::new(Mutex::new(Vec::new()));
        let mut graph = TaskGraph::new();
        let handles: Vec<_> = (0..4).map(|_| graph.register()).collect();
        // Expected value of each counter before every task, per program order.
        let mut expected_before: Vec<Vec<(usize, usize)>> = Vec::new();
        let mut writes_so_far = [0usize; 4];
        for (tid, spec) in specs.iter().enumerate() {
            let mut reads = Vec::new();
            let mut deps = Vec::new();
            for &(h, is_write) in &spec.handle_accesses {
                deps.push((
                    handles[h],
                    if is_write { Access::ReadWrite } else { Access::Read },
                ));
                reads.push((h, writes_so_far[h]));
            }
            expected_before.push(reads.clone());
            for &(h, is_write) in &spec.handle_accesses {
                if is_write {
                    writes_so_far[h] += 1;
                }
            }
            let counters = counters.clone();
            let log = log.clone();
            let spec = spec.clone();
            graph.submit("t", 0, &deps, move || {
                let seen: Vec<(usize, usize)> = spec
                    .handle_accesses
                    .iter()
                    .map(|&(h, _)| (h, counters[h].load(Ordering::SeqCst)))
                    .collect();
                log.lock().unwrap().push((tid, seen));
                for &(h, is_write) in &spec.handle_accesses {
                    if is_write {
                        counters[h].fetch_add(1, Ordering::SeqCst);
                    }
                }
            });
        }
        let stats = Runtime::new(workers).run(graph);
        prop_assert_eq!(stats.tasks_executed, specs.len());
        let log = log.lock().unwrap();
        prop_assert_eq!(log.len(), specs.len());
        for (tid, seen) in log.iter() {
            // Every handle value observed must equal the number of writers
            // submitted before this task — i.e. STF order was respected.
            prop_assert_eq!(
                seen, &expected_before[*tid],
                "task {} observed stale or future state", tid
            );
        }
    }

    #[test]
    fn worker_count_does_not_change_observable_results(
        specs in proptest::collection::vec(task_strategy(3), 1..25),
    ) {
        let run = |workers: usize| -> Vec<usize> {
            let counters: Vec<Arc<AtomicUsize>> =
                (0..3).map(|_| Arc::new(AtomicUsize::new(0))).collect();
            let mut graph = TaskGraph::new();
            let handles: Vec<_> = (0..3).map(|_| graph.register()).collect();
            for spec in &specs {
                let deps: Vec<_> = spec
                    .handle_accesses
                    .iter()
                    .map(|&(h, w)| {
                        (handles[h], if w { Access::ReadWrite } else { Access::Read })
                    })
                    .collect();
                let counters = counters.clone();
                let spec = spec.clone();
                graph.submit("t", 0, &deps, move || {
                    for &(h, is_write) in &spec.handle_accesses {
                        if is_write {
                            // Deterministic nonlinear update so reordering
                            // would be visible in the final state.
                            let old = counters[h].load(Ordering::SeqCst);
                            counters[h].store(old.wrapping_mul(31) + 7, Ordering::SeqCst);
                        }
                    }
                });
            }
            Runtime::new(workers).run(graph);
            counters.iter().map(|c| c.load(Ordering::SeqCst)).collect()
        };
        prop_assert_eq!(run(1), run(4));
    }

    #[test]
    fn edge_count_matches_naive_dependency_analysis(
        specs in proptest::collection::vec(task_strategy(3), 1..20),
    ) {
        let mut graph = TaskGraph::new();
        let handles: Vec<_> = (0..3).map(|_| graph.register()).collect();
        for spec in &specs {
            let deps: Vec<_> = spec
                .handle_accesses
                .iter()
                .map(|&(h, w)| (handles[h], if w { Access::ReadWrite } else { Access::Read }))
                .collect();
            graph.submit("t", 0, &deps, move || {});
        }
        // The graph must have at least one edge whenever a later task
        // touches a handle a previous task wrote.
        let mut needs_edge = false;
        let mut written = [false; 3];
        for spec in &specs {
            for &(h, is_write) in &spec.handle_accesses {
                if written[h] {
                    needs_edge = true;
                }
                if is_write {
                    written[h] = true;
                }
            }
        }
        if needs_edge {
            prop_assert!(graph.edge_count() > 0);
        }
        let stats = Runtime::new(2).run(graph);
        prop_assert_eq!(stats.tasks_executed, specs.len());
    }
}
