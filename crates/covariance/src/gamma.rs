//! Gamma function (Lanczos approximation).
//!
//! The Matérn normalization constant needs `Γ(ν)` and the Temme series for
//! `K_ν` needs `1/Γ(1 ± μ)`; this module is the workspace's substitute for
//! GSL's `gsl_sf_gamma` family.

/// Euler–Mascheroni constant γ.
pub const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

/// Lanczos coefficients for g = 7, n = 9.
const LANCZOS_G: f64 = 7.0;
// Literals kept exactly as published (Godfrey's g=7 table) for auditability.
#[allow(clippy::excessive_precision)]
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_93,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_13,
    -176.615_029_162_140_59,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_571_6e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of `|Γ(z)|` for `z > 0`.
///
/// Accurate to ~1e-13 relative over the range used here (`z ∈ (0, 200]`).
pub fn ln_gamma(z: f64) -> f64 {
    assert!(z > 0.0, "ln_gamma requires z > 0 (got {z})");
    if z < 0.5 {
        // Reflection: Γ(z)Γ(1−z) = π / sin(πz).
        let s = (std::f64::consts::PI * z).sin();
        return (std::f64::consts::PI / s).ln() - ln_gamma(1.0 - z);
    }
    let z = z - 1.0;
    let mut x = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        x += c / (z + i as f64);
    }
    let t = z + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (z + 0.5) * t.ln() - t + x.ln()
}

/// `Γ(z)` for `z > 0`.
pub fn gamma(z: f64) -> f64 {
    ln_gamma(z).exp()
}

/// `1/Γ(1 + mu)` for `|mu| ≤ 0.5` (no poles in this range).
pub fn recip_gamma_1p(mu: f64) -> f64 {
    debug_assert!(mu.abs() <= 0.5 + 1e-12);
    let z = 1.0 + mu;
    1.0 / gamma(z)
}

/// Temme's auxiliary pair for the Bessel-K series:
/// `Γ₁(μ) = [1/Γ(1−μ) − 1/Γ(1+μ)]/(2μ)` and
/// `Γ₂(μ) = [1/Γ(1−μ) + 1/Γ(1+μ)]/2`, for `|μ| ≤ 0.5`.
///
/// Returns `(gam1, gam2, 1/Γ(1+μ), 1/Γ(1−μ))`. The μ→0 limit of Γ₁ is −γ;
/// a Taylor branch avoids the cancellation for tiny μ.
pub fn temme_gammas(mu: f64) -> (f64, f64, f64, f64) {
    let gp = recip_gamma_1p(mu); // 1/Γ(1+μ)
    let gm = recip_gamma_1p(-mu); // 1/Γ(1−μ)
    let gam2 = 0.5 * (gm + gp);
    let gam1 = if mu.abs() < 1e-4 {
        // 1/Γ(1+z) = 1 + γz + c₂z² + c₃z³ + …, so Γ₁ = −γ − c₃μ² + O(μ⁴)
        // with c₃ = γ³/6 − γπ²/12 + ζ(3)/3.
        const ZETA3: f64 = 1.202_056_903_159_594_2;
        let c3 = EULER_GAMMA * EULER_GAMMA * EULER_GAMMA / 6.0
            - EULER_GAMMA * std::f64::consts::PI * std::f64::consts::PI / 12.0
            + ZETA3 / 3.0;
        -EULER_GAMMA - c3 * mu * mu
    } else {
        (gm - gp) / (2.0 * mu)
    };
    (gam1, gam2, gp, gm)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-14);
        assert!((gamma(2.0) - 1.0).abs() < 1e-14);
        assert!((gamma(5.0) - 24.0).abs() < 1e-12);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-13);
        // Γ(1.5) = √π/2.
        assert!((gamma(1.5) - std::f64::consts::PI.sqrt() / 2.0).abs() < 1e-13);
    }

    #[test]
    fn recurrence_gamma_z_plus_one() {
        for &z in &[0.1, 0.37, 0.9, 1.3, 2.7, 5.5, 10.2, 30.0] {
            let lhs = gamma(z + 1.0);
            let rhs = z * gamma(z);
            assert!(((lhs - rhs) / rhs).abs() < 1e-12, "z={z}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn ln_gamma_large_argument() {
        // Stirling check at z=100: ln Γ(100) = 359.1342053695754.
        assert!((ln_gamma(100.0) - 359.134_205_369_575_4).abs() < 1e-9);
    }

    #[test]
    fn reflection_small_z() {
        // Γ(0.25) = 3.6256099082219083.
        assert!((gamma(0.25) - 3.625_609_908_221_908).abs() < 1e-11);
    }

    #[test]
    fn temme_gamma_limits() {
        let (g1, g2, gp, gm) = temme_gammas(0.0);
        assert!((g1 + EULER_GAMMA).abs() < 1e-12);
        assert!((g2 - 1.0).abs() < 1e-12);
        assert!((gp - 1.0).abs() < 1e-12);
        assert!((gm - 1.0).abs() < 1e-12);
    }

    #[test]
    fn temme_gamma_consistency_across_branch() {
        // The Taylor branch (|μ|<1e-4) must agree with the direct formula.
        for &mu in &[5e-5, 9.9e-5] {
            let (g1_taylor, ..) = temme_gammas(mu);
            let gp = recip_gamma_1p(mu);
            let gm = recip_gamma_1p(-mu);
            let direct = (gm - gp) / (2.0 * mu);
            assert!(
                (g1_taylor - direct).abs() < 1e-9,
                "mu={mu}: {g1_taylor} vs {direct}"
            );
        }
    }

    #[test]
    fn temme_gamma_half() {
        // μ = 1/2: 1/Γ(3/2) = 2/√π, 1/Γ(1/2) = 1/√π.
        let (g1, g2, gp, gm) = temme_gammas(0.5);
        let rp = std::f64::consts::PI.sqrt();
        assert!((gp - 2.0 / rp).abs() < 1e-13);
        assert!((gm - 1.0 / rp).abs() < 1e-13);
        assert!((g1 - (gm - gp)).abs() < 1e-13); // /(2·0.5) = /1
        assert!((g2 - 0.5 * (gm + gp)).abs() < 1e-13);
    }

    #[test]
    #[should_panic(expected = "ln_gamma requires z > 0")]
    fn rejects_nonpositive() {
        ln_gamma(0.0);
    }
}
