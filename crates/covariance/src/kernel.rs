//! Covariance kernels: from locations to covariance matrix entries/tiles.
//!
//! The ExaGeoStat "matrix generation" codelet corresponds to
//! [`CovarianceKernel::fill_tile`]: given row/column location slices it fills
//! one dense tile of `Σ(θ)`, optionally adding a nugget on the true diagonal.
//! Both the dense and the TLR assembly paths consume this trait (the ACA
//! compressor samples individual entries through [`CovarianceKernel::entry`]).

use crate::distance::{DistanceMetric, Location};
use crate::matern::MaternParams;
use std::sync::Arc;

/// A positive-definite covariance model over a fixed set of locations.
pub trait CovarianceKernel: Sync {
    /// Number of locations (order of the full covariance matrix).
    fn len(&self) -> usize;

    /// True when the location set is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Covariance entry `Σ(i, j)` including any nugget on the diagonal.
    fn entry(&self, i: usize, j: usize) -> f64;

    /// Fills the dense `rows.len() × cols.len()` tile
    /// `Σ[row_off.., col_off..]` into `out` (column-major, leading dimension
    /// `ld`). `rows`/`cols` are the *global* index ranges of the tile.
    fn fill_tile(
        &self,
        row_off: usize,
        nrows: usize,
        col_off: usize,
        ncols: usize,
        out: &mut [f64],
        ld: usize,
    ) {
        debug_assert!(ld >= nrows);
        for j in 0..ncols {
            let col = &mut out[j * ld..j * ld + nrows];
            for (i, v) in col.iter_mut().enumerate() {
                *v = self.entry(row_off + i, col_off + j);
            }
        }
    }
}

/// A covariance *family*: the bridge between an optimizer's flat parameter
/// vector `θ` and a concrete [`CovarianceKernel`] instance over a location
/// set.
///
/// The MLE driver searches over `θ ∈ ℝ^p` while the linear-algebra layers
/// only ever see a [`CovarianceKernel`]; this trait supplies the two
/// directions of that correspondence (`params_vec` / `with_params_vec`) plus
/// the re-instantiation hooks the kriging pipeline needs (`with_locations`
/// for Σ₂₂ over the observed subset, `cross` for Σ₁₂ entries between
/// arbitrary location pairs).
///
/// # Contract
///
/// * Every parameter is **strictly positive**. The optimizer runs in
///   log-parameter space, so positivity must be structural: `with_params_vec`
///   is only ever called with `θᵢ > 0`, and [`ParamCovariance::default_bounds`]
///   must return positive, finite `lo < hi` per coordinate.
/// * `params_vec().len() == Self::param_names().len()` and
///   `with_params_vec(&k.params_vec())` reproduces `k` exactly.
/// * `with_params_vec` and `with_locations` preserve every other piece of
///   state (metric, nugget, and the location set / parameter vector
///   respectively). Location sets are shared via `Arc`, so both are cheap.
/// * `entry(i, i) == sill() + nugget()` for all `i`: the family is
///   stationary with marginal variance `sill()`, and the nugget lives only
///   on the true diagonal. `cross` never includes the nugget.
/// * For any finite location set and any valid `θ` the implied matrix
///   `Σ(θ)` is symmetric positive semi-definite (positive definite once a
///   positive nugget is added) — the property the Cholesky-based pipeline
///   relies on.
pub trait ParamCovariance: CovarianceKernel + Clone + Send + Sync + 'static {
    /// Family name as printed in reports (e.g. `"matern"`).
    const FAMILY: &'static str;

    /// Names of the free parameters, in vector order.
    fn param_names() -> &'static [&'static str];

    /// Number of free parameters `p`.
    fn n_params() -> usize {
        Self::param_names().len()
    }

    /// Builds a kernel over `locations` at parameter vector `theta`.
    ///
    /// Errors (rather than panicking) on a malformed `theta` — wrong length
    /// or out-of-domain values — so session builders can surface the
    /// problem.
    fn from_parts(
        locations: Arc<Vec<Location>>,
        theta: &[f64],
        metric: DistanceMetric,
        nugget: f64,
    ) -> Result<Self, String>;

    /// The current parameter vector `θ`.
    fn params_vec(&self) -> Vec<f64>;

    /// Same family, locations, metric and nugget at a new `θ` (called once
    /// per optimizer iteration; must be cheap — the location set is shared).
    ///
    /// # Panics
    /// May panic on out-of-domain `θ`; the optimizer only proposes points
    /// inside the (positive) box bounds.
    fn with_params_vec(&self, theta: &[f64]) -> Self;

    /// Same family, `θ`, metric and nugget over a different location set
    /// (used to restrict a model to the observed subset for Σ₂₂).
    fn with_locations(&self, locations: Arc<Vec<Location>>) -> Self;

    /// Generous default box bounds `(lo, hi)` in natural parameters.
    fn default_bounds() -> (Vec<f64>, Vec<f64>);

    /// Covariance between two arbitrary locations (no nugget) — the Σ₁₂
    /// cross-covariance entry of the kriging predictor.
    fn cross(&self, a: &Location, b: &Location) -> f64;

    /// Fills one cross-covariance row: `out[j] = cross(target, (xs[j],
    /// ys[j]))` against coordinate-split (structure-of-arrays) observed
    /// locations.
    ///
    /// This is the hot kernel of the batched prediction path
    /// (`FittedModel::predict_batch` coalesces queries into blocked fills of
    /// exactly this shape). The default walks [`ParamCovariance::cross`]
    /// entry by entry; families whose covariance reduces to
    /// elementary-function forms override it with branchless loops the
    /// compiler vectorizes (see [`crate::fastmath`]). Overrides may differ
    /// from the default by the vectorized exponential's ≤ ~3·10⁻¹³ relative
    /// error.
    fn fill_cross_row(&self, target: &Location, xs: &[f64], ys: &[f64], out: &mut [f64]) {
        fill_cross_row_generic(self, target, xs, ys, out);
    }

    /// The marginal (sill) variance: the diagonal of Σ without the nugget.
    fn sill(&self) -> f64;

    /// The distance metric.
    fn metric(&self) -> DistanceMetric;

    /// The diagonal regularization τ² ≥ 0.
    fn nugget(&self) -> f64;

    /// The shared location set.
    fn locations_arc(&self) -> &Arc<Vec<Location>>;
}

/// The entry-by-entry cross-covariance row fill every family can fall back
/// on (also the reference the vectorized overrides are tested against).
pub(crate) fn fill_cross_row_generic<K: ParamCovariance>(
    kernel: &K,
    target: &Location,
    xs: &[f64],
    ys: &[f64],
    out: &mut [f64],
) {
    assert_eq!(xs.len(), out.len(), "coordinate/output length mismatch");
    assert_eq!(ys.len(), out.len(), "coordinate/output length mismatch");
    for ((dst, &x), &y) in out.iter_mut().zip(xs).zip(ys) {
        *dst = kernel.cross(target, &Location::new(x, y));
    }
}

/// Shared `from_parts` validation: parameter arity and nugget domain, so
/// every family rejects malformed inputs identically.
pub(crate) fn check_family_inputs(
    family: &str,
    expected: usize,
    theta: &[f64],
    nugget: f64,
) -> Result<(), String> {
    if theta.len() != expected {
        return Err(format!(
            "{family} expects {expected} parameters, got {}",
            theta.len()
        ));
    }
    if !(nugget >= 0.0 && nugget.is_finite()) {
        return Err(format!("nugget must be non-negative, got {nugget}"));
    }
    Ok(())
}

/// Matérn covariance over an explicit location list.
#[derive(Clone, Debug)]
pub struct MaternKernel {
    locations: std::sync::Arc<Vec<Location>>,
    params: MaternParams,
    metric: DistanceMetric,
    /// Small diagonal regularization τ² ≥ 0 added at `i == j` (numerical
    /// stabilization; 0 reproduces the paper's exact model).
    nugget: f64,
}

impl MaternKernel {
    pub fn new(
        locations: std::sync::Arc<Vec<Location>>,
        params: MaternParams,
        metric: DistanceMetric,
        nugget: f64,
    ) -> Self {
        assert!(
            nugget >= 0.0 && nugget.is_finite(),
            "nugget must be non-negative and finite"
        );
        params.validate().expect("invalid Matérn parameters");
        MaternKernel {
            locations,
            params,
            metric,
            nugget,
        }
    }

    pub fn params(&self) -> MaternParams {
        self.params
    }

    pub fn metric(&self) -> DistanceMetric {
        self.metric
    }

    pub fn locations(&self) -> &[Location] {
        &self.locations
    }

    /// Same kernel with a different parameter vector (used per optimizer
    /// iteration; the location set is shared).
    pub fn with_params(&self, params: MaternParams) -> Self {
        MaternKernel {
            locations: self.locations.clone(),
            params,
            metric: self.metric,
            nugget: self.nugget,
        }
    }

    /// Cross-covariance entry between an arbitrary pair of locations (used by
    /// the prediction path to form Σ₁₂ between unobserved and observed sets).
    pub fn cross(&self, a: &Location, b: &Location) -> f64 {
        self.params.covariance(self.metric.distance(a, b))
    }
}

impl CovarianceKernel for MaternKernel {
    fn len(&self) -> usize {
        self.locations.len()
    }

    fn entry(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return self.params.variance + self.nugget;
        }
        let r = self.metric.distance(&self.locations[i], &self.locations[j]);
        self.params.covariance(r)
    }
}

impl ParamCovariance for MaternKernel {
    const FAMILY: &'static str = "matern";

    fn param_names() -> &'static [&'static str] {
        &["variance", "range", "smoothness"]
    }

    fn from_parts(
        locations: Arc<Vec<Location>>,
        theta: &[f64],
        metric: DistanceMetric,
        nugget: f64,
    ) -> Result<Self, String> {
        check_family_inputs(Self::FAMILY, 3, theta, nugget)?;
        let params = MaternParams {
            variance: theta[0],
            range: theta[1],
            smoothness: theta[2],
        };
        params.validate()?;
        Ok(MaternKernel {
            locations,
            params,
            metric,
            nugget,
        })
    }

    fn params_vec(&self) -> Vec<f64> {
        self.params.to_array().to_vec()
    }

    fn with_params_vec(&self, theta: &[f64]) -> Self {
        assert_eq!(theta.len(), 3, "matern expects 3 parameters");
        self.with_params(MaternParams::new(theta[0], theta[1], theta[2]))
    }

    fn with_locations(&self, locations: Arc<Vec<Location>>) -> Self {
        MaternKernel {
            locations,
            params: self.params,
            metric: self.metric,
            nugget: self.nugget,
        }
    }

    fn default_bounds() -> (Vec<f64>, Vec<f64>) {
        // The MLE driver's historical defaults: variance and range over four
        // decades, smoothness in [0.1, 3] (θ₃ "rarely above 1–2", §IV).
        (vec![0.01, 0.001, 0.1], vec![100.0, 100.0, 3.0])
    }

    fn cross(&self, a: &Location, b: &Location) -> f64 {
        self.params.covariance(self.metric.distance(a, b))
    }

    fn fill_cross_row(&self, target: &Location, xs: &[f64], ys: &[f64], out: &mut [f64]) {
        // Vectorized fast path for the half-integer smoothness values that
        // dominate the paper's experiments: C = σ·poly(x)·e⁻ˣ, x = r/β.
        let nu = self.params.smoothness;
        if self.metric != DistanceMetric::Euclidean || !(nu == 0.5 || nu == 1.5 || nu == 2.5) {
            return fill_cross_row_generic(self, target, xs, ys, out);
        }
        assert_eq!(xs.len(), out.len(), "coordinate/output length mismatch");
        assert_eq!(ys.len(), out.len(), "coordinate/output length mismatch");
        let (tx, ty) = (target.x, target.y);
        let inv_range = 1.0 / self.params.range;
        let sigma = self.params.variance;
        // Pass 1: scaled distances (sub/mul/sqrt — vectorizes on baseline
        // x86-64). Kept separate from the exponential pass so neither loop
        // carries a dependency that would block SIMD.
        for ((dst, &ox), &oy) in out.iter_mut().zip(xs).zip(ys) {
            let dx = tx - ox;
            let dy = ty - oy;
            *dst = (dx * dx + dy * dy).sqrt() * inv_range;
        }
        // Pass 2: the smoothness-specific closed form, selected once per row.
        if nu == 0.5 {
            for v in out.iter_mut() {
                *v = sigma * crate::fastmath::exp_neg(-*v);
            }
        } else if nu == 1.5 {
            for v in out.iter_mut() {
                let x = *v;
                *v = sigma * (1.0 + x) * crate::fastmath::exp_neg(-x);
            }
        } else {
            for v in out.iter_mut() {
                let x = *v;
                *v = sigma * (1.0 + x + x * x * (1.0 / 3.0)) * crate::fastmath::exp_neg(-x);
            }
        }
    }

    fn sill(&self) -> f64 {
        self.params.variance
    }

    fn metric(&self) -> DistanceMetric {
        self.metric
    }

    fn nugget(&self) -> f64 {
        self.nugget
    }

    fn locations_arc(&self) -> &Arc<Vec<Location>> {
        &self.locations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn grid_kernel(n_side: usize) -> MaternKernel {
        let mut locs = Vec::new();
        for i in 0..n_side {
            for j in 0..n_side {
                locs.push(Location::new(
                    i as f64 / n_side as f64,
                    j as f64 / n_side as f64,
                ));
            }
        }
        MaternKernel::new(
            Arc::new(locs),
            MaternParams::new(1.0, 0.1, 0.5),
            DistanceMetric::Euclidean,
            0.0,
        )
    }

    #[test]
    fn diagonal_is_variance_plus_nugget() {
        let k = grid_kernel(3);
        assert_eq!(k.entry(4, 4), 1.0);
        let locs = Arc::new(vec![Location::new(0.0, 0.0), Location::new(1.0, 1.0)]);
        let kn = MaternKernel::new(
            locs,
            MaternParams::new(2.0, 0.1, 0.5),
            DistanceMetric::Euclidean,
            0.25,
        );
        assert_eq!(kn.entry(0, 0), 2.25);
        assert!(kn.entry(0, 1) < 2.0);
    }

    #[test]
    fn symmetry() {
        let k = grid_kernel(4);
        for i in 0..16 {
            for j in 0..16 {
                assert_eq!(k.entry(i, j), k.entry(j, i));
            }
        }
    }

    #[test]
    fn fill_tile_matches_entries_with_ld() {
        let k = grid_kernel(4);
        let (nr, nc, ld) = (5usize, 3usize, 7usize);
        let mut buf = vec![f64::NAN; ld * nc];
        k.fill_tile(2, nr, 9, nc, &mut buf, ld);
        for j in 0..nc {
            for i in 0..nr {
                assert_eq!(buf[i + j * ld], k.entry(2 + i, 9 + j));
            }
        }
    }

    #[test]
    fn diagonal_tile_contains_global_diagonal() {
        let k = grid_kernel(4);
        let nb = 4;
        let mut buf = vec![0.0; nb * nb];
        k.fill_tile(4, nb, 4, nb, &mut buf, nb);
        for i in 0..nb {
            assert_eq!(buf[i + i * nb], 1.0);
        }
    }

    #[test]
    fn with_params_shares_locations() {
        let k = grid_kernel(3);
        let k2 = k.with_params(MaternParams::new(2.0, 0.2, 1.5));
        assert_eq!(k2.len(), k.len());
        assert_eq!(k2.entry(0, 0), 2.0);
        assert_eq!(k.entry(0, 0), 1.0); // original untouched
    }

    #[test]
    fn fill_cross_row_matches_cross_for_every_smoothness() {
        // The vectorized half-integer paths and the generic fallback must
        // agree with entry-wise `cross` (fast exp: ≤ ~3e-13 relative).
        let locs: Vec<Location> = (0..37)
            .map(|i| Location::new((i as f64 * 0.27) % 1.0, (i as f64 * 0.61) % 1.0))
            .collect();
        let xs: Vec<f64> = locs.iter().map(|l| l.x).collect();
        let ys: Vec<f64> = locs.iter().map(|l| l.y).collect();
        let target = Location::new(0.41, 0.73);
        for (metric, nu) in [
            (DistanceMetric::Euclidean, 0.5),
            (DistanceMetric::Euclidean, 1.5),
            (DistanceMetric::Euclidean, 2.5),
            (DistanceMetric::Euclidean, 0.8), // generic fallback (Bessel)
            (DistanceMetric::GreatCircleKm, 0.5), // generic fallback (metric)
        ] {
            let k = MaternKernel::new(
                Arc::new(locs.clone()),
                MaternParams::new(1.3, 0.1, nu),
                metric,
                0.0,
            );
            let mut row = vec![f64::NAN; locs.len()];
            k.fill_cross_row(&target, &xs, &ys, &mut row);
            for (got, loc) in row.iter().zip(&locs) {
                let want = k.cross(&target, loc);
                assert!(
                    (got - want).abs() <= 1e-12 * want.abs().max(1e-300),
                    "nu={nu} {metric:?}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn fill_cross_row_hits_the_sill_at_zero_distance() {
        let locs = vec![Location::new(0.3, 0.3), Location::new(0.9, 0.1)];
        let k = MaternKernel::new(
            Arc::new(locs.clone()),
            MaternParams::new(2.0, 0.1, 0.5),
            DistanceMetric::Euclidean,
            0.5, // nugget must NOT appear in cross rows
        );
        let mut row = [0.0; 2];
        k.fill_cross_row(
            &locs[0],
            &[locs[0].x, locs[1].x],
            &[locs[0].y, locs[1].y],
            &mut row,
        );
        assert_eq!(row[0], 2.0, "coincident site gets the sill, no nugget");
        assert!(row[1] < 2.0);
    }

    #[test]
    fn decay_with_distance() {
        let k = grid_kernel(5);
        // Entry to the nearest neighbour exceeds entry to a far point.
        let near = k.entry(0, 1);
        let far = k.entry(0, 24);
        assert!(near > far);
        assert!(far > 0.0);
    }
}
