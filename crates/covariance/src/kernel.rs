//! Covariance kernels: from locations to covariance matrix entries/tiles.
//!
//! The ExaGeoStat "matrix generation" codelet corresponds to
//! [`CovarianceKernel::fill_tile`]: given row/column location slices it fills
//! one dense tile of `Σ(θ)`, optionally adding a nugget on the true diagonal.
//! Both the dense and the TLR assembly paths consume this trait (the ACA
//! compressor samples individual entries through [`CovarianceKernel::entry`]).

use crate::distance::{DistanceMetric, Location};
use crate::matern::MaternParams;

/// A positive-definite covariance model over a fixed set of locations.
pub trait CovarianceKernel: Sync {
    /// Number of locations (order of the full covariance matrix).
    fn len(&self) -> usize;

    /// True when the location set is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Covariance entry `Σ(i, j)` including any nugget on the diagonal.
    fn entry(&self, i: usize, j: usize) -> f64;

    /// Fills the dense `rows.len() × cols.len()` tile
    /// `Σ[row_off.., col_off..]` into `out` (column-major, leading dimension
    /// `ld`). `rows`/`cols` are the *global* index ranges of the tile.
    fn fill_tile(
        &self,
        row_off: usize,
        nrows: usize,
        col_off: usize,
        ncols: usize,
        out: &mut [f64],
        ld: usize,
    ) {
        debug_assert!(ld >= nrows);
        for j in 0..ncols {
            let col = &mut out[j * ld..j * ld + nrows];
            for (i, v) in col.iter_mut().enumerate() {
                *v = self.entry(row_off + i, col_off + j);
            }
        }
    }
}

/// Matérn covariance over an explicit location list.
#[derive(Clone, Debug)]
pub struct MaternKernel {
    locations: std::sync::Arc<Vec<Location>>,
    params: MaternParams,
    metric: DistanceMetric,
    /// Small diagonal regularization τ² ≥ 0 added at `i == j` (numerical
    /// stabilization; 0 reproduces the paper's exact model).
    nugget: f64,
}

impl MaternKernel {
    pub fn new(
        locations: std::sync::Arc<Vec<Location>>,
        params: MaternParams,
        metric: DistanceMetric,
        nugget: f64,
    ) -> Self {
        assert!(nugget >= 0.0, "nugget must be non-negative");
        params.validate().expect("invalid Matérn parameters");
        MaternKernel {
            locations,
            params,
            metric,
            nugget,
        }
    }

    pub fn params(&self) -> MaternParams {
        self.params
    }

    pub fn metric(&self) -> DistanceMetric {
        self.metric
    }

    pub fn locations(&self) -> &[Location] {
        &self.locations
    }

    /// Same kernel with a different parameter vector (used per optimizer
    /// iteration; the location set is shared).
    pub fn with_params(&self, params: MaternParams) -> Self {
        MaternKernel {
            locations: self.locations.clone(),
            params,
            metric: self.metric,
            nugget: self.nugget,
        }
    }

    /// Cross-covariance entry between an arbitrary pair of locations (used by
    /// the prediction path to form Σ₁₂ between unobserved and observed sets).
    pub fn cross(&self, a: &Location, b: &Location) -> f64 {
        self.params.covariance(self.metric.distance(a, b))
    }
}

impl CovarianceKernel for MaternKernel {
    fn len(&self) -> usize {
        self.locations.len()
    }

    fn entry(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return self.params.variance + self.nugget;
        }
        let r = self.metric.distance(&self.locations[i], &self.locations[j]);
        self.params.covariance(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn grid_kernel(n_side: usize) -> MaternKernel {
        let mut locs = Vec::new();
        for i in 0..n_side {
            for j in 0..n_side {
                locs.push(Location::new(
                    i as f64 / n_side as f64,
                    j as f64 / n_side as f64,
                ));
            }
        }
        MaternKernel::new(
            Arc::new(locs),
            MaternParams::new(1.0, 0.1, 0.5),
            DistanceMetric::Euclidean,
            0.0,
        )
    }

    #[test]
    fn diagonal_is_variance_plus_nugget() {
        let k = grid_kernel(3);
        assert_eq!(k.entry(4, 4), 1.0);
        let locs = Arc::new(vec![Location::new(0.0, 0.0), Location::new(1.0, 1.0)]);
        let kn = MaternKernel::new(
            locs,
            MaternParams::new(2.0, 0.1, 0.5),
            DistanceMetric::Euclidean,
            0.25,
        );
        assert_eq!(kn.entry(0, 0), 2.25);
        assert!(kn.entry(0, 1) < 2.0);
    }

    #[test]
    fn symmetry() {
        let k = grid_kernel(4);
        for i in 0..16 {
            for j in 0..16 {
                assert_eq!(k.entry(i, j), k.entry(j, i));
            }
        }
    }

    #[test]
    fn fill_tile_matches_entries_with_ld() {
        let k = grid_kernel(4);
        let (nr, nc, ld) = (5usize, 3usize, 7usize);
        let mut buf = vec![f64::NAN; ld * nc];
        k.fill_tile(2, nr, 9, nc, &mut buf, ld);
        for j in 0..nc {
            for i in 0..nr {
                assert_eq!(buf[i + j * ld], k.entry(2 + i, 9 + j));
            }
        }
    }

    #[test]
    fn diagonal_tile_contains_global_diagonal() {
        let k = grid_kernel(4);
        let nb = 4;
        let mut buf = vec![0.0; nb * nb];
        k.fill_tile(4, nb, 4, nb, &mut buf, nb);
        for i in 0..nb {
            assert_eq!(buf[i + i * nb], 1.0);
        }
    }

    #[test]
    fn with_params_shares_locations() {
        let k = grid_kernel(3);
        let k2 = k.with_params(MaternParams::new(2.0, 0.2, 1.5));
        assert_eq!(k2.len(), k.len());
        assert_eq!(k2.entry(0, 0), 2.0);
        assert_eq!(k.entry(0, 0), 1.0); // original untouched
    }

    #[test]
    fn decay_with_distance() {
        let k = grid_kernel(5);
        // Entry to the nearest neighbour exceeds entry to a far point.
        let near = k.entry(0, 1);
        let far = k.entry(0, 24);
        assert!(near > far);
        assert!(far > 0.0);
    }
}
