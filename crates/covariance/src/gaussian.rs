//! The Gaussian (squared-exponential) covariance family.
//!
//! `C(r; θ) = θ₁ · exp(−(r/θ₂)²)`
//!
//! with variance `θ₁ > 0` and spatial range `θ₂ > 0` — the `θ₃ → ∞` limit of
//! the Matérn family (infinitely differentiable sample paths). Only two free
//! parameters, which exercises the kernel-generic pipeline at a parameter
//! count different from Matérn's three.
//!
//! Gaussian covariance matrices are famously ill-conditioned on dense
//! location sets (eigenvalues decay super-exponentially); fits and
//! factorizations should carry a small positive nugget, as the builder-level
//! default does.

use crate::distance::{DistanceMetric, Location};
use crate::kernel::{check_family_inputs, CovarianceKernel, ParamCovariance};
use std::sync::Arc;

/// Parameter vector `θ = (θ₁, θ₂)` of the Gaussian family.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GaussianParams {
    /// Variance θ₁ (> 0).
    pub variance: f64,
    /// Spatial range θ₂ (> 0).
    pub range: f64,
}

impl GaussianParams {
    pub fn new(variance: f64, range: f64) -> Self {
        let p = GaussianParams { variance, range };
        p.validate().expect("invalid Gaussian parameters");
        p
    }

    /// Checks positivity of both parameters.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.variance > 0.0 && self.variance.is_finite()) {
            return Err(format!("variance must be positive, got {}", self.variance));
        }
        if !(self.range > 0.0 && self.range.is_finite()) {
            return Err(format!("range must be positive, got {}", self.range));
        }
        Ok(())
    }

    /// Covariance at distance `r ≥ 0`.
    pub fn covariance(&self, r: f64) -> f64 {
        debug_assert!(r >= 0.0, "distance must be non-negative");
        let x = r / self.range;
        self.variance * (-x * x).exp()
    }
}

/// Gaussian covariance over an explicit location list.
#[derive(Clone, Debug)]
pub struct GaussianKernel {
    locations: Arc<Vec<Location>>,
    params: GaussianParams,
    metric: DistanceMetric,
    nugget: f64,
}

impl GaussianKernel {
    pub fn new(
        locations: Arc<Vec<Location>>,
        params: GaussianParams,
        metric: DistanceMetric,
        nugget: f64,
    ) -> Self {
        assert!(
            nugget >= 0.0 && nugget.is_finite(),
            "nugget must be non-negative and finite"
        );
        params.validate().expect("invalid Gaussian parameters");
        GaussianKernel {
            locations,
            params,
            metric,
            nugget,
        }
    }

    pub fn params(&self) -> GaussianParams {
        self.params
    }
}

impl CovarianceKernel for GaussianKernel {
    fn len(&self) -> usize {
        self.locations.len()
    }

    fn entry(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return self.params.variance + self.nugget;
        }
        let r = self.metric.distance(&self.locations[i], &self.locations[j]);
        self.params.covariance(r)
    }
}

impl ParamCovariance for GaussianKernel {
    const FAMILY: &'static str = "gaussian";

    fn param_names() -> &'static [&'static str] {
        &["variance", "range"]
    }

    fn from_parts(
        locations: Arc<Vec<Location>>,
        theta: &[f64],
        metric: DistanceMetric,
        nugget: f64,
    ) -> Result<Self, String> {
        check_family_inputs(Self::FAMILY, 2, theta, nugget)?;
        let params = GaussianParams {
            variance: theta[0],
            range: theta[1],
        };
        params.validate()?;
        Ok(GaussianKernel {
            locations,
            params,
            metric,
            nugget,
        })
    }

    fn params_vec(&self) -> Vec<f64> {
        vec![self.params.variance, self.params.range]
    }

    fn with_params_vec(&self, theta: &[f64]) -> Self {
        assert_eq!(theta.len(), 2, "gaussian expects 2 parameters");
        GaussianKernel {
            locations: self.locations.clone(),
            params: GaussianParams::new(theta[0], theta[1]),
            metric: self.metric,
            nugget: self.nugget,
        }
    }

    fn with_locations(&self, locations: Arc<Vec<Location>>) -> Self {
        GaussianKernel {
            locations,
            params: self.params,
            metric: self.metric,
            nugget: self.nugget,
        }
    }

    fn default_bounds() -> (Vec<f64>, Vec<f64>) {
        (vec![0.01, 0.001], vec![100.0, 100.0])
    }

    fn cross(&self, a: &Location, b: &Location) -> f64 {
        self.params.covariance(self.metric.distance(a, b))
    }

    fn fill_cross_row(&self, target: &Location, xs: &[f64], ys: &[f64], out: &mut [f64]) {
        // Vectorized fast path: C = σ·e^{−(r/β)²} needs no square root at
        // all — the squared distance feeds the exponential directly.
        if self.metric != DistanceMetric::Euclidean {
            return crate::kernel::fill_cross_row_generic(self, target, xs, ys, out);
        }
        assert_eq!(xs.len(), out.len(), "coordinate/output length mismatch");
        assert_eq!(ys.len(), out.len(), "coordinate/output length mismatch");
        let (tx, ty) = (target.x, target.y);
        let inv_range2 = 1.0 / (self.params.range * self.params.range);
        for ((dst, &ox), &oy) in out.iter_mut().zip(xs).zip(ys) {
            let dx = tx - ox;
            let dy = ty - oy;
            *dst = -(dx * dx + dy * dy) * inv_range2;
        }
        let sigma = self.params.variance;
        for v in out.iter_mut() {
            *v = sigma * crate::fastmath::exp_neg(*v);
        }
    }

    fn sill(&self) -> f64 {
        self.params.variance
    }

    fn metric(&self) -> DistanceMetric {
        self.metric
    }

    fn nugget(&self) -> f64 {
        self.nugget
    }

    fn locations_arc(&self) -> &Arc<Vec<Location>> {
        &self.locations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::powexp::PoweredExponentialParams;

    #[test]
    fn matches_powered_exponential_at_power_two() {
        let g = GaussianParams::new(1.7, 0.25);
        let pe = PoweredExponentialParams::new(1.7, 0.25, 2.0);
        for &r in &[0.0, 0.05, 0.2, 0.8, 2.0] {
            assert!((g.covariance(r) - pe.covariance(r)).abs() < 1e-14);
        }
    }

    #[test]
    fn fill_cross_row_matches_cross() {
        let locs: Vec<Location> = (0..29)
            .map(|i| Location::new((i as f64 * 0.37) % 1.0, (i as f64 * 0.53) % 1.0))
            .collect();
        let xs: Vec<f64> = locs.iter().map(|l| l.x).collect();
        let ys: Vec<f64> = locs.iter().map(|l| l.y).collect();
        let target = Location::new(0.2, 0.6);
        let k = GaussianKernel::new(
            Arc::new(locs.clone()),
            GaussianParams::new(0.9, 0.15),
            DistanceMetric::Euclidean,
            1e-8,
        );
        let mut row = vec![0.0; locs.len()];
        k.fill_cross_row(&target, &xs, &ys, &mut row);
        for (got, loc) in row.iter().zip(&locs) {
            let want = k.cross(&target, loc);
            assert!(
                (got - want).abs() <= 1e-12 * want.abs().max(1e-300),
                "{got} vs {want}"
            );
        }
    }

    #[test]
    fn smoother_than_exponential_near_origin() {
        let g = GaussianParams::new(1.0, 0.1);
        // Quadratic decay at the origin: 1 − C(r)/θ₁ = O(r²).
        let deficit = 1.0 - g.covariance(0.001);
        assert!(deficit < 1e-3, "deficit {deficit}");
        // And effectively zero correlation far beyond the range.
        assert!(g.covariance(1.0) < 1e-30);
    }

    #[test]
    fn two_parameter_trait_surface() {
        let locs = Arc::new(vec![Location::new(0.0, 0.0), Location::new(1.0, 0.0)]);
        let k = GaussianKernel::new(
            locs.clone(),
            GaussianParams::new(2.0, 0.5),
            DistanceMetric::Euclidean,
            0.5,
        );
        assert_eq!(GaussianKernel::n_params(), 2);
        assert_eq!(k.params_vec(), vec![2.0, 0.5]);
        assert_eq!(k.entry(1, 1), 2.5);
        let k2 = k.with_params_vec(&[1.0, 0.1]);
        assert_eq!(k2.params_vec(), vec![1.0, 0.1]);
        assert_eq!(
            k2.nugget(),
            0.5,
            "nugget preserved across reparameterization"
        );
        let moved = k.with_locations(Arc::new(vec![Location::new(3.0, 3.0)]));
        assert_eq!(moved.len(), 1);
        assert_eq!(moved.params_vec(), vec![2.0, 0.5]);
    }

    #[test]
    fn from_parts_rejects_wrong_arity() {
        let locs = Arc::new(vec![Location::new(0.0, 0.0)]);
        assert!(
            GaussianKernel::from_parts(locs, &[1.0, 0.1, 0.5], DistanceMetric::Euclidean, 0.0)
                .is_err()
        );
    }
}
