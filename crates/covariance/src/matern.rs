//! The Matérn covariance family (paper Eq. 5).
//!
//! `C(r; θ) = θ₁ · 2^{1−θ₃}/Γ(θ₃) · (r/θ₂)^{θ₃} · K_{θ₃}(r/θ₂)`
//!
//! with variance `θ₁ > 0`, spatial range `θ₂ > 0` and smoothness `θ₃ > 0`.
//! Special cases used throughout the paper: `θ₃ = 1/2` (exponential, rough
//! field), `θ₃ = 1` (Whittle, smooth field); `θ₃ → ∞` is the Gaussian kernel.

use crate::bessel::bessel_k_scaled;
use crate::gamma::ln_gamma;

/// Parameter vector `θ = (θ₁, θ₂, θ₃)` of the Matérn family.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MaternParams {
    /// Variance θ₁ (> 0).
    pub variance: f64,
    /// Spatial range θ₂ (> 0); the paper uses 0.03 / 0.1 / 0.3 on the unit
    /// square for weak / medium / strong correlation.
    pub range: f64,
    /// Smoothness θ₃ (> 0); 0.5 = rough, 1 = smooth; rarely above 2 in
    /// geophysical applications.
    pub smoothness: f64,
}

impl MaternParams {
    pub fn new(variance: f64, range: f64, smoothness: f64) -> Self {
        let p = MaternParams {
            variance,
            range,
            smoothness,
        };
        p.validate().expect("invalid Matérn parameters");
        p
    }

    /// Checks positivity of all three parameters.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.variance > 0.0 && self.variance.is_finite()) {
            return Err(format!("variance must be positive, got {}", self.variance));
        }
        if !(self.range > 0.0 && self.range.is_finite()) {
            return Err(format!("range must be positive, got {}", self.range));
        }
        if !(self.smoothness > 0.0 && self.smoothness.is_finite()) {
            return Err(format!(
                "smoothness must be positive, got {}",
                self.smoothness
            ));
        }
        Ok(())
    }

    /// As a `[θ₁, θ₂, θ₃]` array (the optimizer's parameter vector layout).
    pub fn to_array(&self) -> [f64; 3] {
        [self.variance, self.range, self.smoothness]
    }

    /// From a `[θ₁, θ₂, θ₃]` array.
    pub fn from_array(theta: [f64; 3]) -> Self {
        MaternParams {
            variance: theta[0],
            range: theta[1],
            smoothness: theta[2],
        }
    }

    /// Covariance at distance `r ≥ 0`.
    ///
    /// Evaluated in log space through the *scaled* Bessel function so large
    /// `r/θ₂` underflows gracefully to 0 instead of producing `0 · ∞`.
    pub fn covariance(&self, r: f64) -> f64 {
        debug_assert!(r >= 0.0, "distance must be non-negative");
        if r == 0.0 {
            return self.variance;
        }
        let nu = self.smoothness;
        let x = r / self.range;
        // Fast paths for the half-integer smoothness values that dominate the
        // paper's experiments (θ₃ = 0.5 everywhere in the synthetic study).
        if nu == 0.5 {
            return self.variance * (-x).exp();
        }
        if nu == 1.5 {
            return self.variance * (1.0 + x) * (-x).exp();
        }
        if nu == 2.5 {
            return self.variance * (1.0 + x + x * x / 3.0) * (-x).exp();
        }
        // General order: ln C = ln θ₁ + (1−ν)ln2 − lnΓ(ν) + ν ln x − x
        //                + ln(eˣ K_ν(x)).
        let ks = bessel_k_scaled(nu, x);
        if ks <= 0.0 {
            return 0.0;
        }
        let ln_c = self.variance.ln() + (1.0 - nu) * std::f64::consts::LN_2 - ln_gamma(nu)
            + nu * x.ln()
            - x
            + ks.ln();
        if ln_c < -745.0 {
            0.0
        } else {
            ln_c.exp()
        }
    }

    /// Correlation at distance `r` (covariance normalized by θ₁).
    pub fn correlation(&self, r: f64) -> f64 {
        self.covariance(r) / self.variance
    }

    /// Effective range: the distance at which correlation drops to 0.05.
    /// Solved by bisection; useful for reporting and for tile-rank models.
    pub fn effective_range(&self) -> f64 {
        let target = 0.05;
        let mut lo = 0.0f64;
        let mut hi = self.range;
        while self.correlation(hi) > target {
            hi *= 2.0;
            if hi > 1e12 {
                return f64::INFINITY;
            }
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.correlation(mid) > target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bessel::bessel_k;
    use crate::gamma::gamma;

    #[test]
    fn zero_distance_gives_variance() {
        let p = MaternParams::new(2.5, 0.1, 0.5);
        assert_eq!(p.covariance(0.0), 2.5);
        assert_eq!(p.correlation(0.0), 1.0);
    }

    #[test]
    fn exponential_special_case() {
        let p = MaternParams::new(1.0, 0.3, 0.5);
        for &r in &[0.01, 0.1, 0.5, 2.0] {
            let want = (-r / 0.3f64).exp();
            assert!(((p.covariance(r) - want) / want).abs() < 1e-14);
        }
    }

    #[test]
    fn whittle_special_case_matches_direct_formula() {
        // θ₃ = 1: C = θ₁ (r/θ₂) K₁(r/θ₂).
        let p = MaternParams::new(1.0, 0.2, 1.0);
        for &r in &[0.05, 0.2, 0.7] {
            let x = r / 0.2;
            let want = x * bessel_k(1.0, x);
            let got = p.covariance(r);
            assert!(
                ((got - want) / want).abs() < 1e-12,
                "r={r}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn general_path_agrees_with_half_integer_shortcuts() {
        // Evaluate ν=0.5 and ν=1.5 through the generic Bessel path by nudging
        // the order, and compare with the closed forms.
        for &(nu, range) in &[(0.5f64, 0.1f64), (1.5, 0.3)] {
            let exact = MaternParams::new(1.0, range, nu);
            let generic = MaternParams::new(1.0, range, nu + 1e-9);
            for &r in &[0.02, 0.1, 0.4, 1.0] {
                let a = exact.covariance(r);
                let b = generic.covariance(r);
                assert!(
                    ((a - b) / a).abs() < 1e-6,
                    "nu={nu} r={r}: exact={a} generic={b}"
                );
            }
        }
    }

    #[test]
    fn matern_formula_explicit() {
        // Direct check of Eq. 5 for a generic order.
        let (t1, t2, t3) = (1.7, 0.25, 0.8);
        let p = MaternParams::new(t1, t2, t3);
        let r = 0.33;
        let x = r / t2;
        let want = t1 * (2.0f64).powf(1.0 - t3) / gamma(t3) * x.powf(t3) * bessel_k(t3, x);
        let got = p.covariance(r);
        assert!(((got - want) / want).abs() < 1e-12, "{got} vs {want}");
    }

    #[test]
    fn monotone_decreasing_and_positive() {
        for &nu in &[0.5, 0.8, 1.0, 1.4, 2.5] {
            let p = MaternParams::new(1.0, 0.1, nu);
            let mut prev = p.covariance(0.0);
            for i in 1..60 {
                let r = i as f64 * 0.02;
                let c = p.covariance(r);
                assert!(c >= 0.0);
                assert!(c <= prev + 1e-15, "nu={nu} r={r}");
                prev = c;
            }
        }
    }

    #[test]
    fn larger_smoothness_means_flatter_origin() {
        // Near r=0, correlation decays more slowly for smoother fields.
        let rough = MaternParams::new(1.0, 0.1, 0.5);
        let smooth = MaternParams::new(1.0, 0.1, 2.0);
        let r = 0.01;
        assert!(smooth.correlation(r) > rough.correlation(r));
    }

    #[test]
    fn no_underflow_panic_at_huge_distance() {
        let p = MaternParams::new(1.0, 0.03, 0.73);
        let c = p.covariance(1e6);
        assert_eq!(c, 0.0);
    }

    #[test]
    fn effective_range_scales_with_theta2() {
        let a = MaternParams::new(1.0, 0.1, 0.5).effective_range();
        let b = MaternParams::new(1.0, 0.2, 0.5).effective_range();
        assert!((b / a - 2.0).abs() < 1e-6);
        // Exponential: correlation = 0.05 at x = ln(20) ≈ 3: r = 0.1·3.
        assert!((a - 0.1 * (20.0f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn to_from_array_roundtrip() {
        let p = MaternParams::new(1.2, 0.07, 0.9);
        assert_eq!(MaternParams::from_array(p.to_array()), p);
    }

    #[test]
    #[should_panic(expected = "invalid Matérn parameters")]
    fn rejects_nonpositive_range() {
        MaternParams::new(1.0, 0.0, 0.5);
    }
}
