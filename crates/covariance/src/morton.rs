//! Morton (z-order) spatial sorting of location sets.
//!
//! Tile low-rank compression only pays off when index-contiguous blocks of
//! the covariance matrix correspond to spatially coherent clusters: the rank
//! of tile `(i, j)` is governed by the separation of the point clusters
//! backing block-rows `i` and `j`. ExaGeoStat therefore re-orders every
//! location set along a Morton space-filling curve before assembling `Σ(θ)`;
//! this module rebuilds that preprocessing step.

use crate::distance::Location;

/// Number of bits per coordinate in the Morton key (32 ⇒ 64-bit keys).
const KEY_BITS: u32 = 32;

/// Interleaves the lower 32 bits of `x` with zeros (Morton spreading).
#[inline]
fn spread(x: u64) -> u64 {
    let mut x = x & 0xFFFF_FFFF;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Morton key of a point already normalized to the unit square.
#[inline]
pub fn morton_key_unit(x: f64, y: f64) -> u64 {
    let scale = (1u64 << KEY_BITS) as f64;
    let qx = ((x * scale) as u64).min((1 << KEY_BITS) - 1);
    let qy = ((y * scale) as u64).min((1 << KEY_BITS) - 1);
    spread(qx) | (spread(qy) << 1)
}

/// Sorts locations in Morton (z-curve) order over their bounding box.
///
/// Returns the permutation applied: `perm[new_index] = old_index`, so callers
/// can reorder co-indexed data (measurements) consistently.
pub fn sort_morton(locs: &mut [Location]) -> Vec<usize> {
    let n = locs.len();
    if n <= 1 {
        return (0..n).collect();
    }
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for l in locs.iter() {
        min_x = min_x.min(l.x);
        max_x = max_x.max(l.x);
        min_y = min_y.min(l.y);
        max_y = max_y.max(l.y);
    }
    let span_x = (max_x - min_x).max(f64::MIN_POSITIVE);
    let span_y = (max_y - min_y).max(f64::MIN_POSITIVE);
    let mut keyed: Vec<(u64, usize)> = locs
        .iter()
        .enumerate()
        .map(|(idx, l)| {
            let key = morton_key_unit((l.x - min_x) / span_x, (l.y - min_y) / span_y);
            (key, idx)
        })
        .collect();
    // Stable sort keeps duplicate-key points in input order (determinism).
    keyed.sort_by_key(|&(key, _)| key);
    let perm: Vec<usize> = keyed.iter().map(|&(_, idx)| idx).collect();
    let reordered: Vec<Location> = perm.iter().map(|&idx| locs[idx]).collect();
    locs.copy_from_slice(&reordered);
    perm
}

/// Applies the permutation returned by [`sort_morton`] to co-indexed data
/// (`out[new] = data[perm[new]]`).
pub fn apply_permutation<T: Copy>(data: &[T], perm: &[usize]) -> Vec<T> {
    assert_eq!(data.len(), perm.len(), "permutation length mismatch");
    perm.iter().map(|&idx| data[idx]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_interleaves_bits() {
        assert_eq!(spread(0b11), 0b101);
        assert_eq!(spread(0b1011), 0b1000101);
    }

    #[test]
    fn key_orders_quadrants() {
        // Z-curve visits (lo,lo), (hi,lo), (lo,hi), (hi,hi).
        let ll = morton_key_unit(0.1, 0.1);
        let hl = morton_key_unit(0.9, 0.1);
        let lh = morton_key_unit(0.1, 0.9);
        let hh = morton_key_unit(0.9, 0.9);
        assert!(ll < hl && hl < lh && lh < hh);
    }

    #[test]
    fn sort_is_permutation_and_clusters_neighbours() {
        let mut rng = exa_util::Rng::seed_from_u64(1);
        let mut locs: Vec<Location> = (0..256)
            .map(|_| Location::new(rng.next_f64(), rng.next_f64()))
            .collect();
        let original = locs.clone();
        let perm = sort_morton(&mut locs);
        // Permutation property.
        let mut seen = vec![false; 256];
        for &p in &perm {
            assert!(!seen[p]);
            seen[p] = true;
        }
        for (new, &old) in perm.iter().enumerate() {
            assert_eq!(locs[new].x, original[old].x);
        }
        // Locality: mean distance between index-neighbours must shrink a lot
        // versus the random input order.
        let mean_step = |ls: &[Location]| {
            let mut acc = 0.0;
            for w in ls.windows(2) {
                acc += crate::distance::euclidean(&w[0], &w[1]);
            }
            acc / (ls.len() - 1) as f64
        };
        assert!(
            mean_step(&locs) < 0.5 * mean_step(&original),
            "sorted {} vs random {}",
            mean_step(&locs),
            mean_step(&original)
        );
    }

    #[test]
    fn permutation_applies_to_measurements() {
        let mut locs = vec![
            Location::new(0.9, 0.9),
            Location::new(0.05, 0.05),
            Location::new(0.8, 0.1),
        ];
        let z = vec![3.0, 1.0, 2.0];
        let perm = sort_morton(&mut locs);
        let z2 = apply_permutation(&z, &perm);
        // After sorting, the (0.05, 0.05) point comes first and keeps z=1.
        assert_eq!(locs[0].x, 0.05);
        assert_eq!(z2[0], 1.0);
        assert_eq!(z2.len(), 3);
    }

    #[test]
    fn degenerate_inputs() {
        let mut empty: Vec<Location> = vec![];
        assert!(sort_morton(&mut empty).is_empty());
        let mut one = vec![Location::new(0.5, 0.5)];
        assert_eq!(sort_morton(&mut one), vec![0]);
        // All-identical points: stable order preserved.
        let mut same = vec![Location::new(1.0, 2.0); 4];
        assert_eq!(sort_morton(&mut same), vec![0, 1, 2, 3]);
    }
}
