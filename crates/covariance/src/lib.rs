//! Matérn covariance modelling for large-scale geostatistics.
//!
//! This crate rebuilds the statistical-kernel layer of ExaGeoStat: the Matérn
//! covariance family (paper Eq. 5) with its special-function machinery
//! implemented from scratch:
//!
//! * [`mod@gamma`] — Lanczos log-gamma and the Temme auxiliary functions.
//! * [`bessel`] — modified Bessel `K_ν` of real order (Temme series for
//!   small arguments, Steed CF2 continued fraction for large), plus the
//!   scaled variant `eˣK_ν(x)` used to evaluate covariances without
//!   underflow.
//! * [`matern`] — [`MaternParams`] `θ = (θ₁, θ₂, θ₃)` with the exponential
//!   (`θ₃ = ½`) and Whittle (`θ₃ = 1`) special cases the paper discusses.
//! * [`distance`] — Euclidean and haversine great-circle metrics (Eq. 6).
//! * [`kernel`] — [`CovarianceKernel`]: entries and dense tiles of `Σ(θ)`
//!   from a location set (the ExaGeoStat matrix-generation codelet), and
//!   [`ParamCovariance`]: the parameter-vector ↔ kernel-instance bridge that
//!   makes the MLE/kriging pipeline generic over covariance families.
//! * [`matern`], [`powexp`], [`gaussian`] — the three plug-in families:
//!   Matérn (paper Eq. 5), powered-exponential, and Gaussian
//!   (squared-exponential).
//! * [`morton`] — z-order spatial sorting of location sets, the ExaGeoStat
//!   preprocessing step that gives the covariance tiles their low-rank
//!   structure.

pub mod bessel;
pub mod distance;
pub mod fastmath;
pub mod gamma;
pub mod gaussian;
pub mod kernel;
pub mod matern;
pub mod morton;
pub mod powexp;

pub use bessel::{bessel_k, bessel_k_scaled};
pub use distance::{euclidean, great_circle_km, DistanceMetric, Location, EARTH_RADIUS_KM};
pub use fastmath::exp_neg;
pub use gamma::{gamma, ln_gamma, EULER_GAMMA};
pub use gaussian::{GaussianKernel, GaussianParams};
pub use kernel::{CovarianceKernel, MaternKernel, ParamCovariance};
pub use matern::MaternParams;
pub use morton::{apply_permutation, morton_key_unit, sort_morton};
pub use powexp::{PoweredExponentialKernel, PoweredExponentialParams};
