//! Distance metrics between spatial locations.
//!
//! The paper uses plain Euclidean distance for the synthetic unit-square
//! datasets and the haversine Great-Circle Distance (Eq. 6) for the two real
//! datasets, whose coordinates are geographic latitude/longitude.

/// A spatial location. For planar data `(x, y)` live in the unit square; for
/// geographic data `x` is the longitude and `y` the latitude, both in
/// **degrees**.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Location {
    pub x: f64,
    pub y: f64,
}

impl Location {
    pub fn new(x: f64, y: f64) -> Self {
        Location { x, y }
    }
}

/// Mean Earth radius in kilometres (spherical model).
pub const EARTH_RADIUS_KM: f64 = 6371.0;

/// Which metric turns a pair of locations into the Matérn distance `r`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DistanceMetric {
    /// Planar Euclidean distance (synthetic datasets).
    Euclidean,
    /// Haversine great-circle distance in kilometres on a spherical Earth
    /// (real datasets; the paper's Eq. 6).
    GreatCircleKm,
}

impl DistanceMetric {
    /// Distance between two locations under this metric.
    #[inline]
    pub fn distance(&self, a: &Location, b: &Location) -> f64 {
        match self {
            DistanceMetric::Euclidean => euclidean(a, b),
            DistanceMetric::GreatCircleKm => great_circle_km(a, b),
        }
    }
}

/// Planar Euclidean distance.
#[inline]
pub fn euclidean(a: &Location, b: &Location) -> f64 {
    let dx = a.x - b.x;
    let dy = a.y - b.y;
    (dx * dx + dy * dy).sqrt()
}

/// Haversine function `hav(θ) = sin²(θ/2)`.
#[inline]
fn hav(theta: f64) -> f64 {
    let s = (theta * 0.5).sin();
    s * s
}

/// Great-circle distance in kilometres between two (lon°, lat°) locations via
/// the haversine formula (paper Eq. 6), on a sphere of radius
/// [`EARTH_RADIUS_KM`].
pub fn great_circle_km(a: &Location, b: &Location) -> f64 {
    let phi1 = a.y.to_radians();
    let phi2 = b.y.to_radians();
    let lam1 = a.x.to_radians();
    let lam2 = b.x.to_radians();
    let h = hav(phi2 - phi1) + phi1.cos() * phi2.cos() * hav(lam2 - lam1);
    // d = 2R · asin(√h); clamp for numerical safety at antipodes.
    2.0 * EARTH_RADIUS_KM * h.sqrt().clamp(0.0, 1.0).asin()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_basics() {
        let a = Location::new(0.0, 0.0);
        let b = Location::new(3.0, 4.0);
        assert_eq!(euclidean(&a, &b), 5.0);
        assert_eq!(euclidean(&a, &a), 0.0);
    }

    #[test]
    fn gcd_zero_for_same_point() {
        let a = Location::new(46.7, 24.6); // Riyadh-ish
        assert_eq!(great_circle_km(&a, &a), 0.0);
    }

    #[test]
    fn gcd_quarter_meridian() {
        // Equator to pole along a meridian = quarter circumference.
        let eq = Location::new(0.0, 0.0);
        let pole = Location::new(0.0, 90.0);
        let want = std::f64::consts::PI * EARTH_RADIUS_KM / 2.0;
        assert!((great_circle_km(&eq, &pole) - want).abs() < 1e-9);
    }

    #[test]
    fn gcd_one_degree_matches_paper_scale() {
        // The paper notes ~87.5 km per degree in the Mississippi basin
        // (lat ≈ 38°): one degree of longitude there is ~87.6 km.
        let a = Location::new(-90.0, 38.0);
        let b = Location::new(-89.0, 38.0);
        let d = great_circle_km(&a, &b);
        assert!((d - 87.6).abs() < 1.0, "d = {d}");
        // One degree of latitude is ~111.2 km anywhere.
        let c = Location::new(-90.0, 39.0);
        let d2 = great_circle_km(&a, &c);
        assert!((d2 - 111.2).abs() < 0.5, "d2 = {d2}");
    }

    #[test]
    fn gcd_symmetry_and_triangle_inequality() {
        let pts = [
            Location::new(20.0, 5.0),
            Location::new(50.0, 30.0),
            Location::new(83.0, -5.0),
        ];
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (great_circle_km(&pts[i], &pts[j]) - great_circle_km(&pts[j], &pts[i])).abs()
                        < 1e-9
                );
            }
        }
        let dab = great_circle_km(&pts[0], &pts[1]);
        let dbc = great_circle_km(&pts[1], &pts[2]);
        let dac = great_circle_km(&pts[0], &pts[2]);
        assert!(dac <= dab + dbc + 1e-9);
    }

    #[test]
    fn metric_dispatch() {
        let a = Location::new(0.0, 0.0);
        let b = Location::new(1.0, 0.0);
        assert_eq!(DistanceMetric::Euclidean.distance(&a, &b), 1.0);
        let gcd = DistanceMetric::GreatCircleKm.distance(&a, &b);
        assert!((gcd - 111.19).abs() < 0.1, "gcd = {gcd}");
    }
}
