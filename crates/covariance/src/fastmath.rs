//! Branchless transcendental kernels for blocked covariance fills.
//!
//! The serving-oriented prediction path (`FittedModel::predict_batch`) fills
//! cross-covariance blocks row by row; at `n = 1024` observed sites a single
//! point prediction is ~1k kernel evaluations, and the libm `exp` call inside
//! [`MaternParams::covariance`] blocks auto-vectorization of that loop. This
//! module provides [`exp_neg`], a branchless exponential for non-positive
//! arguments that LLVM vectorizes on the baseline `x86-64` target (no
//! `roundpd` / `blendv` needed): round-to-nearest via the 2⁵²+2⁵¹ magic
//! constant, a degree-10 polynomial on `|r| ≤ ln2/2`, and the power-of-two
//! scaling assembled directly in the exponent bits.
//!
//! Accuracy: relative error ≤ ~3·10⁻¹³ against libm over the full domain —
//! far below the covariance tolerances anywhere in the pipeline (the TLR
//! backend itself truncates at 10⁻⁵…10⁻¹²). Inputs below −708 flush to the
//! smallest normal scale (≈ 3·10⁻³⁰⁸), which is zero for covariance purposes.
//!
//! [`MaternParams::covariance`]: crate::MaternParams::covariance

const LN2: f64 = std::f64::consts::LN_2;
/// 2⁵² + 2⁵¹: adding then subtracting rounds a |value| < 2⁵¹ to the nearest
/// integer, and leaves that integer (two's complement) in the low mantissa
/// bits of the intermediate sum.
const MAGIC: f64 = 6755399441055744.0;

/// `e^x` for `x ≤ 0`, branchless and auto-vectorizable.
///
/// See the module docs for the construction and accuracy. Callers must not
/// pass positive `x` above ~700 (the exponent assembly would wrap); the
/// covariance fills only ever evaluate `e^{-t}` with `t ≥ 0`.
#[inline(always)]
pub fn exp_neg(x: f64) -> f64 {
    // Clamp far-underflow: exp(-708) ≈ 3e-308 is zero for covariance work,
    // and the clamp keeps the exponent-bit assembly in the normal range.
    let x = x.max(-708.0);
    let kd = x * (1.0 / LN2) + MAGIC;
    let k = kd - MAGIC; // round-to-nearest(x / ln 2), branchless
    let r = x - k * LN2;
    // Degree-10 Taylor on |r| ≤ ln2/2 (Horner); max relative error ~1e-16
    // for the polynomial itself.
    let p = 1.0
        + r * (1.0
            + r * (0.5
                + r * (1.0 / 6.0
                    + r * (1.0 / 24.0
                        + r * (1.0 / 120.0
                            + r * (1.0 / 720.0
                                + r * (1.0 / 5040.0
                                    + r * (1.0 / 40320.0
                                        + r * (1.0 / 362880.0 + r * (1.0 / 3628800.0))))))))));
    // 2^k: `k` sits in the low mantissa bits of `kd`; add the bias there and
    // shift it into the exponent field.
    let two_k = f64::from_bits(kd.to_bits().wrapping_add(1023) << 52);
    p * two_k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_libm_over_the_covariance_domain() {
        // Sweep the arguments covariance fills produce: -r/β and -(r/β)²
        // over many decades.
        let mut max_rel = 0.0f64;
        for i in 0..200_000 {
            let x = -(i as f64) * 0.003; // 0 .. -600
            let got = exp_neg(x);
            let want = x.exp();
            if want > 0.0 {
                max_rel = max_rel.max(((got - want) / want).abs());
            }
        }
        assert!(max_rel < 5e-13, "max relative error {max_rel:e}");
    }

    #[test]
    fn dense_sweep_near_zero() {
        let mut max_rel = 0.0f64;
        for i in 0..100_000 {
            let x = -(i as f64) * 1e-7; // 0 .. -0.01: the strongly-correlated regime
            let got = exp_neg(x);
            let want = x.exp();
            max_rel = max_rel.max(((got - want) / want).abs());
        }
        assert!(max_rel < 5e-13, "max relative error {max_rel:e}");
    }

    #[test]
    fn exact_at_zero_and_monotone_flush_to_zero() {
        assert_eq!(exp_neg(0.0), 1.0);
        // Far underflow flushes to a value indistinguishable from zero at
        // covariance scales.
        assert!(exp_neg(-1000.0) < 1e-300);
        assert!(exp_neg(-f64::INFINITY) < 1e-300);
        // Monotone across the clamp boundary.
        assert!(exp_neg(-700.0) >= exp_neg(-708.0));
    }
}
