//! The powered-exponential (stable) covariance family.
//!
//! `C(r; θ) = θ₁ · exp(−(r/θ₂)^{θ₃})`
//!
//! with variance `θ₁ > 0`, spatial range `θ₂ > 0` and power `0 < θ₃ ≤ 2`.
//! The power interpolates between the exponential kernel (`θ₃ = 1`, which
//! coincides with Matérn at smoothness ½) and the Gaussian kernel
//! (`θ₃ = 2`); the family is positive definite on ℝᵈ exactly for
//! `θ₃ ∈ (0, 2]` (Schoenberg), which `validate` enforces. ExaGeoStat's
//! multivariate follow-up work treats the kernel family as a plug-in point;
//! this module is one of the plug-ins.

use crate::distance::{DistanceMetric, Location};
use crate::kernel::{check_family_inputs, CovarianceKernel, ParamCovariance};
use std::sync::Arc;

/// Parameter vector `θ = (θ₁, θ₂, θ₃)` of the powered-exponential family.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PoweredExponentialParams {
    /// Variance θ₁ (> 0).
    pub variance: f64,
    /// Spatial range θ₂ (> 0).
    pub range: f64,
    /// Power θ₃ (0 < θ₃ ≤ 2); 1 = exponential, 2 = Gaussian.
    pub power: f64,
}

impl PoweredExponentialParams {
    pub fn new(variance: f64, range: f64, power: f64) -> Self {
        let p = PoweredExponentialParams {
            variance,
            range,
            power,
        };
        p.validate()
            .expect("invalid powered-exponential parameters");
        p
    }

    /// Checks positivity of θ₁, θ₂ and the positive-definiteness window of
    /// the power.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.variance > 0.0 && self.variance.is_finite()) {
            return Err(format!("variance must be positive, got {}", self.variance));
        }
        if !(self.range > 0.0 && self.range.is_finite()) {
            return Err(format!("range must be positive, got {}", self.range));
        }
        if !(self.power > 0.0 && self.power <= 2.0) {
            return Err(format!(
                "power must lie in (0, 2] for positive definiteness, got {}",
                self.power
            ));
        }
        Ok(())
    }

    /// Covariance at distance `r ≥ 0`.
    pub fn covariance(&self, r: f64) -> f64 {
        debug_assert!(r >= 0.0, "distance must be non-negative");
        if r == 0.0 {
            return self.variance;
        }
        self.variance * (-(r / self.range).powf(self.power)).exp()
    }
}

/// Powered-exponential covariance over an explicit location list.
#[derive(Clone, Debug)]
pub struct PoweredExponentialKernel {
    locations: Arc<Vec<Location>>,
    params: PoweredExponentialParams,
    metric: DistanceMetric,
    nugget: f64,
}

impl PoweredExponentialKernel {
    pub fn new(
        locations: Arc<Vec<Location>>,
        params: PoweredExponentialParams,
        metric: DistanceMetric,
        nugget: f64,
    ) -> Self {
        assert!(
            nugget >= 0.0 && nugget.is_finite(),
            "nugget must be non-negative and finite"
        );
        params
            .validate()
            .expect("invalid powered-exponential parameters");
        PoweredExponentialKernel {
            locations,
            params,
            metric,
            nugget,
        }
    }

    pub fn params(&self) -> PoweredExponentialParams {
        self.params
    }
}

impl CovarianceKernel for PoweredExponentialKernel {
    fn len(&self) -> usize {
        self.locations.len()
    }

    fn entry(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return self.params.variance + self.nugget;
        }
        let r = self.metric.distance(&self.locations[i], &self.locations[j]);
        self.params.covariance(r)
    }
}

impl ParamCovariance for PoweredExponentialKernel {
    const FAMILY: &'static str = "powered-exponential";

    fn param_names() -> &'static [&'static str] {
        &["variance", "range", "power"]
    }

    fn from_parts(
        locations: Arc<Vec<Location>>,
        theta: &[f64],
        metric: DistanceMetric,
        nugget: f64,
    ) -> Result<Self, String> {
        check_family_inputs(Self::FAMILY, 3, theta, nugget)?;
        let params = PoweredExponentialParams {
            variance: theta[0],
            range: theta[1],
            power: theta[2],
        };
        params.validate()?;
        Ok(PoweredExponentialKernel {
            locations,
            params,
            metric,
            nugget,
        })
    }

    fn params_vec(&self) -> Vec<f64> {
        vec![self.params.variance, self.params.range, self.params.power]
    }

    fn with_params_vec(&self, theta: &[f64]) -> Self {
        assert_eq!(theta.len(), 3, "powered-exponential expects 3 parameters");
        PoweredExponentialKernel {
            locations: self.locations.clone(),
            params: PoweredExponentialParams::new(theta[0], theta[1], theta[2]),
            metric: self.metric,
            nugget: self.nugget,
        }
    }

    fn with_locations(&self, locations: Arc<Vec<Location>>) -> Self {
        PoweredExponentialKernel {
            locations,
            params: self.params,
            metric: self.metric,
            nugget: self.nugget,
        }
    }

    fn default_bounds() -> (Vec<f64>, Vec<f64>) {
        // Power capped just below 2: the θ₃ = 2 boundary (Gaussian) makes Σ
        // nearly singular on dense grids, which the log-space search should
        // approach but not sit on.
        (vec![0.01, 0.001, 0.1], vec![100.0, 100.0, 1.95])
    }

    fn cross(&self, a: &Location, b: &Location) -> f64 {
        self.params.covariance(self.metric.distance(a, b))
    }

    fn fill_cross_row(&self, target: &Location, xs: &[f64], ys: &[f64], out: &mut [f64]) {
        // Vectorized fast paths for the family's closed-form boundary
        // powers: θ₃ = 1 is the exponential kernel (Matérn ν = ½) and
        // θ₃ = 2 the Gaussian — both reduce to `σ·e^{−t}` forms the
        // compiler vectorizes over `exp_neg`, with no `powf` in the loop.
        // Every other power keeps the generic entry-wise path.
        let p = self.params.power;
        if self.metric != DistanceMetric::Euclidean || !(p == 1.0 || p == 2.0) {
            return crate::kernel::fill_cross_row_generic(self, target, xs, ys, out);
        }
        assert_eq!(xs.len(), out.len(), "coordinate/output length mismatch");
        assert_eq!(ys.len(), out.len(), "coordinate/output length mismatch");
        let (tx, ty) = (target.x, target.y);
        let sigma = self.params.variance;
        if p == 2.0 {
            // Gaussian: the squared distance feeds the exponential
            // directly — no square root anywhere.
            let inv_range2 = 1.0 / (self.params.range * self.params.range);
            for ((dst, &ox), &oy) in out.iter_mut().zip(xs).zip(ys) {
                let dx = tx - ox;
                let dy = ty - oy;
                *dst = -(dx * dx + dy * dy) * inv_range2;
            }
        } else {
            // Exponential: one sqrt per entry (sub/mul/sqrt vectorize on
            // baseline x86-64), negated scaled distance into the exp pass.
            let inv_range = 1.0 / self.params.range;
            for ((dst, &ox), &oy) in out.iter_mut().zip(xs).zip(ys) {
                let dx = tx - ox;
                let dy = ty - oy;
                *dst = -(dx * dx + dy * dy).sqrt() * inv_range;
            }
        }
        for v in out.iter_mut() {
            *v = sigma * crate::fastmath::exp_neg(*v);
        }
    }

    fn sill(&self) -> f64 {
        self.params.variance
    }

    fn metric(&self) -> DistanceMetric {
        self.metric
    }

    fn nugget(&self) -> f64 {
        self.nugget
    }

    fn locations_arc(&self) -> &Arc<Vec<Location>> {
        &self.locations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matern::MaternParams;

    #[test]
    fn power_one_matches_exponential_matern() {
        // θ₃ = 1 coincides with Matérn smoothness ½.
        let pe = PoweredExponentialParams::new(1.3, 0.2, 1.0);
        let m = MaternParams::new(1.3, 0.2, 0.5);
        for &r in &[0.0, 0.05, 0.2, 1.0, 3.0] {
            assert!((pe.covariance(r) - m.covariance(r)).abs() < 1e-14);
        }
    }

    #[test]
    fn decays_faster_with_larger_power_beyond_range() {
        let soft = PoweredExponentialParams::new(1.0, 0.1, 0.5);
        let hard = PoweredExponentialParams::new(1.0, 0.1, 2.0);
        // Past the range (r/θ₂ > 1) higher powers decay faster…
        assert!(hard.covariance(0.3) < soft.covariance(0.3));
        // …while inside it (r/θ₂ < 1) they stay flatter near the origin.
        assert!(hard.covariance(0.01) > soft.covariance(0.01));
    }

    #[test]
    fn diagonal_and_cross_respect_nugget_contract() {
        let locs = Arc::new(vec![Location::new(0.0, 0.0), Location::new(0.5, 0.5)]);
        let k = PoweredExponentialKernel::new(
            locs,
            PoweredExponentialParams::new(2.0, 0.3, 1.5),
            DistanceMetric::Euclidean,
            0.25,
        );
        assert_eq!(k.entry(0, 0), 2.25);
        assert_eq!(k.entry(0, 1), k.entry(1, 0));
        let a = Location::new(0.0, 0.0);
        assert_eq!(ParamCovariance::cross(&k, &a, &a), 2.0); // no nugget off the matrix diagonal
    }

    #[test]
    fn param_roundtrip_through_trait() {
        let locs = Arc::new(vec![Location::new(0.1, 0.9)]);
        let k = PoweredExponentialKernel::new(
            locs.clone(),
            PoweredExponentialParams::new(1.0, 0.1, 1.2),
            DistanceMetric::Euclidean,
            1e-8,
        );
        let theta = k.params_vec();
        let k2 =
            PoweredExponentialKernel::from_parts(locs, &theta, DistanceMetric::Euclidean, 1e-8)
                .unwrap();
        assert_eq!(k2.params_vec(), theta);
        assert_eq!(
            PoweredExponentialKernel::param_names(),
            ["variance", "range", "power"]
        );
    }

    #[test]
    fn closed_form_fill_matches_generic_path_at_boundary_powers() {
        // The vectorized θ₃ ∈ {1, 2} rows must agree with the generic
        // entry-wise fill (fast exp: ≤ ~3e-13 relative), and every other
        // configuration must fall back to it *exactly*.
        let locs: Vec<Location> = (0..41)
            .map(|i| Location::new((i as f64 * 0.31) % 1.0, (i as f64 * 0.47) % 1.0))
            .collect();
        let xs: Vec<f64> = locs.iter().map(|l| l.x).collect();
        let ys: Vec<f64> = locs.iter().map(|l| l.y).collect();
        let target = Location::new(0.33, 0.77);
        for (metric, power) in [
            (DistanceMetric::Euclidean, 1.0),     // exponential fast path
            (DistanceMetric::Euclidean, 2.0),     // Gaussian fast path
            (DistanceMetric::Euclidean, 1.5),     // generic (powf)
            (DistanceMetric::GreatCircleKm, 1.0), // generic (metric)
        ] {
            let k = PoweredExponentialKernel::new(
                Arc::new(locs.clone()),
                PoweredExponentialParams::new(1.7, 0.12, power),
                metric,
                0.0,
            );
            let mut fast = vec![f64::NAN; locs.len()];
            let mut reference = vec![f64::NAN; locs.len()];
            k.fill_cross_row(&target, &xs, &ys, &mut fast);
            crate::kernel::fill_cross_row_generic(&k, &target, &xs, &ys, &mut reference);
            let closed_form = metric == DistanceMetric::Euclidean && (power == 1.0 || power == 2.0);
            for (i, (got, want)) in fast.iter().zip(&reference).enumerate() {
                if closed_form {
                    assert!(
                        (got - want).abs() <= 1e-12 * want.abs().max(1e-300),
                        "p={power} {metric:?} entry {i}: {got} vs {want}"
                    );
                } else {
                    assert_eq!(got, want, "p={power} {metric:?} entry {i} must be exact");
                }
            }
        }
    }

    #[test]
    fn boundary_power_fills_match_the_sibling_families() {
        // p = 1 ≡ Matérn ν = ½ and p = 2 ≡ Gaussian: the specialized rows
        // must agree with those families' own vectorized fills exactly
        // (identical arithmetic, same exp_neg).
        let locs: Vec<Location> = (0..23)
            .map(|i| Location::new((i as f64 * 0.19) % 1.0, (i as f64 * 0.71) % 1.0))
            .collect();
        let xs: Vec<f64> = locs.iter().map(|l| l.x).collect();
        let ys: Vec<f64> = locs.iter().map(|l| l.y).collect();
        let target = Location::new(0.52, 0.18);
        let arc = Arc::new(locs.clone());

        let pe1 = PoweredExponentialKernel::new(
            arc.clone(),
            PoweredExponentialParams::new(1.3, 0.2, 1.0),
            DistanceMetric::Euclidean,
            0.0,
        );
        let matern = crate::kernel::MaternKernel::new(
            arc.clone(),
            MaternParams::new(1.3, 0.2, 0.5),
            DistanceMetric::Euclidean,
            0.0,
        );
        let mut row_pe = vec![0.0; locs.len()];
        let mut row_sib = vec![0.0; locs.len()];
        pe1.fill_cross_row(&target, &xs, &ys, &mut row_pe);
        matern.fill_cross_row(&target, &xs, &ys, &mut row_sib);
        assert_eq!(row_pe, row_sib, "p = 1 must equal the Matérn ν = ½ fill");

        let pe2 = PoweredExponentialKernel::new(
            arc.clone(),
            PoweredExponentialParams::new(1.3, 0.2, 2.0),
            DistanceMetric::Euclidean,
            0.0,
        );
        let gaussian = crate::gaussian::GaussianKernel::new(
            arc,
            crate::gaussian::GaussianParams::new(1.3, 0.2),
            DistanceMetric::Euclidean,
            0.0,
        );
        pe2.fill_cross_row(&target, &xs, &ys, &mut row_pe);
        gaussian.fill_cross_row(&target, &xs, &ys, &mut row_sib);
        assert_eq!(row_pe, row_sib, "p = 2 must equal the Gaussian fill");
    }

    #[test]
    fn rejects_power_above_two() {
        assert!(PoweredExponentialParams {
            variance: 1.0,
            range: 0.1,
            power: 2.1,
        }
        .validate()
        .is_err());
    }
}
