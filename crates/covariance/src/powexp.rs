//! The powered-exponential (stable) covariance family.
//!
//! `C(r; θ) = θ₁ · exp(−(r/θ₂)^{θ₃})`
//!
//! with variance `θ₁ > 0`, spatial range `θ₂ > 0` and power `0 < θ₃ ≤ 2`.
//! The power interpolates between the exponential kernel (`θ₃ = 1`, which
//! coincides with Matérn at smoothness ½) and the Gaussian kernel
//! (`θ₃ = 2`); the family is positive definite on ℝᵈ exactly for
//! `θ₃ ∈ (0, 2]` (Schoenberg), which `validate` enforces. ExaGeoStat's
//! multivariate follow-up work treats the kernel family as a plug-in point;
//! this module is one of the plug-ins.

use crate::distance::{DistanceMetric, Location};
use crate::kernel::{check_family_inputs, CovarianceKernel, ParamCovariance};
use std::sync::Arc;

/// Parameter vector `θ = (θ₁, θ₂, θ₃)` of the powered-exponential family.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PoweredExponentialParams {
    /// Variance θ₁ (> 0).
    pub variance: f64,
    /// Spatial range θ₂ (> 0).
    pub range: f64,
    /// Power θ₃ (0 < θ₃ ≤ 2); 1 = exponential, 2 = Gaussian.
    pub power: f64,
}

impl PoweredExponentialParams {
    pub fn new(variance: f64, range: f64, power: f64) -> Self {
        let p = PoweredExponentialParams {
            variance,
            range,
            power,
        };
        p.validate()
            .expect("invalid powered-exponential parameters");
        p
    }

    /// Checks positivity of θ₁, θ₂ and the positive-definiteness window of
    /// the power.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.variance > 0.0 && self.variance.is_finite()) {
            return Err(format!("variance must be positive, got {}", self.variance));
        }
        if !(self.range > 0.0 && self.range.is_finite()) {
            return Err(format!("range must be positive, got {}", self.range));
        }
        if !(self.power > 0.0 && self.power <= 2.0) {
            return Err(format!(
                "power must lie in (0, 2] for positive definiteness, got {}",
                self.power
            ));
        }
        Ok(())
    }

    /// Covariance at distance `r ≥ 0`.
    pub fn covariance(&self, r: f64) -> f64 {
        debug_assert!(r >= 0.0, "distance must be non-negative");
        if r == 0.0 {
            return self.variance;
        }
        self.variance * (-(r / self.range).powf(self.power)).exp()
    }
}

/// Powered-exponential covariance over an explicit location list.
#[derive(Clone, Debug)]
pub struct PoweredExponentialKernel {
    locations: Arc<Vec<Location>>,
    params: PoweredExponentialParams,
    metric: DistanceMetric,
    nugget: f64,
}

impl PoweredExponentialKernel {
    pub fn new(
        locations: Arc<Vec<Location>>,
        params: PoweredExponentialParams,
        metric: DistanceMetric,
        nugget: f64,
    ) -> Self {
        assert!(
            nugget >= 0.0 && nugget.is_finite(),
            "nugget must be non-negative and finite"
        );
        params
            .validate()
            .expect("invalid powered-exponential parameters");
        PoweredExponentialKernel {
            locations,
            params,
            metric,
            nugget,
        }
    }

    pub fn params(&self) -> PoweredExponentialParams {
        self.params
    }
}

impl CovarianceKernel for PoweredExponentialKernel {
    fn len(&self) -> usize {
        self.locations.len()
    }

    fn entry(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return self.params.variance + self.nugget;
        }
        let r = self.metric.distance(&self.locations[i], &self.locations[j]);
        self.params.covariance(r)
    }
}

impl ParamCovariance for PoweredExponentialKernel {
    const FAMILY: &'static str = "powered-exponential";

    fn param_names() -> &'static [&'static str] {
        &["variance", "range", "power"]
    }

    fn from_parts(
        locations: Arc<Vec<Location>>,
        theta: &[f64],
        metric: DistanceMetric,
        nugget: f64,
    ) -> Result<Self, String> {
        check_family_inputs(Self::FAMILY, 3, theta, nugget)?;
        let params = PoweredExponentialParams {
            variance: theta[0],
            range: theta[1],
            power: theta[2],
        };
        params.validate()?;
        Ok(PoweredExponentialKernel {
            locations,
            params,
            metric,
            nugget,
        })
    }

    fn params_vec(&self) -> Vec<f64> {
        vec![self.params.variance, self.params.range, self.params.power]
    }

    fn with_params_vec(&self, theta: &[f64]) -> Self {
        assert_eq!(theta.len(), 3, "powered-exponential expects 3 parameters");
        PoweredExponentialKernel {
            locations: self.locations.clone(),
            params: PoweredExponentialParams::new(theta[0], theta[1], theta[2]),
            metric: self.metric,
            nugget: self.nugget,
        }
    }

    fn with_locations(&self, locations: Arc<Vec<Location>>) -> Self {
        PoweredExponentialKernel {
            locations,
            params: self.params,
            metric: self.metric,
            nugget: self.nugget,
        }
    }

    fn default_bounds() -> (Vec<f64>, Vec<f64>) {
        // Power capped just below 2: the θ₃ = 2 boundary (Gaussian) makes Σ
        // nearly singular on dense grids, which the log-space search should
        // approach but not sit on.
        (vec![0.01, 0.001, 0.1], vec![100.0, 100.0, 1.95])
    }

    fn cross(&self, a: &Location, b: &Location) -> f64 {
        self.params.covariance(self.metric.distance(a, b))
    }

    fn sill(&self) -> f64 {
        self.params.variance
    }

    fn metric(&self) -> DistanceMetric {
        self.metric
    }

    fn nugget(&self) -> f64 {
        self.nugget
    }

    fn locations_arc(&self) -> &Arc<Vec<Location>> {
        &self.locations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matern::MaternParams;

    #[test]
    fn power_one_matches_exponential_matern() {
        // θ₃ = 1 coincides with Matérn smoothness ½.
        let pe = PoweredExponentialParams::new(1.3, 0.2, 1.0);
        let m = MaternParams::new(1.3, 0.2, 0.5);
        for &r in &[0.0, 0.05, 0.2, 1.0, 3.0] {
            assert!((pe.covariance(r) - m.covariance(r)).abs() < 1e-14);
        }
    }

    #[test]
    fn decays_faster_with_larger_power_beyond_range() {
        let soft = PoweredExponentialParams::new(1.0, 0.1, 0.5);
        let hard = PoweredExponentialParams::new(1.0, 0.1, 2.0);
        // Past the range (r/θ₂ > 1) higher powers decay faster…
        assert!(hard.covariance(0.3) < soft.covariance(0.3));
        // …while inside it (r/θ₂ < 1) they stay flatter near the origin.
        assert!(hard.covariance(0.01) > soft.covariance(0.01));
    }

    #[test]
    fn diagonal_and_cross_respect_nugget_contract() {
        let locs = Arc::new(vec![Location::new(0.0, 0.0), Location::new(0.5, 0.5)]);
        let k = PoweredExponentialKernel::new(
            locs,
            PoweredExponentialParams::new(2.0, 0.3, 1.5),
            DistanceMetric::Euclidean,
            0.25,
        );
        assert_eq!(k.entry(0, 0), 2.25);
        assert_eq!(k.entry(0, 1), k.entry(1, 0));
        let a = Location::new(0.0, 0.0);
        assert_eq!(ParamCovariance::cross(&k, &a, &a), 2.0); // no nugget off the matrix diagonal
    }

    #[test]
    fn param_roundtrip_through_trait() {
        let locs = Arc::new(vec![Location::new(0.1, 0.9)]);
        let k = PoweredExponentialKernel::new(
            locs.clone(),
            PoweredExponentialParams::new(1.0, 0.1, 1.2),
            DistanceMetric::Euclidean,
            1e-8,
        );
        let theta = k.params_vec();
        let k2 =
            PoweredExponentialKernel::from_parts(locs, &theta, DistanceMetric::Euclidean, 1e-8)
                .unwrap();
        assert_eq!(k2.params_vec(), theta);
        assert_eq!(
            PoweredExponentialKernel::param_names(),
            ["variance", "range", "power"]
        );
    }

    #[test]
    fn rejects_power_above_two() {
        assert!(PoweredExponentialParams {
            variance: 1.0,
            range: 0.1,
            power: 2.1,
        }
        .validate()
        .is_err());
    }
}
