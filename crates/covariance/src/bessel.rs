//! Modified Bessel function of the second kind `K_ν(x)` for real order.
//!
//! This is the special-function core of the Matérn family (paper Eq. 5),
//! substituting for GSL's `gsl_sf_bessel_Knu`. Two regimes:
//!
//! * `x ≤ 2`: Temme's series (Temme, *J. Comput. Phys.* 19, 1975) for
//!   `K_μ`/`K_{μ+1}` with `|μ| ≤ 1/2`, followed by upward recurrence
//!   `K_{ν+1} = K_{ν−1} + (2ν/x)·K_ν`.
//! * `x > 2`: Steed's continued-fraction CF2 evaluation of `K_μ`, `K_{μ+1}`,
//!   then the same recurrence.
//!
//! The *scaled* variant `e^x·K_ν(x)` is exposed so the Matérn covariance can
//! be evaluated in log space without underflow at large distances.

use crate::gamma::temme_gammas;

const EPS: f64 = 1e-16;
const MAX_ITER: usize = 10_000;

/// `K_ν(x)` for real `ν` (the function is even in its order:
/// `K_{−ν} = K_ν`), `x > 0`. Returns `0.0` when the true value underflows
/// `f64` (large `x`), and `+∞` as `x → 0⁺` overflows.
pub fn bessel_k(nu: f64, x: f64) -> f64 {
    let scaled = bessel_k_scaled(nu.abs(), x);
    // K = e^{-x} · (e^x K): do the rescale in log space to honour underflow.
    if scaled == 0.0 || !scaled.is_finite() {
        return scaled;
    }
    let ln = scaled.ln() - x;
    if ln < -745.0 {
        0.0
    } else {
        ln.exp()
    }
}

/// Scaled modified Bessel function `e^x · K_ν(x)` for `ν ≥ 0`, `x > 0`.
pub fn bessel_k_scaled(nu: f64, x: f64) -> f64 {
    assert!(nu >= 0.0, "order must be non-negative (got {nu})");
    assert!(x > 0.0, "argument must be positive (got {x})");
    // Split ν = μ + n with |μ| ≤ 1/2.
    let n = (nu + 0.5).floor() as usize;
    let mu = nu - n as f64;
    let (mut k_mu, mut k_mu1) = if x <= 2.0 {
        let (a, b) = temme_small_x(mu, x);
        // Temme yields unscaled values; scale by e^x (safe: x ≤ 2).
        let ex = x.exp();
        (a * ex, b * ex)
    } else {
        steed_cf2_scaled(mu, x)
    };
    // Upward recurrence in the order: K_{ν+1}(x) = 2ν/x · K_ν(x) + K_{ν−1}(x).
    // (The recurrence is identical for the scaled values.)
    let xi2 = 2.0 / x;
    for i in 0..n {
        let next = (mu + i as f64 + 1.0) * xi2 * k_mu1 + k_mu;
        k_mu = k_mu1;
        k_mu1 = next;
        if !k_mu.is_finite() {
            return f64::INFINITY;
        }
    }
    k_mu
}

/// Temme series: returns (K_μ(x), K_{μ+1}(x)) unscaled, for `x ≤ 2`,
/// `|μ| ≤ 1/2`.
fn temme_small_x(mu: f64, x: f64) -> (f64, f64) {
    let x2 = 0.5 * x;
    let mu2 = mu * mu;
    let pimu = std::f64::consts::PI * mu;
    let fact = if pimu.abs() < EPS {
        1.0
    } else {
        pimu / pimu.sin()
    };
    let d = -x2.ln();
    let e = mu * d;
    let fact2 = if e.abs() < EPS { 1.0 } else { e.sinh() / e };
    let (gam1, gam2, gampl, gammi) = temme_gammas(mu);
    // f₀, p₀, q₀ of Temme's recursion.
    let mut ff = fact * (gam1 * e.cosh() + gam2 * fact2 * d);
    let mut sum = ff;
    let e_exp = e.exp();
    let mut p = 0.5 * e_exp / gampl; // = ½ (x/2)^{-μ} Γ(1+μ)
    let mut q = 0.5 / (e_exp * gammi); // = ½ (x/2)^{+μ} Γ(1−μ)
    let mut c = 1.0;
    let d2 = x2 * x2;
    let mut sum1 = p;
    let mut converged = false;
    for i in 1..=MAX_ITER {
        let fi = i as f64;
        ff = (fi * ff + p + q) / (fi * fi - mu2);
        c *= d2 / fi;
        p /= fi - mu;
        q /= fi + mu;
        let del = c * ff;
        sum += del;
        let del1 = c * (p - fi * ff);
        sum1 += del1;
        if del.abs() < sum.abs() * EPS {
            converged = true;
            break;
        }
    }
    debug_assert!(converged, "Temme series did not converge (mu={mu}, x={x})");
    (sum, sum1 * 2.0 / x)
}

/// Steed's CF2: returns scaled (e^x K_μ(x), e^x K_{μ+1}(x)) for `x > 2`,
/// `|μ| ≤ 1/2`.
fn steed_cf2_scaled(mu: f64, x: f64) -> (f64, f64) {
    let mu2 = mu * mu;
    let mut b = 2.0 * (1.0 + x);
    let mut d = 1.0 / b;
    let mut h = d;
    let mut delh = d;
    let mut q1 = 0.0f64;
    let mut q2 = 1.0f64;
    let a1 = 0.25 - mu2;
    let mut q = a1;
    let mut c = a1;
    let mut a = -a1;
    let mut s = 1.0 + q * delh;
    let mut converged = false;
    for i in 2..=MAX_ITER {
        let fi = i as f64;
        a -= 2.0 * (fi - 1.0);
        c = -a * c / fi;
        let qnew = (q1 - b * q2) / a;
        q1 = q2;
        q2 = qnew;
        q += c * qnew;
        b += 2.0;
        d = 1.0 / (b + a * d);
        delh *= b * d - 1.0;
        h += delh;
        let dels = q * delh;
        s += dels;
        if (dels / s).abs() < EPS {
            converged = true;
            break;
        }
    }
    debug_assert!(converged, "CF2 did not converge (mu={mu}, x={x})");
    let h = a1 * h;
    // Scaled: e^x K_μ = sqrt(π/(2x)) / s.
    let k_mu = (std::f64::consts::PI / (2.0 * x)).sqrt() / s;
    let k_mu1 = k_mu * (mu + x + 0.5 - h) / x;
    (k_mu, k_mu1)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values from standard tables (Abramowitz & Stegun / SciPy).
    #[test]
    fn known_integer_orders() {
        let cases = [
            (0.0, 1.0, 0.421_024_438_240_708_34),
            (1.0, 1.0, 0.601_907_230_197_234_6),
            (0.0, 2.0, 0.113_893_872_749_533_44),
            (1.0, 2.0, 0.139_865_881_816_522_43),
            (0.0, 0.1, 2.427_069_024_702_017),
            (1.0, 0.1, 9.853_844_780_870_606),
            (0.0, 5.0, 3.691_098_334_042_594e-3),
            (1.0, 5.0, 4.044_613_445_452_164e-3),
            (2.0, 1.0, 1.624_838_898_635_177_4),
        ];
        for &(nu, x, want) in &cases {
            let got = bessel_k(nu, x);
            assert!(
                ((got - want) / want).abs() < 1e-12,
                "K_{nu}({x}) = {got}, want {want}"
            );
        }
    }

    #[test]
    fn half_integer_closed_forms() {
        // K_{1/2}(x) = sqrt(π/(2x)) e^{-x}; K_{3/2} adds (1 + 1/x);
        // K_{5/2} adds (1 + 3/x + 3/x²).
        for &x in &[0.05, 0.3, 1.0, 2.0, 2.5, 7.0, 30.0] {
            let base = (std::f64::consts::PI / (2.0 * x)).sqrt() * (-x).exp();
            let k12 = bessel_k(0.5, x);
            let k32 = bessel_k(1.5, x);
            let k52 = bessel_k(2.5, x);
            assert!(((k12 - base) / base).abs() < 1e-12, "K_1/2({x})");
            let want32 = base * (1.0 + 1.0 / x);
            assert!(((k32 - want32) / want32).abs() < 1e-12, "K_3/2({x})");
            let want52 = base * (1.0 + 3.0 / x + 3.0 / (x * x));
            assert!(((k52 - want52) / want52).abs() < 1e-12, "K_5/2({x})");
        }
    }

    #[test]
    fn recurrence_property_generic_orders() {
        // K_{ν+1}(x) = K_{ν−1}(x) + (2ν/x) K_ν(x).
        for &nu in &[0.3, 0.73, 1.21, 1.9, 3.4] {
            for &x in &[0.2, 1.0, 1.9, 2.1, 4.0, 11.0] {
                let a = bessel_k(nu, x);
                let b = if nu >= 1.0 {
                    bessel_k(nu - 1.0, x)
                } else {
                    // K_{−μ}(x) = K_{μ}(x).
                    bessel_k(1.0 - nu, x)
                };
                let c = bessel_k(nu + 1.0, x);
                let rhs = b + (2.0 * nu / x) * a;
                assert!(
                    ((c - rhs) / c).abs() < 1e-10,
                    "recurrence at nu={nu}, x={x}: {c} vs {rhs}"
                );
            }
        }
    }

    #[test]
    fn continuity_across_branch_boundary() {
        // The Temme (x≤2) and CF2 (x>2) branches must agree at the seam.
        for &nu in &[0.0, 0.4, 0.5, 1.0, 1.37, 2.8] {
            let below = bessel_k(nu, 2.0 - 1e-9);
            let above = bessel_k(nu, 2.0 + 1e-9);
            assert!(
                ((below - above) / below).abs() < 1e-7,
                "nu={nu}: {below} vs {above}"
            );
        }
    }

    #[test]
    fn scaled_variant_consistent_with_unscaled() {
        for &nu in &[0.5, 1.0, 2.3] {
            for &x in &[0.5, 2.0, 10.0, 50.0] {
                let k = bessel_k(nu, x);
                let ks = bessel_k_scaled(nu, x);
                assert!(((ks * (-x).exp() - k) / k).abs() < 1e-12, "nu={nu} x={x}");
            }
        }
    }

    #[test]
    fn no_underflow_in_scaled_form_at_large_x() {
        // Unscaled underflows past x ≈ 745; scaled stays finite and follows
        // the asymptotic sqrt(π/(2x)).
        let x = 2000.0;
        let ks = bessel_k_scaled(1.0, x);
        let asym = (std::f64::consts::PI / (2.0 * x)).sqrt();
        assert!(ks.is_finite() && ks > 0.0);
        assert!(((ks - asym) / asym).abs() < 1e-3);
        assert_eq!(bessel_k(1.0, x), 0.0); // honest underflow
    }

    #[test]
    fn monotone_decreasing_in_x() {
        for &nu in &[0.5, 1.0, 1.5, 2.7] {
            let mut prev = f64::INFINITY;
            for i in 1..100 {
                let x = i as f64 * 0.25;
                let k = bessel_k(nu, x);
                assert!(k < prev, "K_{nu} not decreasing at x={x}");
                prev = k;
            }
        }
    }

    #[test]
    fn increasing_in_order_for_fixed_x() {
        // For fixed x, K_ν(x) increases with ν ≥ 0.
        let x = 1.7;
        let mut prev = 0.0;
        for i in 0..20 {
            let nu = i as f64 * 0.35;
            let k = bessel_k(nu, x);
            assert!(k >= prev, "not increasing at nu={nu}");
            prev = k;
        }
    }

    #[test]
    fn small_x_divergence() {
        // K_0(x) ~ -ln(x/2) - γ as x→0.
        let x = 1e-8;
        let want = -(x / 2.0f64).ln() - crate::gamma::EULER_GAMMA;
        let got = bessel_k(0.0, x);
        assert!(((got - want) / want).abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "argument must be positive")]
    fn rejects_zero_argument() {
        bessel_k(1.0, 0.0);
    }
}
