//! Property-based tests for the special functions and the Matérn family:
//! textbook identities for `K_ν`, special-case reductions, and positive
//! definiteness of generated covariance matrices.

use exa_covariance::{
    bessel_k, euclidean, great_circle_km, CovarianceKernel, DistanceMetric, GaussianKernel,
    GaussianParams, Location, MaternKernel, MaternParams, PoweredExponentialKernel,
    PoweredExponentialParams,
};
use exa_util::Rng;
use proptest::prelude::*;
use std::sync::Arc;

/// `side²` unit-square grid points, each jittered inside its cell.
fn jittered_grid(side: usize, rng: &mut Rng) -> Vec<Location> {
    let mut locs = Vec::with_capacity(side * side);
    for i in 0..side {
        for j in 0..side {
            locs.push(Location::new(
                (i as f64 + 0.9 * rng.next_f64()) / side as f64,
                (j as f64 + 0.9 * rng.next_f64()) / side as f64,
            ));
        }
    }
    locs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bessel_recurrence_holds(
        nu in 0.1f64..2.5,
        x in 0.05f64..20.0,
    ) {
        // K_{ν+1}(x) = K_{ν−1}(x) + (2ν/x)·K_ν(x).
        let km = bessel_k(nu - 1.0, x);
        let k0 = bessel_k(nu, x);
        let kp = bessel_k(nu + 1.0, x);
        let rhs = km + (2.0 * nu / x) * k0;
        prop_assert!(
            (kp - rhs).abs() <= 1e-8 * kp.abs().max(1e-300),
            "ν={nu} x={x}: {kp} vs {rhs}"
        );
    }

    #[test]
    fn bessel_symmetric_in_order(nu in 0.05f64..3.0, x in 0.05f64..20.0) {
        // K_{−ν}(x) = K_ν(x).
        let plus = bessel_k(nu, x);
        let minus = bessel_k(-nu, x);
        prop_assert!((plus - minus).abs() <= 1e-10 * plus.abs().max(1e-300));
    }

    #[test]
    fn matern_half_is_exponential(
        variance in 0.1f64..10.0,
        range in 0.01f64..2.0,
        r in 0.0f64..3.0,
    ) {
        let p = MaternParams::new(variance, range, 0.5);
        let want = variance * (-r / range).exp();
        let got = p.covariance(r);
        prop_assert!((got - want).abs() <= 1e-9 * want.abs().max(1e-300),
            "{got} vs {want}");
    }

    #[test]
    fn matern_three_halves_closed_form(
        variance in 0.1f64..10.0,
        range in 0.01f64..2.0,
        r in 1e-6f64..3.0,
    ) {
        // ν = 3/2: C(r) = σ²(1 + r/ρ)·exp(−r/ρ).
        let p = MaternParams::new(variance, range, 1.5);
        let s = r / range;
        let want = variance * (1.0 + s) * (-s).exp();
        let got = p.covariance(r);
        prop_assert!((got - want).abs() <= 1e-7 * want.abs().max(1e-300),
            "{got} vs {want}");
    }

    #[test]
    fn covariance_decreases_with_distance(
        variance in 0.1f64..10.0,
        range in 0.02f64..1.0,
        smoothness in 0.2f64..2.5,
        r1 in 0.01f64..1.0,
        dr in 0.01f64..1.0,
    ) {
        let p = MaternParams::new(variance, range, smoothness);
        prop_assert!(p.covariance(r1) > p.covariance(r1 + dr));
        prop_assert!(p.covariance(0.0) == variance);
    }

    #[test]
    fn covariance_matrix_is_positive_definite(
        n in 4usize..24,
        range in 0.02f64..0.4,
        smoothness in 0.3f64..1.8,
        seed in 0u64..10_000,
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let locs: Vec<Location> = (0..n)
            .map(|_| Location::new(rng.next_f64(), rng.next_f64()))
            .collect();
        let kernel = MaternKernel::new(
            Arc::new(locs),
            MaternParams::new(1.0, range, smoothness),
            DistanceMetric::Euclidean,
            1e-10,
        );
        let mut a = vec![0.0; n * n];
        kernel.fill_tile(0, n, 0, n, &mut a, n);
        prop_assert!(exa_linalg_potrf_ok(n, &mut a), "Σ(θ) must be SPD");
    }

    #[test]
    fn powered_exponential_matrix_is_positive_definite(
        side in 3usize..6,
        range in 0.02f64..0.4,
        power in 0.2f64..2.0,
        seed in 0u64..10_000,
    ) {
        // Jittered grid (the paper's synthetic geometry): the family must
        // stay SPD across the whole admissible power window.
        let n = side * side;
        let mut rng = Rng::seed_from_u64(seed);
        let locs = jittered_grid(side, &mut rng);
        let kernel = PoweredExponentialKernel::new(
            Arc::new(locs),
            PoweredExponentialParams::new(1.0, range, power),
            DistanceMetric::Euclidean,
            1e-8,
        );
        let mut a = vec![0.0; n * n];
        kernel.fill_tile(0, n, 0, n, &mut a, n);
        prop_assert!(exa_linalg_potrf_ok(n, &mut a), "powered-exponential Σ(θ) must be SPD");
    }

    #[test]
    fn gaussian_matrix_is_positive_definite(
        side in 3usize..6,
        range in 0.02f64..0.3,
        variance in 0.1f64..10.0,
        seed in 0u64..10_000,
    ) {
        // The Gaussian family is the worst-conditioned of the three; a small
        // nugget (as the session default applies) must keep Cholesky alive on
        // jittered grids.
        let n = side * side;
        let mut rng = Rng::seed_from_u64(seed);
        let locs = jittered_grid(side, &mut rng);
        let kernel = GaussianKernel::new(
            Arc::new(locs),
            GaussianParams::new(variance, range),
            DistanceMetric::Euclidean,
            1e-8 * variance,
        );
        let mut a = vec![0.0; n * n];
        kernel.fill_tile(0, n, 0, n, &mut a, n);
        prop_assert!(exa_linalg_potrf_ok(n, &mut a), "gaussian Σ(θ) must be SPD");
    }

    #[test]
    fn great_circle_bounds_and_symmetry(
        lon1 in -180.0f64..180.0,
        lat1 in -89.0f64..89.0,
        lon2 in -180.0f64..180.0,
        lat2 in -89.0f64..89.0,
    ) {
        let a = Location::new(lon1, lat1);
        let b = Location::new(lon2, lat2);
        let d = great_circle_km(&a, &b);
        prop_assert!(d >= 0.0);
        // Half the Earth's circumference is the maximum separation.
        prop_assert!(d <= std::f64::consts::PI * 6371.0 + 1e-6);
        prop_assert!((d - great_circle_km(&b, &a)).abs() < 1e-9);
        prop_assert!(great_circle_km(&a, &a) < 1e-9);
    }

    #[test]
    fn euclidean_triangle_inequality(
        ax in -1.0f64..1.0, ay in -1.0f64..1.0,
        bx in -1.0f64..1.0, by in -1.0f64..1.0,
        cx in -1.0f64..1.0, cy in -1.0f64..1.0,
    ) {
        let (a, b, c) = (
            Location::new(ax, ay),
            Location::new(bx, by),
            Location::new(cx, cy),
        );
        prop_assert!(euclidean(&a, &c) <= euclidean(&a, &b) + euclidean(&b, &c) + 1e-12);
    }
}

fn exa_linalg_potrf_ok(n: usize, a: &mut [f64]) -> bool {
    exa_linalg::dpotrf(n, a, n).is_ok()
}
