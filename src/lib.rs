//! **exageostat** — a from-scratch Rust reproduction of *"Parallel
//! Approximation of the Maximum Likelihood Estimation for the Prediction of
//! Large-Scale Geostatistics Simulations"* (Abdulah, Ltaief, Sun, Genton,
//! Keyes — IEEE CLUSTER 2018).
//!
//! The paper extends the ExaGeoStat framework with Tile Low-Rank (TLR)
//! approximation of the Matérn covariance matrix, so Gaussian maximum
//! likelihood estimation and kriging prediction scale past the dense
//! `O(n³)`/`O(n²)` wall. This workspace rebuilds **every layer** of that
//! stack in Rust:
//!
//! | layer | paper component | crate |
//! |---|---|---|
//! | statistics & drivers | ExaGeoStat + NLopt | [`geostat`] (`exa-geostat`) |
//! | TLR linear algebra | HiCMA | [`tlr`] (`exa-tlr`) |
//! | dense tile algorithms | Chameleon | [`tile`] (`exa-tile`) |
//! | task runtime | StarPU | [`runtime`] (`exa-runtime`) |
//! | dense kernels | BLAS/LAPACK (MKL) | [`linalg`] (`exa-linalg`) |
//! | covariance & special functions | GSL + ExaGeoStat kernels | [`covariance`] (`exa-covariance`) |
//! | cluster experiments | Shaheen-2 Cray XC40 | [`distsim`] (`exa-distsim`) |
//! | RNG / stats / reporting | — | [`util`] (`exa-util`) |
//!
//! # Quickstart
//!
//! ```
//! use exageostat::prelude::*;
//! use std::sync::Arc;
//!
//! // 1. Synthetic locations + an exactly-simulated Matérn field.
//! let mut rng = Rng::seed_from_u64(7);
//! let locations = Arc::new(synthetic_locations(12, &mut rng)); // 144 sites
//! let truth = MaternParams::new(1.0, 0.1, 0.5);
//! let rt = Runtime::new(4);
//! let sim = FieldSimulator::new(
//!     locations.clone(), truth, DistanceMetric::Euclidean, 0.0, 36, &rt,
//! ).unwrap();
//! let z = sim.draw(&mut rng);
//!
//! // 2. One TLR log-likelihood evaluation (Eq. 1).
//! let kernel = MaternKernel::new(
//!     locations.clone(), truth, DistanceMetric::Euclidean, 1e-8,
//! );
//! let cfg = LikelihoodConfig { nb: 36, seed: 7 };
//! let ll = log_likelihood(&kernel, &z, Backend::tlr(1e-9), cfg, &rt).unwrap();
//! assert!(ll.value.is_finite());
//! ```
//!
//! See `examples/` for full MLE fits, the simulated soil-moisture and
//! wind-speed studies, and the distributed-run simulator; `crates/bench`
//! regenerates every table and figure of the paper (DESIGN.md §3).

pub use exa_covariance as covariance;
pub use exa_distsim as distsim;
pub use exa_geostat as geostat;
pub use exa_linalg as linalg;
pub use exa_runtime as runtime;
pub use exa_tile as tile;
pub use exa_tlr as tlr;
pub use exa_util as util;

/// The most common imports in one place.
pub mod prelude {
    pub use exa_covariance::{
        sort_morton, CovarianceKernel, DistanceMetric, Location, MaternKernel, MaternParams,
    };
    pub use exa_geostat::{
        holdout_split, log_likelihood, predict, predict_with_variance, prediction_mse,
        synthetic_locations, synthetic_locations_n, Backend, FieldSimulator, LikelihoodConfig,
        MleProblem, NelderMeadConfig, ParamBounds,
    };
    pub use exa_runtime::Runtime;
    pub use exa_tlr::{CompressionMethod, TlrMatrix};
    pub use exa_util::Rng;
}
