//! **exageostat** — a from-scratch Rust reproduction of *"Parallel
//! Approximation of the Maximum Likelihood Estimation for the Prediction of
//! Large-Scale Geostatistics Simulations"* (Abdulah, Ltaief, Sun, Genton,
//! Keyes — IEEE CLUSTER 2018).
//!
//! The paper extends the ExaGeoStat framework with Tile Low-Rank (TLR)
//! approximation of the Matérn covariance matrix, so Gaussian maximum
//! likelihood estimation and kriging prediction scale past the dense
//! `O(n³)`/`O(n²)` wall. This workspace rebuilds **every layer** of that
//! stack in Rust:
//!
//! | layer | paper component | crate |
//! |---|---|---|
//! | observability | ExaGeoStat's PaRSEC/StarPU profiling hooks, as serving telemetry | [`telemetry`] (`exa-telemetry`) |
//! | fleet tier | multi-node ExaGeoStatR deployments, as a sharded serving tier | [`fleet`] (`exa-fleet`) |
//! | wire front-end | ExaGeoStatR's remote-consumer surface, as HTTP/1.1 + JSON or binary frames | [`wire`] (`exa-wire`) |
//! | prediction serving | ExaGeoStatR's fit-once/predict-many workflow, as a service | [`serve`] (`exa-serve`) |
//! | statistics & drivers | ExaGeoStat + NLopt | [`geostat`] (`exa-geostat`) |
//! | TLR linear algebra | HiCMA | [`tlr`] (`exa-tlr`) |
//! | dense tile algorithms | Chameleon | [`tile`] (`exa-tile`) |
//! | task runtime | StarPU | [`runtime`] (`exa-runtime`) |
//! | dense kernels | BLAS/LAPACK (MKL) | [`linalg`] (`exa-linalg`) |
//! | covariance & special functions | GSL + ExaGeoStat kernels | [`covariance`] (`exa-covariance`) |
//! | cluster experiments | Shaheen-2 Cray XC40 | [`distsim`] (`exa-distsim`) |
//! | RNG / stats / reporting | — | [`util`] (`exa-util`) |
//!
//! # Quickstart
//!
//! The public surface is the [`geostat::GeoModel`] session API: describe the
//! problem once (locations, data, covariance family, computation technique),
//! then `fit()`/`at_params()` hand back a [`geostat::FittedModel`] owning
//! the factored `Σ(θ̂)` — likelihood pieces, kriging prediction and exact
//! simulation all reuse that factor instead of re-running the Cholesky.
//!
//! ```
//! use exageostat::prelude::*;
//! use std::sync::Arc;
//!
//! // 1. Synthetic locations + an exactly-simulated Matérn field, drawn
//! //    from a full-tile session factored at the true θ.
//! let mut rng = Rng::seed_from_u64(7);
//! let locations = Arc::new(synthetic_locations(12, &mut rng)); // 144 sites
//! let rt = Runtime::new(4);
//! let truth = GeoModel::<MaternKernel>::builder()
//!     .locations(locations.clone())
//!     .nugget(0.0)
//!     .tile_size(36)
//!     .build()
//!     .unwrap()
//!     .at_params(&[1.0, 0.1, 0.5], &rt)
//!     .unwrap();
//! let z = truth.simulate(&mut rng, &rt);
//!
//! // 2. A TLR estimation session over the same sites (Eq. 1 at one θ).
//! let model = GeoModel::<MaternKernel>::builder()
//!     .locations(locations)
//!     .data(z)
//!     .backend(Backend::tlr(1e-9))
//!     .tile_size(36)
//!     .seed(7)
//!     .build()
//!     .unwrap();
//! let at_truth = model.at_params(&[1.0, 0.1, 0.5], &rt).unwrap();
//! let ll = at_truth.log_likelihood().unwrap();
//! assert!(ll.value.is_finite());
//!
//! // 3. Kriging a new site reuses the factorization just computed.
//! let pred = at_truth.predict(&[Location::new(0.5, 0.5)], &rt).unwrap();
//! assert!(pred.values[0].is_finite());
//! ```
//!
//! Swap `MaternKernel` for [`covariance::PoweredExponentialKernel`] or
//! [`covariance::GaussianKernel`] and the same pipeline runs unmodified —
//! the API is generic over [`covariance::ParamCovariance`].
//!
//! Fitted models serve in-process through [`serve`] (`exa-serve`) and over
//! TCP through [`wire`] (`exa-wire`): a zero-dependency HTTP/1.1 front-end
//! whose `predict` endpoint coalesces each request onto the same
//! micro-batching path and speaks JSON or a binary `f64` frame codec,
//! negotiated per request (see the `exa-wire` crate docs for the wire
//! schema and `exa-wire::codec` for the frame layout).
//!
//! See `examples/` for full MLE fits, the simulated soil-moisture and
//! wind-speed studies, the distributed-run simulator, the concurrent
//! prediction service (`prediction_service`) and its networked twin
//! (`wire_service`); `crates/bench` regenerates every table and figure of
//! the paper (DESIGN.md §3).

pub use exa_covariance as covariance;
pub use exa_distsim as distsim;
pub use exa_fleet as fleet;
pub use exa_geostat as geostat;
pub use exa_linalg as linalg;
pub use exa_runtime as runtime;
pub use exa_serve as serve;
pub use exa_telemetry as telemetry;
pub use exa_tile as tile;
pub use exa_tlr as tlr;
pub use exa_util as util;
pub use exa_wire as wire;

/// The most common imports in one place.
pub mod prelude {
    pub use exa_covariance::{
        sort_morton, CovarianceKernel, DistanceMetric, GaussianKernel, GaussianParams, Location,
        MaternKernel, MaternParams, ParamCovariance, PoweredExponentialKernel,
        PoweredExponentialParams,
    };
    pub use exa_fleet::{
        FleetConfig, FleetRouter, NodeSpec, PlacementMap, PlacementPolicy, PolicyKind, RouterStats,
    };
    pub use exa_geostat::{
        eval_log_likelihood, factorization_count, holdout_split, prediction_mse,
        synthetic_locations, synthetic_locations_n, Backend, Factorization, FieldSimulator,
        FitOptions, FitReport, FittedModel, GeoModel, LikelihoodConfig, ModelError,
        NelderMeadConfig,
    };
    pub use exa_runtime::Runtime;
    pub use exa_serve::{
        ModelInfo, ModelRegistry, PredictionServer, PredictionTicket, RegistryStats, ServeConfig,
        ServeError, ServedPrediction, ServerHandle, ServerStats,
    };
    pub use exa_telemetry::{Histogram, HistogramSnapshot, SlowEntry, SlowRing, TraceId};
    pub use exa_tlr::{CompressionMethod, TlrMatrix};
    pub use exa_util::Rng;
    pub use exa_wire::{
        Codec, WireClient, WireConfig, WireError, WireModelInfo, WireModels, WirePrediction,
        WireResponse, WireServer, WireStats,
    };
}
